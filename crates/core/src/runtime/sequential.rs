//! The sequential reference executor.

use crate::dependence::{StateDependence, UpdateCost};
use crate::rng::{StatsRng, StreamRole};

/// The result of a plain sequential execution.
#[derive(Debug, Clone)]
pub struct SequentialRun<S, O> {
    /// Per-input outputs, in order.
    pub outputs: Vec<O>,
    /// The final computational state.
    pub final_state: S,
    /// Total cost across all updates.
    pub cost: UpdateCost,
    /// Per-input costs (used for weighted chunk planning and baselines).
    pub per_input_costs: Vec<UpdateCost>,
}

impl<S, O> SequentialRun<S, O> {
    /// Total work units including the program's outside-region work.
    pub fn total_work_with_outside(&self, outside: (u64, u64)) -> u64 {
        self.cost.work + outside.0 + outside.1
    }
}

/// Run the workload sequentially over `inputs` with the given master seed.
///
/// This is the program as originally written: one state, one dependence
/// chain, outputs in input order.
///
/// ```
/// # use stats_core::{StateDependence, UpdateCost, StatsRng};
/// # use stats_core::runtime::sequential::run_sequential;
/// # struct W;
/// # impl StateDependence for W {
/// #     type State = u64; type Input = u64; type Output = u64;
/// #     fn fresh_state(&self) -> u64 { 0 }
/// #     fn update(&self, s: &mut u64, i: &u64, _rng: &mut StatsRng) -> (u64, UpdateCost) {
/// #         *s += i; (*s, UpdateCost::with_work(1))
/// #     }
/// #     fn states_match(&self, a: &u64, b: &u64) -> bool { a == b }
/// #     fn state_bytes(&self) -> usize { 8 }
/// # }
/// let run = run_sequential(&W, &[1, 2, 3], 0);
/// assert_eq!(run.outputs, vec![1, 3, 6]);
/// assert_eq!(run.cost.work, 3);
/// ```
pub fn run_sequential<W: StateDependence>(
    workload: &W,
    inputs: &[W::Input],
    master_seed: u64,
) -> SequentialRun<W::State, W::Output> {
    let mut rng = StatsRng::derive(master_seed, StreamRole::Sequential);
    let mut state = workload.fresh_state();
    let mut outputs = Vec::with_capacity(inputs.len());
    let mut per_input_costs = Vec::with_capacity(inputs.len());
    let mut cost = UpdateCost::default();
    for input in inputs {
        let (out, c) = workload.update(&mut state, input, &mut rng);
        outputs.push(out);
        per_input_costs.push(c);
        cost = cost + c;
    }
    SequentialRun {
        outputs,
        final_state: state,
        cost,
        per_input_costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sum;
    impl StateDependence for Sum {
        type State = i64;
        type Input = i64;
        type Output = i64;
        fn fresh_state(&self) -> i64 {
            0
        }
        fn update(&self, s: &mut i64, i: &i64, _rng: &mut StatsRng) -> (i64, UpdateCost) {
            *s += i;
            (*s, UpdateCost::new(10, 20))
        }
        fn states_match(&self, a: &i64, b: &i64) -> bool {
            a == b
        }
        fn state_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn computes_prefix_sums() {
        let run = run_sequential(&Sum, &[1, 2, 3, 4], 0);
        assert_eq!(run.outputs, vec![1, 3, 6, 10]);
        assert_eq!(run.final_state, 10);
        assert_eq!(run.cost.work, 40);
        assert_eq!(run.cost.instructions, 80);
        assert_eq!(run.per_input_costs.len(), 4);
    }

    #[test]
    fn empty_input_is_fine() {
        let run = run_sequential(&Sum, &[], 0);
        assert!(run.outputs.is_empty());
        assert_eq!(run.final_state, 0);
        assert_eq!(run.cost, UpdateCost::default());
    }

    #[test]
    fn outside_work_adds_up() {
        let run = run_sequential(&Sum, &[1], 0);
        assert_eq!(run.total_work_with_outside((5, 7)), 22);
    }
}
