//! The three executors of the STATS execution model.
//!
//! * [`sequential`] — the reference executor: one thread, one state, the
//!   program as written. Baseline for every speedup in the paper.
//! * [`simulated`] — executes the model on the `stats-platform` machine,
//!   producing virtual-time traces with every critical point of the
//!   execution model instrumented (§V-B's methodology).
//! * [`threaded`] — the same protocol on real OS threads (a persistent
//!   [`pool`] of workers draining chunk/replica/rerun tasks), used to
//!   validate that the model is executable and that its commit/abort
//!   decisions match the simulator's exactly — and, via `native_scaling`,
//!   to measure how the model scales on real hardware.
//! * [`pool`] — the worker pool underneath the threaded executor: scoped
//!   task spawning, an urgent lane for commit-critical work, and a state
//!   free-list.

pub mod pool;
pub mod sequential;
pub mod simulated;
pub mod threaded;
