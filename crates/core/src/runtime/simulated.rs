//! The simulated STATS runtime: execution-model → task graph → machine.
//!
//! This executor mirrors §V-B of the paper: it timestamps "each critical
//! point of the STATS execution model" — setup, every alternative
//! producer, every original-state generation block, every comparison,
//! every state clone, every synchronization block, and the parallelized
//! region boundaries — by construction: each becomes a task with an
//! explicit category, scheduled on the modeled machine.

use crate::config::Config;
use crate::dependence::StateDependence;
use crate::fault::FaultPlan;
use crate::planner::plan_balanced;
use crate::report::{ChunkDecision, ResourceAccounting, RunReport};
use crate::runtime::sequential::run_sequential;
use crate::speculation::{run_speculative, SpeculationOutcome};
use crate::tlp::InnerParallelism;
use crate::UpdateCost;
use stats_platform::{Machine, SimError, TaskGraph, TaskId};
use stats_telemetry::{Counter, Event, TelemetrySink};
use stats_trace::{Category, Cycles, ThreadId};

/// Options controlling how an outcome is lowered to a task graph.
#[derive(Debug, Clone, Copy)]
pub struct GraphOptions {
    /// The workload's inner (original) parallelism profile.
    pub inner: InnerParallelism,
    /// Pretend every speculation committed: drop re-executions and keep
    /// speculative runs as useful work. Used by the mispeculation what-if
    /// of the attribution analysis (§III-E).
    pub assume_all_commit: bool,
    /// Work units of program code before/after the STATS region (§III-D).
    pub outside_work: (u64, u64),
    /// Synchronized runtime handoffs per update (see
    /// [`StateDependence::sync_ops_per_update`]).
    pub sync_ops_per_update: u64,
    /// Lazy original-state replication: generate replicas one at a time,
    /// stopping at the first match, instead of the paper's eager parallel
    /// generation (Fig. 5). An execution-model evolution in the spirit of
    /// the paper's conclusion — trades replica *work* for commit
    /// *latency*; quantified by the `replication` ablation.
    pub lazy_replicas: bool,
}

impl Default for GraphOptions {
    fn default() -> Self {
        GraphOptions {
            inner: InnerParallelism::none(),
            assume_all_commit: false,
            outside_work: (0, 0),
            sync_ops_per_update: 1,
            lazy_replicas: false,
        }
    }
}

/// Deterministic thread-id layout of the generated parallel program.
#[derive(Debug, Clone, Copy)]
struct ThreadLayout {
    chunks: usize,
    extra_states: usize,
    width: usize,
    /// `b`: speculation breadth; candidates beyond the primary get their
    /// own threads after the shard block.
    breadth: usize,
}

impl ThreadLayout {
    fn main(&self) -> ThreadId {
        ThreadId(0)
    }
    fn worker(&self, c: usize) -> ThreadId {
        ThreadId(1 + c)
    }
    fn replica(&self, boundary: usize, j: usize) -> ThreadId {
        ThreadId(1 + self.chunks + boundary * self.extra_states + j)
    }
    fn shard(&self, c: usize, s: usize) -> ThreadId {
        let boundaries = self.chunks.saturating_sub(1);
        ThreadId(1 + self.chunks + boundaries * self.extra_states + c * self.width + s)
    }
    /// Thread of chunk `c`'s `q`-th *losing* breadth candidate (the
    /// realized candidate runs on [`ThreadLayout::worker`]).
    fn candidate(&self, c: usize, q: usize) -> ThreadId {
        let boundaries = self.chunks.saturating_sub(1);
        let base = 1 + self.chunks + boundaries * self.extra_states + self.chunks * self.width;
        ThreadId(base + c * self.breadth.saturating_sub(1) + q)
    }
}

/// Effective inner-TLP width for a configuration on a machine.
pub fn effective_width(config: &Config, inner: &InnerParallelism, cores: usize) -> usize {
    if config.combine_inner_tlp && inner.is_parallel() {
        (cores / config.chunks).max(1).min(inner.max_width)
    } else {
        1
    }
}

/// Emit one (possibly sharded) compute segment on `worker`'s thread.
/// Returns the id of the task that signals segment completion.
///
/// `updates` is the number of original-program updates the segment covers:
/// inner (original) TLP forks and joins *per update* — per frame in
/// bodytrack, per point batch in streamcluster — so its synchronization
/// cost scales with both width and update count, which is what makes the
/// original TLP saturate in Fig. 9.
#[allow(clippy::too_many_arguments)]
fn emit_compute(
    g: &mut TaskGraph,
    machine: &Machine,
    layout: &ThreadLayout,
    chunk: usize,
    category: Category,
    cost: UpdateCost,
    updates: u64,
    inner: &InnerParallelism,
    label: &str,
) -> TaskId {
    let cm = machine.cost_model();
    let worker = layout.worker(chunk);
    let width = layout.width;
    if width <= 1 || !inner.is_parallel() || cost.work == 0 {
        return g.task_full(
            worker,
            category,
            cm.work(cost.work),
            cost.instructions,
            Vec::new(),
            Some(label.to_string()),
        );
    }
    let updates = updates.max(1);
    let (serial, per_shard) = inner.split_work(cost.work, width);
    let serial_instr = (cost.instructions as f64 * serial as f64 / cost.work as f64) as u64;
    let shard_instr = (cost.instructions - serial_instr) / width as u64;
    let serial_task = g.task_full(
        worker,
        category,
        cm.work(serial),
        serial_instr,
        Vec::new(),
        Some(format!("{label} serial")),
    );
    // Fork: the worker signals `width` shard threads, once per update.
    let fork = g.task_full(
        worker,
        Category::Sync,
        Cycles(cm.sync_wakeup.get() * width as u64 * updates),
        200 * width as u64 * updates,
        vec![serial_task],
        Some(format!("{label} fork")),
    );
    let mut shard_ids = Vec::with_capacity(width);
    for s in 0..width {
        let id = g.task_full(
            layout.shard(chunk, s),
            category,
            cm.work(per_shard),
            shard_instr,
            vec![fork],
            Some(format!("{label} shard {s}")),
        );
        shard_ids.push(id);
    }
    g.task_full(
        worker,
        Category::Sync,
        Cycles(cm.sync_block.get() * updates),
        200 * updates,
        shard_ids,
        Some(format!("{label} join")),
    )
}

/// Lower a speculation outcome to a schedulable task graph.
///
/// The graph reproduces the execution model of Figs. 2b/5/6/7: alternative
/// producers feed chunk threads, original-state replicas fork off each
/// realized chunk's snapshot, comparisons gate sequential-order commits,
/// and aborts trigger serialized re-execution.
pub fn build_task_graph<O>(
    name: &str,
    outcome: &SpeculationOutcome<O>,
    machine: &Machine,
    opts: &GraphOptions,
) -> TaskGraph {
    build_task_graph_observed(name, outcome, machine, opts, None)
}

/// [`build_task_graph`] with live telemetry: every emitted task is also
/// recorded as a `(category, cycles)` span in the sink at lowering time.
///
/// The machine later creates exactly one trace span per task with the
/// same duration, so a snapshot of the sink reconciles 1:1 — span counts
/// and cycle sums per category — against the executed trace. That makes
/// the telemetry-vs-trace comparison a genuine lowering-vs-execution
/// cross-check rather than two reads of the same data.
pub fn build_task_graph_observed<O>(
    name: &str,
    outcome: &SpeculationOutcome<O>,
    machine: &Machine,
    opts: &GraphOptions,
    telemetry: Option<&TelemetrySink>,
) -> TaskGraph {
    let graph = build_graph_inner(name, outcome, machine, opts);
    if let Some(t) = telemetry {
        for task in graph.tasks() {
            t.record_span(task.category, task.duration);
        }
    }
    graph
}

fn build_graph_inner<O>(
    name: &str,
    outcome: &SpeculationOutcome<O>,
    machine: &Machine,
    opts: &GraphOptions,
) -> TaskGraph {
    let cm = *machine.cost_model();
    let config = outcome.config;
    let chunks = outcome.chunks.len();
    let bytes = outcome.state_bytes;
    // Copy tasks are charged for the bytes the protocol *materialized*,
    // not the bytes it logically replicated: under the deep strategy the
    // two totals are equal, so the historical lowering is reproduced
    // bit-for-bit; under copy-on-write each clone point is scaled by the
    // run's measured materialization ratio.
    let copy_bytes = {
        let logical = outcome.bytes_logical();
        let copied = outcome.bytes_copied();
        if logical == 0 {
            bytes
        } else {
            (bytes as u128 * copied as u128 / logical as u128) as usize
        }
    };
    let width = effective_width(&config, &opts.inner, machine.topology().total_cores());
    let breadth = config.spec_breadth.max(1);
    let layout = ThreadLayout {
        chunks,
        extra_states: config.extra_states,
        width,
        breadth,
    };
    let acc = ResourceAccounting::for_config(&config, bytes, width);
    let mut g = TaskGraph::new(name);

    // ---- main thread prologue -------------------------------------------
    let out_before = g.task_full(
        layout.main(),
        Category::OutsideRegion,
        cm.work(opts.outside_work.0),
        opts.outside_work.0 * 2,
        Vec::new(),
        Some("code before STATS".into()),
    );
    let setup = g.task_full(
        layout.main(),
        Category::Setup,
        cm.setup(acc.threads, acc.states, bytes),
        acc.states as u64 * 100 + acc.threads as u64 * 400,
        vec![out_before],
        Some("STATS setup".into()),
    );

    // Per-chunk bookkeeping filled during emission.
    let mut spec_copy: Vec<Option<TaskId>> = vec![None; chunks];
    let mut realized_last: Vec<TaskId> = Vec::with_capacity(chunks);
    // Snapshot copies feeding each boundary's replicas.
    let mut snap_copies: Vec<Vec<TaskId>> = vec![Vec::new(); chunks];
    // Speculative-state hand-offs of the losing breadth candidates; the
    // commit check waits on these alongside the realized candidate's.
    let mut cand_copies: Vec<Vec<TaskId>> = vec![Vec::new(); chunks];
    let mut commit: Vec<Option<TaskId>> = vec![None; chunks];

    let aborted = |c: usize| !opts.assume_all_commit && outcome.chunks[c].aborted();

    // ---- pass 1: worker pipelines (speculative runs) ---------------------
    for c in 0..chunks {
        let ch = &outcome.chunks[c];
        let worker = layout.worker(c);
        let len = ch.range.len();
        let suffix_n = config.lookback.min(len) as u64;
        let prefix_n = (len as u64) - suffix_n;
        // Worker wake-up after setup.
        let wake = g.task_full(
            worker,
            Category::Sync,
            cm.sync_wakeup + cm.sync_block,
            300,
            vec![setup],
            Some(format!("chunk {c} start")),
        );
        let _ = wake;
        // Runtime dispatch: every input of the chunk flows through the
        // STATS runtime's synchronized lists; oversubscribed thread counts
        // (Table I) pay scheduler latency per signal (§III-C).
        let per_update = cm.per_update_sync(acc.threads, machine.topology().total_cores());
        g.task_full(
            worker,
            Category::Sync,
            Cycles(per_update.get() * opts.sync_ops_per_update * len as u64),
            40 * opts.sync_ops_per_update * len as u64,
            Vec::new(),
            Some(format!("runtime dispatch {c}")),
        );
        if let Some(alt) = ch.alt_cost {
            g.task_full(
                worker,
                Category::AltProducer,
                cm.work(alt.work),
                alt.instructions,
                Vec::new(),
                Some(format!("alt producer {c}")),
            );
            // Copy of the speculative state handed to the runtime for the
            // later comparison (Fig. 6).
            let copy = g.task_full(
                worker,
                Category::StateCopy,
                cm.state_copy(machine.topology(), copy_bytes, worker, layout.worker(c - 1)),
                cm.copy_instructions(copy_bytes),
                Vec::new(),
                Some(format!("spec state copy {c}")),
            );
            spec_copy[c] = Some(copy);
        }
        // Losing breadth candidates: each runs its own alternative producer
        // and speculative chunk on a dedicated thread, then hands its start
        // state to the runtime for the commit check. The compute is charged
        // as AbortedCompute — it occupies a core but produces no realized
        // outputs — and is kept under `assume_all_commit`: breadth work is
        // a deliberate hedge, not mispeculation, so the mispeculation-free
        // ceiling still pays for it.
        for (q, cand) in ch.losing_candidates.iter().enumerate() {
            let cthread = layout.candidate(c, q);
            g.task_full(
                cthread,
                Category::Sync,
                cm.sync_wakeup + cm.sync_block,
                300,
                vec![setup],
                Some(format!("candidate {c}.{q} start")),
            );
            g.task_full(
                cthread,
                Category::AltProducer,
                cm.work(cand.alt.work),
                cand.alt.instructions,
                Vec::new(),
                Some(format!("alt candidate {c}.{q}")),
            );
            let copy = g.task_full(
                cthread,
                Category::StateCopy,
                cm.state_copy(
                    machine.topology(),
                    copy_bytes,
                    cthread,
                    layout.worker(c - 1),
                ),
                cm.copy_instructions(copy_bytes),
                Vec::new(),
                Some(format!("candidate state copy {c}.{q}")),
            );
            cand_copies[c].push(copy);
            let total = cand.prefix + cand.suffix;
            g.task_full(
                cthread,
                Category::AbortedCompute,
                cm.work(total.work),
                total.instructions,
                Vec::new(),
                Some(format!("candidate {c}.{q} compute")),
            );
        }
        let compute_cat = if aborted(c) {
            Category::AbortedCompute
        } else {
            Category::ChunkCompute
        };
        let prefix = emit_compute(
            &mut g,
            machine,
            &layout,
            c,
            compute_cat,
            ch.spec_prefix,
            prefix_n,
            &opts.inner,
            &format!("chunk {c} prefix"),
        );
        let _ = prefix;
        // Snapshot copies for this chunk's boundary replicas — only on the
        // realized path; for committed chunks that is the speculative run.
        if !aborted(c) {
            for j in 0..ch.replica_costs.len() {
                let snap = g.task_full(
                    worker,
                    Category::StateCopy,
                    cm.state_copy(machine.topology(), copy_bytes, worker, layout.replica(c, j)),
                    cm.copy_instructions(copy_bytes),
                    Vec::new(),
                    Some(format!("snapshot {c}.{j}")),
                );
                snap_copies[c].push(snap);
            }
        }
        let suffix = emit_compute(
            &mut g,
            machine,
            &layout,
            c,
            compute_cat,
            ch.spec_suffix,
            suffix_n,
            &opts.inner,
            &format!("chunk {c} suffix"),
        );
        realized_last.push(suffix);
        if c == 0 {
            // Chunk 0 needs no validation: a trivial commit record.
            let cmt = g.task_full(
                worker,
                Category::Commit,
                Cycles(200),
                100,
                Vec::new(),
                Some("commit 0".into()),
            );
            commit[0] = Some(cmt);
        }
    }

    // ---- pass 2: boundary validation, commits, re-executions -------------
    for c in 1..chunks {
        let b = c - 1; // producing boundary
        let producer = layout.worker(b);
        let m = outcome.chunks[b].replica_costs.len();

        // Original-state replicas at boundary b. Eagerly they run in
        // parallel on their own threads (Fig. 5's blocks); lazily they
        // chain on one thread and stop at the first matching state.
        let lazy_needed = match outcome.chunks[c].matched_original {
            Some(j) => j, // j replicas were generated before the match
            None => m,    // no match: all replicas were tried
        };
        let mut replica_tasks = Vec::with_capacity(m);
        let mut lazy_prev: Option<TaskId> = None;
        for (j, rc) in outcome.chunks[b].replica_costs.iter().enumerate() {
            if opts.lazy_replicas && j >= lazy_needed && !opts.assume_all_commit {
                break;
            }
            let rthread = if opts.lazy_replicas {
                layout.replica(b, 0)
            } else {
                layout.replica(b, j)
            };
            let dep = snap_copies[b].get(j).copied();
            let mut sync_deps: Vec<TaskId> = dep.into_iter().collect();
            if let Some(prev) = lazy_prev {
                sync_deps.push(prev);
            }
            let sync = g.task_full(
                rthread,
                Category::Sync,
                cm.sync_wakeup + cm.sync_block,
                300,
                sync_deps,
                Some(format!("replica {b}.{j} start")),
            );
            let rep = g.task_full(
                rthread,
                Category::OriginalStateGen,
                cm.work(rc.work),
                rc.instructions,
                vec![sync],
                Some(format!("original state {b}.{j}")),
            );
            if opts.lazy_replicas {
                lazy_prev = Some(rep);
            }
            replica_tasks.push(rep);
        }

        // Comparison on the producer's thread, gated by sequential commit
        // order, the speculative-state copy, and the replicas.
        let mut cmp_deps: Vec<TaskId> = Vec::new();
        if let Some(sc) = spec_copy[c] {
            cmp_deps.push(sc);
        }
        cmp_deps.extend(cand_copies[c].iter().copied());
        cmp_deps.extend(replica_tasks.iter().copied());
        if let Some(prev_commit) = commit[b] {
            cmp_deps.push(prev_commit);
        }
        let cmp_sync = g.task_full(
            producer,
            Category::Sync,
            cm.sync_block,
            250,
            cmp_deps,
            Some(format!("await boundary {b}")),
        );
        // The candidate-major check compares each tried candidate against
        // all m+1 originals; the cost model charges the full sweep per
        // tried candidate (it already charged m+1 per chunk at breadth 1
        // despite the early exit inside a candidate's sweep).
        let tried = outcome.chunks[c]
            .matched_candidate
            .map(|w| w as u64 + 1)
            .unwrap_or(breadth as u64);
        let cmp = g.task_full(
            producer,
            Category::StateComparison,
            Cycles(cm.state_compare(bytes).get() * (m as u64 + 1) * tried),
            cm.compare_instructions(bytes) * (m as u64 + 1) * tried,
            vec![cmp_sync],
            Some(format!("compare chunk {c}")),
        );
        let cmt = g.task_full(
            producer,
            Category::Commit,
            Cycles(200),
            100,
            vec![cmp],
            Some(format!("decide chunk {c}")),
        );
        commit[c] = Some(cmt);

        // Abort path: serialized re-execution from the true state.
        if aborted(c) {
            let worker = layout.worker(c);
            let rr_sync = g.task_full(
                worker,
                Category::Sync,
                cm.sync_wakeup + cm.sync_block,
                300,
                vec![cmt],
                Some(format!("abort notify {c}")),
            );
            let _ = rr_sync;
            g.task_full(
                worker,
                Category::StateCopy,
                cm.state_copy(machine.topology(), copy_bytes, producer, worker),
                cm.copy_instructions(copy_bytes),
                Vec::new(),
                Some(format!("true state copy {c}")),
            );
            let (rp, rs) = outcome.chunks[c].rerun.expect("aborted chunk has a rerun");
            let rlen = outcome.chunks[c].range.len();
            let rerun_suffix_n = config.lookback.min(rlen) as u64;
            let rerun_prefix_n = (rlen as u64) - rerun_suffix_n;
            emit_compute(
                &mut g,
                machine,
                &layout,
                c,
                Category::ChunkCompute,
                rp,
                rerun_prefix_n,
                &opts.inner,
                &format!("chunk {c} rerun prefix"),
            );
            for j in 0..outcome.chunks[c].replica_costs.len() {
                let snap = g.task_full(
                    worker,
                    Category::StateCopy,
                    cm.state_copy(machine.topology(), copy_bytes, worker, layout.replica(c, j)),
                    cm.copy_instructions(copy_bytes),
                    Vec::new(),
                    Some(format!("snapshot {c}.{j} (rerun)")),
                );
                snap_copies[c].push(snap);
            }
            let rsuf = emit_compute(
                &mut g,
                machine,
                &layout,
                c,
                Category::ChunkCompute,
                rs,
                rerun_suffix_n,
                &opts.inner,
                &format!("chunk {c} rerun suffix"),
            );
            realized_last[c] = rsuf;
        }
    }

    // ---- main thread epilogue --------------------------------------------
    let mut join_deps: Vec<TaskId> = realized_last.clone();
    if let Some(last_commit) = commit[chunks - 1] {
        join_deps.push(last_commit);
    }
    let join = g.task_full(
        layout.main(),
        Category::Sync,
        Cycles(cm.sync_block.get() * chunks as u64),
        250 * chunks as u64,
        join_deps,
        Some("join workers".into()),
    );
    g.task_full(
        layout.main(),
        Category::OutsideRegion,
        cm.work(opts.outside_work.1),
        opts.outside_work.1 * 2,
        vec![join],
        Some("code after STATS".into()),
    );

    g
}

/// Record the protocol counters and chunk-lifecycle events a threaded run
/// would have recorded live, derived from the semantic outcome.
///
/// The recording points are shared with
/// [`crate::runtime::threaded::run_threaded_observed`]: chunk starts,
/// `b` breadth candidates and speculative-state hand-offs per producer,
/// `m` replica snapshots per boundary, the candidate-major ordered
/// comparison count (`w*(1+m) + 1 + i` on a commit won by candidate `w`
/// matching original `i`; `b*(1+m)` on an abort), and one true-state
/// transfer plus [`Config::rerun_segments`] pool segments per abort — so
/// both runtimes report identical protocol totals for the same
/// `(workload, inputs, config, seed)`.
fn record_outcome_telemetry<O>(outcome: &SpeculationOutcome<O>, t: &TelemetrySink) {
    let breadth = outcome.config.spec_breadth.max(1) as u64;
    for (c, ch) in outcome.chunks.iter().enumerate() {
        t.incr(c, Counter::ChunksStarted);
        t.event(&Event::ChunkStarted {
            chunk: c,
            len: ch.range.len(),
        });
        t.add(c, Counter::StateBytesLogical, ch.bytes_logical);
        t.add(c, Counter::StateBytesCopied, ch.bytes_copied);
        if c == 0 {
            continue;
        }
        let m = outcome.chunks[c - 1].replica_costs.len();
        // One speculative-state hand-off per breadth candidate, then one
        // snapshot clone per replica.
        t.add(c, Counter::SpecCandidates, breadth);
        t.add(c, Counter::StateCopies, breadth);
        t.add(c, Counter::ReplicasValidated, m as u64);
        t.add(c, Counter::StateCopies, m as u64);
        let comparisons = match (ch.matched_candidate, ch.matched_original) {
            (Some(w), Some(i)) => (w as u64) * (1 + m as u64) + 1 + i as u64,
            _ => breadth * (1 + m as u64),
        };
        t.add(c, Counter::StateComparisons, comparisons);
        t.event(&Event::ValidationFinished {
            chunk: c,
            comparisons,
            matched_original: ch.matched_original,
        });
        match ch.decision {
            ChunkDecision::Committed => {
                let winner = ch.matched_candidate.expect("committed chunk has a winner");
                t.incr(c, Counter::ChunksCommitted);
                if winner > 0 {
                    t.incr(c, Counter::CandidateHits);
                }
                t.event(&Event::ChunkCommitted { chunk: c });
                t.event(&Event::CandidateCommitted {
                    chunk: c,
                    candidate: winner,
                    original: ch.matched_original.expect("committed chunk matched"),
                });
            }
            ChunkDecision::Aborted => {
                t.incr(c, Counter::ChunksAborted);
                t.incr(c, Counter::Reruns);
                // True-state transfer to the re-executing chunk.
                t.incr(c, Counter::StateCopies);
                t.event(&Event::ChunkAborted { chunk: c });
                let segments = outcome.config.rerun_segments(ch.range.len());
                t.add(c, Counter::RerunSegments, segments as u64);
                for segment in 0..segments {
                    t.event(&Event::RerunSegmentFinished { chunk: c, segment });
                }
                t.event(&Event::RerunFinished { chunk: c });
            }
            ChunkDecision::First => {}
        }
    }
    t.event(&Event::RunFinished {
        committed: outcome
            .chunks
            .iter()
            .filter(|c| c.decision == ChunkDecision::Committed)
            .count(),
        aborted: outcome.aborts(),
        // The simulated lowering schedules one virtual worker per chunk.
        workers: outcome.chunks.len(),
    });
}

/// The simulated STATS runtime: a machine plus the lowering logic.
#[derive(Debug, Clone)]
pub struct SimulatedRuntime {
    machine: Machine,
}

impl SimulatedRuntime {
    /// Create a runtime on the given machine.
    pub fn new(machine: Machine) -> Self {
        SimulatedRuntime { machine }
    }

    /// A runtime on the paper's 28-core machine.
    pub fn paper_machine() -> Self {
        SimulatedRuntime::new(Machine::paper_machine())
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Run `workload` over `inputs` under `config`, producing a full
    /// report: outputs, decisions, instrumented trace, and baselines.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the platform (only possible on an
    /// internal bug: generated graphs are acyclic by construction).
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid for `inputs.len()`.
    pub fn run<W: StateDependence>(
        &self,
        name: &str,
        workload: &W,
        inputs: &[W::Input],
        config: Config,
        inner: InnerParallelism,
        master_seed: u64,
    ) -> Result<RunReport<W::Output>, SimError> {
        self.run_observed(name, workload, inputs, config, inner, master_seed, None)
    }

    /// [`SimulatedRuntime::run`] with live telemetry.
    ///
    /// The sink receives the same protocol counters a threaded run records
    /// (derived from the semantic outcome), per-category span accounting
    /// recorded at task-graph lowering time (reconciling 1:1 with the
    /// executed trace), busy/idle cycle totals, and chunk-lifecycle events
    /// if an event log is attached.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the platform.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid for `inputs.len()`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed<W: StateDependence>(
        &self,
        name: &str,
        workload: &W,
        inputs: &[W::Input],
        config: Config,
        inner: InnerParallelism,
        master_seed: u64,
        telemetry: Option<&TelemetrySink>,
    ) -> Result<RunReport<W::Output>, SimError> {
        let outcome = run_speculative(workload, inputs, config, master_seed);
        let opts = GraphOptions {
            inner,
            assume_all_commit: false,
            outside_work: workload.outside_region_work(),
            sync_ops_per_update: workload.sync_ops_per_update(),
            lazy_replicas: false,
        };
        self.run_from_outcome_observed(
            name,
            workload,
            inputs,
            outcome,
            opts,
            master_seed,
            telemetry,
        )
    }

    /// [`SimulatedRuntime::run_observed`] under a fault plan.
    ///
    /// Decisions, outputs, and protocol counters are those of the
    /// fault-free run — injected faults are observationally invisible by
    /// design (every injection fires at task entry, before any protocol
    /// recording, and the clearing attempt records exactly once). The
    /// simulated runtime therefore derives the fault counters and events
    /// post hoc from the plan itself: which injection sites *execute* is a
    /// pure function of (config, chunk plan, decisions), so the derived
    /// totals reconcile exactly with a threaded run under the same plan.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the platform.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid for `inputs.len()`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed_faulted<W: StateDependence>(
        &self,
        name: &str,
        workload: &W,
        inputs: &[W::Input],
        config: Config,
        inner: InnerParallelism,
        master_seed: u64,
        faults: &FaultPlan,
        telemetry: Option<&TelemetrySink>,
    ) -> Result<RunReport<W::Output>, SimError> {
        let report = self.run_observed(
            name,
            workload,
            inputs,
            config,
            inner,
            master_seed,
            telemetry,
        )?;
        if let Some(t) = telemetry {
            let plan = plan_balanced(inputs.len(), config.chunks);
            faults.record_into(t, &config, &plan, &report.decisions);
            t.flush();
        }
        Ok(report)
    }

    /// Lower and execute a precomputed outcome (lets callers reuse one
    /// semantic run across several what-if graphs). `inputs` must be the
    /// same stream the outcome was computed from: it is re-run sequentially
    /// to establish the baseline.
    pub fn run_from_outcome<W: StateDependence>(
        &self,
        name: &str,
        workload: &W,
        inputs: &[W::Input],
        outcome: SpeculationOutcome<W::Output>,
        opts: GraphOptions,
        master_seed: u64,
    ) -> Result<RunReport<W::Output>, SimError> {
        self.run_from_outcome_observed(name, workload, inputs, outcome, opts, master_seed, None)
    }

    /// [`SimulatedRuntime::run_from_outcome`] with live telemetry (see
    /// [`SimulatedRuntime::run_observed`] for what gets recorded).
    #[allow(clippy::too_many_arguments)]
    pub fn run_from_outcome_observed<W: StateDependence>(
        &self,
        name: &str,
        workload: &W,
        inputs: &[W::Input],
        outcome: SpeculationOutcome<W::Output>,
        opts: GraphOptions,
        master_seed: u64,
        telemetry: Option<&TelemetrySink>,
    ) -> Result<RunReport<W::Output>, SimError> {
        let graph = build_task_graph_observed(name, &outcome, &self.machine, &opts, telemetry);
        let execution = self.machine.execute(&graph)?;
        if let Some(t) = telemetry {
            record_outcome_telemetry(&outcome, t);
            // Busy/idle in simulated cycles: span time vs. the rest of the
            // threads' lifetimes up to the makespan.
            let busy: u64 = execution
                .trace
                .spans()
                .iter()
                .map(|s| s.duration().get())
                .sum();
            let lifetime = execution.trace.makespan().get() * execution.trace.thread_count() as u64;
            t.add(0, Counter::BusyTime, busy);
            t.add(0, Counter::IdleTime, lifetime.saturating_sub(busy));
            t.flush();
        }
        let cm = self.machine.cost_model();
        let (seq_cycles, seq_instr) = {
            // The sequential baseline with the same master seed, so
            // nondeterministic per-run costs are honestly sampled.
            let run = run_sequential(workload, inputs, master_seed);
            let outside = opts.outside_work.0 + opts.outside_work.1;
            (
                cm.work(run.cost.work + outside),
                run.cost.instructions + outside * 2,
            )
        };
        let width = effective_width(
            &outcome.config,
            &opts.inner,
            self.machine.topology().total_cores(),
        );
        let accounting =
            ResourceAccounting::for_config(&outcome.config, outcome.state_bytes, width);
        let decisions: Vec<ChunkDecision> = outcome.chunks.iter().map(|c| c.decision).collect();
        Ok(RunReport {
            outputs: outcome.outputs,
            decisions,
            execution,
            sequential_cycles: seq_cycles,
            sequential_instructions: seq_instr,
            config: outcome.config,
            accounting,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StatsRng;
    use crate::snapshot::SnapshotStrategy;
    use stats_trace::TraceSummary;

    struct Ema {
        decay: f64,
        tolerance: f64,
        outside: (u64, u64),
    }

    impl StateDependence for Ema {
        type State = f64;
        type Input = f64;
        type Output = f64;
        fn fresh_state(&self) -> f64 {
            0.0
        }
        fn update(&self, state: &mut f64, input: &f64, rng: &mut StatsRng) -> (f64, UpdateCost) {
            *state = self.decay * *state + (1.0 - self.decay) * (*input + rng.noise(0.001));
            (*state, UpdateCost::with_work(400_000))
        }
        fn states_match(&self, a: &f64, b: &f64) -> bool {
            (a - b).abs() < self.tolerance
        }
        fn state_bytes(&self) -> usize {
            104
        }
        fn outside_region_work(&self) -> (u64, u64) {
            self.outside
        }
    }

    fn short_memory() -> Ema {
        Ema {
            decay: 0.5,
            tolerance: 0.05,
            outside: (0, 0),
        }
    }

    fn inputs(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.05).sin()).collect()
    }

    #[test]
    fn stats_run_speeds_up_and_preserves_output_count() {
        let rt = SimulatedRuntime::paper_machine();
        let w = short_memory();
        let ins = inputs(560);
        let cfg = Config::stats_only(28, 16, 2);
        let report = rt
            .run("ema", &w, &ins, cfg, InnerParallelism::none(), 42)
            .unwrap();
        assert_eq!(report.outputs.len(), 560);
        assert_eq!(report.aborts(), 0);
        let speedup = report.speedup();
        assert!(
            speedup > 6.0 && speedup < 28.0,
            "expected sublinear parallel speedup, got {speedup}"
        );
        // The paper's core claim: STATS TLP scales with the amount of
        // input. Quadrupling the inputs improves the speedup.
        let big = inputs(2_240);
        let report_big = rt
            .run("ema-big", &w, &big, cfg, InnerParallelism::none(), 42)
            .unwrap();
        assert!(
            report_big.speedup() > speedup * 1.3,
            "speedup should scale with input size: {} vs {speedup}",
            report_big.speedup()
        );
    }

    #[test]
    fn sequential_config_speedup_near_one() {
        let rt = SimulatedRuntime::paper_machine();
        let w = short_memory();
        let ins = inputs(100);
        let report = rt
            .run(
                "ema-seq",
                &w,
                &ins,
                Config::sequential(),
                InnerParallelism::none(),
                1,
            )
            .unwrap();
        let s = report.speedup();
        assert!(s > 0.9 && s <= 1.01, "speedup {s}");
    }

    #[test]
    fn original_tlp_saturates() {
        let rt = SimulatedRuntime::paper_machine();
        let w = short_memory();
        let ins = inputs(100);
        let inner = InnerParallelism::amdahl(0.75, usize::MAX);
        let report = rt
            .run("ema-orig", &w, &ins, Config::original_only(), inner, 1)
            .unwrap();
        let s = report.speedup();
        assert!(s > 2.0 && s < 4.5, "Amdahl-limited speedup, got {s}");
    }

    #[test]
    fn trace_contains_every_model_category() {
        let rt = SimulatedRuntime::paper_machine();
        let w = Ema {
            outside: (100_000, 50_000),
            ..short_memory()
        };
        let ins = inputs(280);
        let cfg = Config::stats_only(14, 10, 2);
        let report = rt
            .run("ema-cat", &w, &ins, cfg, InnerParallelism::none(), 3)
            .unwrap();
        let cats = report.execution.trace.cycles_by_category();
        for c in [
            Category::Setup,
            Category::AltProducer,
            Category::OriginalStateGen,
            Category::StateComparison,
            Category::StateCopy,
            Category::Sync,
            Category::ChunkCompute,
            Category::Commit,
            Category::OutsideRegion,
        ] {
            assert!(
                cats.get(&c).map(|x| x.get() > 0).unwrap_or(false),
                "category {c} missing from trace"
            );
        }
    }

    #[test]
    fn aborts_create_aborted_compute_spans() {
        let rt = SimulatedRuntime::paper_machine();
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-7,
            outside: (0, 0),
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 1);
        let report = rt
            .run("ema-abort", &w, &ins, cfg, InnerParallelism::none(), 7)
            .unwrap();
        assert!(report.aborts() > 0);
        let cats = report.execution.trace.cycles_by_category();
        assert!(cats.contains_key(&Category::AbortedCompute));
        // Aborts serialize: speedup well below chunk count.
        assert!(report.speedup() < 3.0, "speedup {}", report.speedup());
    }

    #[test]
    fn assume_all_commit_removes_reruns() {
        let machine = Machine::paper_machine();
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-7,
            outside: (0, 0),
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 1);
        let outcome = run_speculative(&w, &ins, cfg, 7);
        assert!(outcome.aborts() > 0);
        let with = build_task_graph("with", &outcome, &machine, &GraphOptions::default());
        let without = build_task_graph(
            "without",
            &outcome,
            &machine,
            &GraphOptions {
                assume_all_commit: true,
                ..GraphOptions::default()
            },
        );
        let r_with = machine.execute(&with).unwrap();
        let r_without = machine.execute(&without).unwrap();
        assert!(
            r_without.makespan < r_with.makespan,
            "all-commit must be faster: {} vs {}",
            r_without.makespan,
            r_with.makespan
        );
        let cats = r_without.trace.cycles_by_category();
        assert!(
            !cats.contains_key(&Category::AbortedCompute)
                || cats[&Category::AbortedCompute].get() == 0
        );
    }

    #[test]
    fn combined_mode_uses_shard_threads() {
        let rt = SimulatedRuntime::paper_machine();
        let w = short_memory();
        let ins = inputs(280);
        let cfg = Config {
            chunks: 14,
            lookback: 10,
            extra_states: 1,
            combine_inner_tlp: true,
            snapshot: SnapshotStrategy::DeepClone,
            spec_breadth: 1,
            overlap_rerun: false,
        };
        let inner = InnerParallelism::amdahl(0.8, usize::MAX);
        let report = rt.run("ema-combined", &w, &ins, cfg, inner, 5).unwrap();
        // width = 28/14 = 2 -> shard threads exist beyond main+workers+replicas.
        let acc = &report.accounting;
        assert!(acc.threads > 1 + 14 + 13);
        let report_solo = rt
            .run(
                "ema-solo",
                &w,
                &ins,
                Config::stats_only(14, 10, 1),
                inner,
                5,
            )
            .unwrap();
        assert!(
            report.speedup() > report_solo.speedup(),
            "combining TLP should help: {} vs {}",
            report.speedup(),
            report_solo.speedup()
        );
    }

    #[test]
    fn imbalance_shows_up_in_summary() {
        let rt = SimulatedRuntime::paper_machine();
        let w = short_memory();
        let ins = inputs(290); // 290/28 leaves uneven chunks
        let cfg = Config::stats_only(28, 5, 1);
        let report = rt
            .run("ema-imb", &w, &ins, cfg, InnerParallelism::none(), 2)
            .unwrap();
        let summary = TraceSummary::from_trace(&report.execution.trace);
        assert!(summary.imbalance() > 0.0);
    }

    #[test]
    fn observed_snapshot_reconciles_with_trace() {
        use stats_trace::CATEGORIES;
        let rt = SimulatedRuntime::paper_machine();
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-7,
            outside: (50_000, 10_000),
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 1);
        let sink = TelemetrySink::new(cfg.chunks);
        let report = rt
            .run_observed(
                "ema-obs",
                &w,
                &ins,
                cfg,
                InnerParallelism::none(),
                7,
                Some(&sink),
            )
            .unwrap();
        assert!(report.aborts() > 0);
        let snap = sink.snapshot();
        assert!(snap.consistent);

        // Span accounting recorded at lowering time must match the
        // executed trace exactly, per category — counts and cycles.
        let trace = &report.execution.trace;
        for cat in CATEGORIES {
            let trace_spans = trace.spans().iter().filter(|s| s.category == cat).count() as u64;
            let trace_cycles: u64 = trace
                .spans()
                .iter()
                .filter(|s| s.category == cat)
                .map(|s| s.duration().get())
                .sum();
            assert_eq!(snap.category_spans(cat), trace_spans, "{cat} span count");
            assert_eq!(snap.category_cycles(cat), trace_cycles, "{cat} cycles");
        }

        // Protocol counters derive from the same outcome as the decisions.
        assert_eq!(snap.get(Counter::ChunksStarted), cfg.chunks as u64);
        assert_eq!(snap.get(Counter::ChunksAborted), report.aborts() as u64);
        assert_eq!(snap.get(Counter::Reruns), report.aborts() as u64);
        // Busy + idle spans the whole machine-time rectangle.
        assert_eq!(
            snap.get(Counter::BusyTime) + snap.get(Counter::IdleTime),
            trace.makespan().get() * trace.thread_count() as u64
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let rt = SimulatedRuntime::paper_machine();
        let w = short_memory();
        let ins = inputs(140);
        let cfg = Config::stats_only(7, 10, 1);
        let a = rt
            .run("ema-det", &w, &ins, cfg, InnerParallelism::none(), 11)
            .unwrap();
        let b = rt
            .run("ema-det", &w, &ins, cfg, InnerParallelism::none(), 11)
            .unwrap();
        assert_eq!(a.execution.makespan, b.execution.makespan);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.execution.schedule, b.execution.schedule);
    }

    #[test]
    fn more_chunks_more_extra_instructions() {
        let rt = SimulatedRuntime::paper_machine();
        let w = short_memory();
        let ins = inputs(560);
        let few = rt
            .run(
                "few",
                &w,
                &ins,
                Config::stats_only(4, 10, 2),
                InnerParallelism::none(),
                1,
            )
            .unwrap();
        let many = rt
            .run(
                "many",
                &w,
                &ins,
                Config::stats_only(28, 10, 2),
                InnerParallelism::none(),
                1,
            )
            .unwrap();
        assert!(
            many.extra_instruction_percent() > few.extra_instruction_percent(),
            "more TLP means more extra work (Fig. 12/13): {} vs {}",
            many.extra_instruction_percent(),
            few.extra_instruction_percent()
        );
    }

    #[test]
    fn breadth_graph_adds_candidate_threads_and_matches_counter_formulas() {
        let rt = SimulatedRuntime::paper_machine();
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-7,
            outside: (0, 0),
        };
        let ins = inputs(128);
        let b = 3usize;
        let cfg = Config::stats_only(4, 4, 2).with_breadth(b);
        let sink = TelemetrySink::new(cfg.chunks);
        let narrow = rt
            .run(
                "ema-b1",
                &w,
                &ins,
                Config::stats_only(4, 4, 2),
                InnerParallelism::none(),
                7,
            )
            .unwrap();
        let wide = rt
            .run_observed(
                "ema-b3",
                &w,
                &ins,
                cfg,
                InnerParallelism::none(),
                7,
                Some(&sink),
            )
            .unwrap();
        // The losing candidates occupy their own threads after the shard
        // block, so the breadth graph is strictly wider.
        assert!(
            wide.execution.trace.thread_count() > narrow.execution.trace.thread_count(),
            "breadth must add candidate threads: {} vs {}",
            wide.execution.trace.thread_count(),
            narrow.execution.trace.thread_count()
        );
        let snap = sink.snapshot();
        let chunks = cfg.chunks as u64;
        let m = cfg.extra_states as u64;
        let aborts = wide.aborts() as u64;
        assert_eq!(snap.get(Counter::SpecCandidates), (chunks - 1) * b as u64);
        assert_eq!(
            snap.get(Counter::StateCopies),
            (chunks - 1) * (b as u64 + m) + aborts
        );
        // Candidate hits are commits the primary would have lost; they are
        // bounded by the commit count and by the rescued aborts.
        let commits = chunks - 1 - aborts;
        assert!(snap.get(Counter::CandidateHits) <= commits);
        assert!(
            wide.aborts() <= narrow.aborts(),
            "breadth must not add aborts here: {} vs {}",
            wide.aborts(),
            narrow.aborts()
        );
    }

    #[test]
    fn breadth_commits_same_outputs_when_primary_always_wins() {
        // When candidate 0 matches everywhere (no aborts at breadth 1),
        // the candidate-major check commits candidate 0 at any breadth, so
        // outputs are identical and no candidate hits are recorded.
        let rt = SimulatedRuntime::paper_machine();
        let w = short_memory();
        let ins = inputs(280);
        let base = Config::stats_only(14, 10, 2);
        let narrow = rt
            .run("ema-n", &w, &ins, base, InnerParallelism::none(), 42)
            .unwrap();
        assert_eq!(narrow.aborts(), 0);
        let sink = TelemetrySink::new(base.chunks);
        let wide = rt
            .run_observed(
                "ema-w",
                &w,
                &ins,
                base.with_breadth(2),
                InnerParallelism::none(),
                42,
                Some(&sink),
            )
            .unwrap();
        assert_eq!(wide.outputs, narrow.outputs);
        assert_eq!(wide.aborts(), 0);
        assert_eq!(sink.snapshot().get(Counter::CandidateHits), 0);
    }

    #[test]
    fn assume_all_commit_keeps_dead_candidate_work() {
        // Breadth work is a hedge, not mispeculation: the
        // mispeculation-free ceiling still pays for the losing candidates,
        // so their AbortedCompute spans survive `assume_all_commit`.
        let machine = Machine::paper_machine();
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-7,
            outside: (0, 0),
        };
        let ins = inputs(128);
        let cfg = Config::stats_only(4, 4, 1).with_breadth(2);
        let outcome = run_speculative(&w, &ins, cfg, 7);
        let graph = build_task_graph(
            "ceiling",
            &outcome,
            &machine,
            &GraphOptions {
                assume_all_commit: true,
                ..GraphOptions::default()
            },
        );
        let r = machine.execute(&graph).unwrap();
        let cats = r.trace.cycles_by_category();
        assert!(
            cats.get(&Category::AbortedCompute)
                .map(|x| x.get() > 0)
                .unwrap_or(false),
            "losing candidates must survive assume_all_commit"
        );
    }

    #[test]
    fn overlap_rerun_is_a_noop_in_the_simulated_graph() {
        // The simulated lowering already overlaps an aborted boundary's
        // replicas with the rerun suffix via the snapshot-copy deps, so
        // `overlap_rerun` changes only the RerunSegments accounting.
        let rt = SimulatedRuntime::paper_machine();
        let w = Ema {
            decay: 0.999,
            tolerance: 1e-7,
            outside: (0, 0),
        };
        let ins = inputs(128);
        let base = Config::stats_only(4, 4, 2);
        let serial_sink = TelemetrySink::new(base.chunks);
        let overlap_sink = TelemetrySink::new(base.chunks);
        let serial = rt
            .run_observed(
                "ema-serial",
                &w,
                &ins,
                base,
                InnerParallelism::none(),
                7,
                Some(&serial_sink),
            )
            .unwrap();
        let overlap = rt
            .run_observed(
                "ema-overlap",
                &w,
                &ins,
                base.with_overlap(true),
                InnerParallelism::none(),
                7,
                Some(&overlap_sink),
            )
            .unwrap();
        assert!(serial.aborts() > 0);
        assert_eq!(serial.aborts(), overlap.aborts());
        assert_eq!(serial.outputs, overlap.outputs);
        assert_eq!(serial.execution.makespan, overlap.execution.makespan);
        assert_eq!(serial.execution.schedule, overlap.execution.schedule);
        let aborts = serial.aborts() as u64;
        assert_eq!(
            serial_sink.snapshot().get(Counter::RerunSegments),
            aborts,
            "serialized reruns are one segment each"
        );
        assert_eq!(
            overlap_sink.snapshot().get(Counter::RerunSegments),
            2 * aborts,
            "overlapped reruns split in two (chunks longer than lookback)"
        );
    }

    #[test]
    fn effective_width_rules() {
        let inner = InnerParallelism::amdahl(0.8, usize::MAX);
        let combined = Config {
            chunks: 14,
            lookback: 1,
            extra_states: 0,
            combine_inner_tlp: true,
            snapshot: SnapshotStrategy::DeepClone,
            spec_breadth: 1,
            overlap_rerun: false,
        };
        assert_eq!(effective_width(&combined, &inner, 28), 2);
        assert_eq!(
            effective_width(&Config::stats_only(14, 1, 0), &inner, 28),
            1
        );
        assert_eq!(effective_width(&Config::original_only(), &inner, 28), 28);
        assert_eq!(
            effective_width(&Config::original_only(), &InnerParallelism::none(), 28),
            1
        );
    }
}
