//! Deterministic fault injection and the recovery guards.
//!
//! A production-scale STATS runtime must keep its determinism contract —
//! commit/abort decisions a pure function of `(inputs, seed, config)` —
//! even when workers die, tasks stall, or state transfers fail mid-run.
//! This module is the single plane through which such failures enter the
//! system: a [`FaultPlan`] addresses protocol tasks by *site* (chunk
//! candidate, replica replay, rerun segment, validation transfer) and
//! fires a [`FaultKind`] at seeded attempt indices, and the guard
//! functions at the top of every faultable task turn those firings into
//! bounded, exponentially backed-off retries.
//!
//! # Why recovery is observationally invisible
//!
//! Every injection fires at *task entry*, before the task has recorded a
//! protocol counter or consumed its input state, and every retry re-runs
//! the task on its original [`crate::rng::StreamRole`] stream. A retried
//! task therefore produces bit-identical results to a never-faulted one,
//! records its protocol telemetry exactly once, and differs only in wall
//! time and in the three fault counters (`FaultsInjected`,
//! `RetriesScheduled`, `WorkersLost`) plus the `FaultInjected` /
//! `RecoveryFinished` events. Because whether a site executes is itself a
//! pure function of `(config, chunk plan, decisions)`, the simulated
//! runtime derives the same fault totals post-hoc
//! ([`FaultPlan::record_into`]) and reconciles exactly with the threaded
//! runtime's live recording.
//!
//! # Failure semantics per kind
//!
//! * [`FaultKind::TaskPanic`] — the task fails at entry; the guard
//!   schedules a retry (chunk tasks re-spawn on the pool's urgent lane,
//!   state-carrying tasks retry in place so their moved-in state is
//!   never lost).
//! * [`FaultKind::WorkerDeath`] — as `TaskPanic`, and the pool worker
//!   running the attempt is doomed: it finishes the current job, then
//!   exits ([`crate::runtime::pool`] degrades to fewer workers, spawning
//!   one emergency replacement only when the last worker dies).
//! * [`FaultKind::DelayedStart`] — the task start is delayed by a
//!   deterministic backoff; no retry is consumed.
//! * [`FaultKind::PoisonedSnapshot`] — a replica's forked state is
//!   detected as poisoned before use; the replay restarts from the
//!   pristine fork after a backoff.
//! * [`FaultKind::LostResult`] — the task's result delivery is lost; the
//!   retry recomputes on the same stream.
//! * [`FaultKind::TransferFailure`] — the `states_match` transfer for a
//!   chunk's validation fails spuriously on the coordinator; the
//!   (pure) comparison is retried after a backoff.
//!
//! If an injection fires more than [`FaultPlan::max_retries`] times the
//! run is not recoverable: the guard panics with the injection as the
//! payload and the pool's fail-fast scope poisoning surfaces it
//! immediately. [`FaultPlan::seeded`] only generates recoverable plans.

use crate::config::Config;
use crate::planner::{plan_balanced, ChunkPlan};
use crate::report::ChunkDecision;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stats_telemetry::{Counter, Event, TelemetrySink};
use std::time::Duration;

/// What an injection does to the task it fires in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The task panics at entry and is retried.
    TaskPanic,
    /// The task panics at entry and the pool worker running it dies
    /// after the job (chunk sites only — retries re-spawn on the urgent
    /// lane, so each firing costs one worker).
    WorkerDeath,
    /// The task's start is delayed by one deterministic backoff; no
    /// retry is consumed.
    DelayedStart,
    /// A replica's forked state is detected as poisoned before use
    /// (replica sites only).
    PoisonedSnapshot,
    /// The task's result delivery is lost; the retry recomputes.
    LostResult,
    /// The validation's state transfer fails spuriously on the
    /// coordinator (transfer sites only).
    TransferFailure,
}

impl FaultKind {
    /// Stable snake_case name used in events and transcripts.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TaskPanic => "task_panic",
            FaultKind::WorkerDeath => "worker_death",
            FaultKind::DelayedStart => "delayed_start",
            FaultKind::PoisonedSnapshot => "poisoned_snapshot",
            FaultKind::LostResult => "lost_result",
            FaultKind::TransferFailure => "transfer_failure",
        }
    }

    /// Whether a firing consumes one of the bounded retries (everything
    /// except a pure start delay).
    fn consumes_retry(self) -> bool {
        self != FaultKind::DelayedStart
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A config-addressable injection site: one protocol task of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The speculation task of `chunk`'s breadth candidate `candidate`
    /// (chunk 0 has only candidate 0).
    Chunk { chunk: usize, candidate: usize },
    /// The replay task of original-state replica `replica` at the
    /// boundary after chunk `boundary`.
    Replica { boundary: usize, replica: usize },
    /// Segment `segment` of `chunk`'s post-abort re-execution (executes
    /// only when the chunk actually aborts).
    Rerun { chunk: usize, segment: usize },
    /// The `states_match` transfer validating `chunk` (`chunk >= 1`).
    Transfer { chunk: usize },
}

impl FaultSite {
    /// The chunk index fault telemetry for this site is attributed to.
    pub fn chunk_index(self) -> usize {
        match self {
            FaultSite::Chunk { chunk, .. }
            | FaultSite::Rerun { chunk, .. }
            | FaultSite::Transfer { chunk } => chunk,
            FaultSite::Replica { boundary, .. } => boundary,
        }
    }

    /// Stable task-class name used in events and transcripts.
    pub fn task_name(self) -> &'static str {
        match self {
            FaultSite::Chunk { .. } => "chunk",
            FaultSite::Replica { .. } => "replica",
            FaultSite::Rerun { .. } => "rerun",
            FaultSite::Transfer { .. } => "transfer",
        }
    }

    /// The within-class slot (candidate / replica / segment) the site
    /// addresses.
    pub fn slot_index(self) -> usize {
        match self {
            FaultSite::Chunk { candidate, .. } => candidate,
            FaultSite::Replica { replica, .. } => replica,
            FaultSite::Rerun { segment, .. } => segment,
            FaultSite::Transfer { .. } => 0,
        }
    }

    /// Whether `kind` may legally be injected at this site (the rules
    /// the counter-accounting derivation depends on).
    fn admits(self, kind: FaultKind) -> bool {
        match kind {
            FaultKind::WorkerDeath => matches!(self, FaultSite::Chunk { .. }),
            FaultKind::PoisonedSnapshot => matches!(self, FaultSite::Replica { .. }),
            FaultKind::TransferFailure => matches!(self, FaultSite::Transfer { .. }),
            FaultKind::TaskPanic | FaultKind::LostResult | FaultKind::DelayedStart => {
                !matches!(self, FaultSite::Transfer { .. })
            }
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSite::Chunk { chunk, candidate } => write!(f, "chunk {chunk}.{candidate}"),
            FaultSite::Replica { boundary, replica } => {
                write!(f, "replica {boundary}.{replica}")
            }
            FaultSite::Rerun { chunk, segment } => write!(f, "rerun {chunk}.{segment}"),
            FaultSite::Transfer { chunk } => write!(f, "transfer {chunk}"),
        }
    }
}

/// One injection: `kind` fires at `site` while the task's attempt index
/// is below `fail_attempts` (a `DelayedStart` fires once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Where the fault fires.
    pub site: FaultSite,
    /// What happens when it fires.
    pub kind: FaultKind,
    /// Attempts 0..fail_attempts fail; attempt `fail_attempts` runs
    /// clean. Recoverable iff `fail_attempts <= max_retries`.
    pub fail_attempts: usize,
}

/// A seeded, validated set of injections plus the retry policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    injections: Vec<Injection>,
    /// Retries a single site may consume before the run fails fast.
    pub max_retries: usize,
    /// Base of the exponential retry backoff, in microseconds (wall
    /// time only — backoff never feeds protocol decisions).
    pub backoff_base_us: u64,
}

/// Default retry bound: three retries per site.
pub const DEFAULT_MAX_RETRIES: usize = 3;

/// Default backoff base: 50 µs (so `50 << attempt` µs per retry).
pub const DEFAULT_BACKOFF_BASE_US: u64 = 50;

/// Exact fault-counter totals a plan produces over one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTotals {
    /// `FaultsInjected` — individual firings.
    pub injected: u64,
    /// `RetriesScheduled` — retries the firings scheduled.
    pub retries: u64,
    /// `WorkersLost` — pool workers doomed by `WorkerDeath` firings.
    pub workers_lost: u64,
}

impl FaultPlan {
    /// The empty plan: injects nothing, making every guarded path a
    /// single branch on `is_empty` (bit-identical to the unguarded
    /// executor).
    pub const fn none() -> FaultPlan {
        FaultPlan {
            injections: Vec::new(),
            max_retries: DEFAULT_MAX_RETRIES,
            backoff_base_us: DEFAULT_BACKOFF_BASE_US,
        }
    }

    /// A validated plan.
    ///
    /// # Errors
    ///
    /// Rejects injections with zero `fail_attempts`, kinds illegal for
    /// their site (see [`FaultKind`]), or two injections at one site.
    pub fn new(injections: Vec<Injection>, max_retries: usize) -> Result<FaultPlan, String> {
        for (i, inj) in injections.iter().enumerate() {
            if inj.fail_attempts == 0 {
                return Err(format!("injection at {} never fires", inj.site));
            }
            if !inj.site.admits(inj.kind) {
                return Err(format!("{} cannot be injected at {}", inj.kind, inj.site));
            }
            if injections[..i].iter().any(|p| p.site == inj.site) {
                return Err(format!("duplicate injection site {}", inj.site));
            }
        }
        Ok(FaultPlan {
            injections,
            max_retries,
            backoff_base_us: DEFAULT_BACKOFF_BASE_US,
        })
    }

    /// A recoverable plan of `count` seeded injections, addressed only
    /// at sites `config` can actually schedule for `inputs_len` inputs
    /// (fewer when the configuration has fewer distinct sites). Every
    /// `fail_attempts` stays within `max_retries`, so recovery always
    /// succeeds and the run completes bit-identically.
    pub fn seeded(seed: u64, count: usize, config: &Config, inputs_len: usize) -> FaultPlan {
        let chunks = config.chunks;
        let b = config.spec_breadth.max(1);
        let m = config.extra_states;
        let plan = plan_balanced(inputs_len, chunks);
        let mut sites = Vec::new();
        for c in 0..chunks {
            for j in 0..if c == 0 { 1 } else { b } {
                sites.push(FaultSite::Chunk {
                    chunk: c,
                    candidate: j,
                });
            }
        }
        for boundary in 0..chunks.saturating_sub(1) {
            for replica in 0..m {
                sites.push(FaultSite::Replica { boundary, replica });
            }
        }
        for c in 1..chunks {
            sites.push(FaultSite::Transfer { chunk: c });
            for segment in 0..config.rerun_segments(plan.chunk(c).len()) {
                sites.push(FaultSite::Rerun { chunk: c, segment });
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA01_7D15_7AB1_E000);
        // Partial Fisher–Yates: the first `count` entries become a
        // uniform sample of distinct sites.
        let picked = count.min(sites.len());
        for i in 0..picked {
            let j = rng.gen_range(i..sites.len());
            sites.swap(i, j);
        }
        let max_retries = DEFAULT_MAX_RETRIES;
        let injections = sites[..picked]
            .iter()
            .map(|&site| {
                let kinds: &[FaultKind] = match site {
                    FaultSite::Chunk { .. } => &[
                        FaultKind::TaskPanic,
                        FaultKind::WorkerDeath,
                        FaultKind::DelayedStart,
                        FaultKind::LostResult,
                    ],
                    FaultSite::Replica { .. } => &[
                        FaultKind::TaskPanic,
                        FaultKind::PoisonedSnapshot,
                        FaultKind::LostResult,
                        FaultKind::DelayedStart,
                    ],
                    FaultSite::Rerun { .. } => &[FaultKind::TaskPanic, FaultKind::DelayedStart],
                    FaultSite::Transfer { .. } => &[FaultKind::TransferFailure],
                };
                let kind = kinds[rng.gen_range(0..kinds.len())];
                let fail_attempts = if kind.consumes_retry() {
                    rng.gen_range(1..=max_retries)
                } else {
                    1
                };
                Injection {
                    site,
                    kind,
                    fail_attempts,
                }
            })
            .collect();
        FaultPlan::new(injections, max_retries).expect("seeded plans are valid by construction")
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// The plan's injections.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// Whether every injection recovers within the retry bound.
    pub fn is_recoverable(&self) -> bool {
        self.injections
            .iter()
            .all(|i| !i.kind.consumes_retry() || i.fail_attempts <= self.max_retries)
    }

    /// The kind firing at `site` on `attempt`, if any.
    pub fn fires(&self, site: FaultSite, attempt: usize) -> Option<FaultKind> {
        let inj = self.injections.iter().find(|i| i.site == site)?;
        let still_firing = if inj.kind.consumes_retry() {
            attempt < inj.fail_attempts
        } else {
            attempt == 0
        };
        still_firing.then_some(inj.kind)
    }

    /// Retry backoff after the firing at `attempt`: `base << attempt`
    /// microseconds (shift capped so the duration stays sane).
    pub fn backoff(&self, attempt: usize) -> Duration {
        Duration::from_micros(self.backoff_base_us << attempt.min(10))
    }

    /// The deterministic start delay a [`FaultKind::DelayedStart`]
    /// injection imposes.
    pub fn start_delay(&self) -> Duration {
        Duration::from_micros(self.backoff_base_us)
    }

    /// Whether `inj`'s site executes in a run that took `decisions`
    /// under `(config, plan)` — a pure function shared by both runtimes,
    /// which is what lets the simulated runtime reconcile fault counters
    /// exactly with the threaded one.
    pub fn executes(
        &self,
        inj: &Injection,
        config: &Config,
        plan: &ChunkPlan,
        decisions: &[ChunkDecision],
    ) -> bool {
        let chunks = plan.len();
        let b = config.spec_breadth.max(1);
        match inj.site {
            FaultSite::Chunk { chunk, candidate } => {
                chunk < chunks && candidate < if chunk == 0 { 1 } else { b }
            }
            FaultSite::Replica { boundary, replica } => {
                chunks > 1 && boundary < chunks - 1 && replica < config.extra_states
            }
            FaultSite::Rerun { chunk, segment } => {
                chunk < chunks
                    && decisions.get(chunk) == Some(&ChunkDecision::Aborted)
                    && segment < config.rerun_segments(plan.chunk(chunk).len())
            }
            FaultSite::Transfer { chunk } => chunk >= 1 && chunk < chunks,
        }
    }

    /// Exact fault-counter totals for a run that took `decisions`.
    /// Meaningful for recoverable plans (an unrecoverable plan kills the
    /// run before totals settle).
    pub fn expected_totals(
        &self,
        config: &Config,
        plan: &ChunkPlan,
        decisions: &[ChunkDecision],
    ) -> FaultTotals {
        let mut totals = FaultTotals::default();
        for inj in &self.injections {
            if !self.executes(inj, config, plan, decisions) {
                continue;
            }
            if inj.kind.consumes_retry() {
                let fires = inj.fail_attempts as u64;
                totals.injected += fires;
                totals.retries += fires;
                if inj.kind == FaultKind::WorkerDeath {
                    totals.workers_lost += fires;
                }
            } else {
                totals.injected += 1;
            }
        }
        totals
    }

    /// Record into `t` exactly the fault counters and events a threaded
    /// run under this plan records live — the simulated runtime's side
    /// of the reconciliation contract.
    pub fn record_into(
        &self,
        t: &TelemetrySink,
        config: &Config,
        plan: &ChunkPlan,
        decisions: &[ChunkDecision],
    ) {
        debug_assert!(
            self.is_recoverable(),
            "accounting assumes a recoverable plan"
        );
        for inj in &self.injections {
            if !self.executes(inj, config, plan, decisions) {
                continue;
            }
            let shard = inj.site.chunk_index();
            let fires = if inj.kind.consumes_retry() {
                inj.fail_attempts
            } else {
                1
            };
            for attempt in 0..fires {
                t.add(shard, Counter::FaultsInjected, 1);
                t.event(&Event::FaultInjected {
                    chunk: shard,
                    task: inj.site.task_name(),
                    index: inj.site.slot_index(),
                    attempt,
                    kind: inj.kind.name(),
                });
                if inj.kind.consumes_retry() {
                    t.add(shard, Counter::RetriesScheduled, 1);
                    if inj.kind == FaultKind::WorkerDeath {
                        t.add(shard, Counter::WorkersLost, 1);
                    }
                }
            }
            if inj.kind.consumes_retry() {
                t.event(&Event::RecoveryFinished {
                    chunk: shard,
                    task: inj.site.task_name(),
                    retries: fires,
                });
            }
        }
    }
}

/// A CLI-level fault request: `COUNT@SEED` (or bare `COUNT`, seed 0),
/// resolved into a [`FaultPlan`] once the run's configuration and input
/// length are known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Injections to generate.
    pub count: usize,
    /// Plan seed.
    pub seed: u64,
}

impl FaultSpec {
    /// Parse `"COUNT@SEED"` or `"COUNT"`.
    ///
    /// # Errors
    ///
    /// Describes the malformed component.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let (count, seed) = match s.split_once('@') {
            Some((c, sd)) => (c, Some(sd)),
            None => (s, None),
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("fault spec `{s}`: `{count}` is not an injection count"))?;
        if count == 0 {
            return Err(format!(
                "fault spec `{s}`: injection count must be positive"
            ));
        }
        let seed: u64 = match seed {
            Some(sd) => sd
                .parse()
                .map_err(|_| format!("fault spec `{s}`: `{sd}` is not a seed"))?,
            None => 0,
        };
        Ok(FaultSpec { count, seed })
    }

    /// Resolve the spec for one run.
    pub fn plan(&self, config: &Config, inputs_len: usize) -> FaultPlan {
        FaultPlan::seeded(self.seed, self.count, config, inputs_len)
    }
}

/// What a guarded chunk attempt should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkAttempt {
    /// Run the task body (any injected delay has already been served).
    Proceed,
    /// This attempt failed; re-spawn attempt + 1 on the urgent lane.
    Respawn,
}

/// The fault guard for a chunk/candidate task attempt. Called at task
/// entry, before any protocol recording: it serves the retry backoff
/// (attempts above 0), fires any injection addressed at this attempt,
/// records the fault telemetry, and dooms the worker on a
/// [`FaultKind::WorkerDeath`]. Retries are handed back to the caller as
/// [`ChunkAttempt::Respawn`] so the re-execution runs as a fresh task on
/// the pool's urgent lane, on the chunk's original derived streams.
///
/// # Panics
///
/// Panics when the injection has exhausted [`FaultPlan::max_retries`] —
/// the run fails fast with the injection as the payload.
pub fn chunk_attempt(
    plan: &FaultPlan,
    chunk: usize,
    candidate: usize,
    attempt: usize,
    telemetry: Option<&TelemetrySink>,
) -> ChunkAttempt {
    if plan.is_empty() {
        return ChunkAttempt::Proceed;
    }
    if attempt > 0 {
        std::thread::sleep(plan.backoff(attempt - 1));
    }
    let site = FaultSite::Chunk { chunk, candidate };
    let Some(kind) = plan.fires(site, attempt) else {
        if attempt > 0 {
            if let Some(t) = telemetry {
                t.event(&Event::RecoveryFinished {
                    chunk,
                    task: site.task_name(),
                    retries: attempt,
                });
            }
        }
        return ChunkAttempt::Proceed;
    };
    if let Some(t) = telemetry {
        t.add(chunk, Counter::FaultsInjected, 1);
        t.event(&Event::FaultInjected {
            chunk,
            task: site.task_name(),
            index: candidate,
            attempt,
            kind: kind.name(),
        });
    }
    if kind == FaultKind::DelayedStart {
        std::thread::sleep(plan.start_delay());
        return ChunkAttempt::Proceed;
    }
    if kind == FaultKind::WorkerDeath {
        crate::runtime::pool::doom_current_worker();
        if let Some(t) = telemetry {
            t.add(chunk, Counter::WorkersLost, 1);
        }
    }
    assert!(
        attempt < plan.max_retries,
        "injected {kind} at {site}: retries exhausted after {attempt} retries"
    );
    if let Some(t) = telemetry {
        t.add(chunk, Counter::RetriesScheduled, 1);
    }
    ChunkAttempt::Respawn
}

/// The in-place fault guard for state-carrying tasks (replica replays,
/// rerun segments) and the coordinator's validation transfer. Called at
/// task entry, before any protocol recording and before the moved-in
/// state is consumed — which is why the bounded retry can simply loop in
/// place: nothing was lost, and the body then runs exactly once on its
/// original derived stream. Returns the number of retries served.
///
/// # Panics
///
/// Panics when the injection has exhausted [`FaultPlan::max_retries`].
pub fn recovery_guard(
    plan: &FaultPlan,
    site: FaultSite,
    telemetry: Option<&TelemetrySink>,
) -> usize {
    if plan.is_empty() {
        return 0;
    }
    let shard = site.chunk_index();
    let mut attempt = 0usize;
    while let Some(kind) = plan.fires(site, attempt) {
        if let Some(t) = telemetry {
            t.add(shard, Counter::FaultsInjected, 1);
            t.event(&Event::FaultInjected {
                chunk: shard,
                task: site.task_name(),
                index: site.slot_index(),
                attempt,
                kind: kind.name(),
            });
        }
        if kind == FaultKind::DelayedStart {
            std::thread::sleep(plan.start_delay());
            break;
        }
        // Plan validation confines `WorkerDeath` to chunk sites (which
        // go through `chunk_attempt`), so in-place retries never doom
        // the worker they share with later attempts.
        debug_assert!(kind != FaultKind::WorkerDeath);
        assert!(
            attempt < plan.max_retries,
            "injected {kind} at {site}: retries exhausted after {attempt} retries"
        );
        if let Some(t) = telemetry {
            t.add(shard, Counter::RetriesScheduled, 1);
        }
        std::thread::sleep(plan.backoff(attempt));
        attempt += 1;
    }
    if attempt > 0 {
        if let Some(t) = telemetry {
            t.event(&Event::RecoveryFinished {
                chunk: shard,
                task: site.task_name(),
                retries: attempt,
            });
        }
    }
    attempt
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(chunks: usize, k: usize, m: usize) -> Config {
        Config::stats_only(chunks, k, m)
    }

    #[test]
    fn empty_plan_fires_nothing_and_guards_are_no_ops() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.is_recoverable());
        assert_eq!(
            plan.fires(
                FaultSite::Chunk {
                    chunk: 0,
                    candidate: 0
                },
                0
            ),
            None
        );
        assert_eq!(chunk_attempt(&plan, 3, 0, 0, None), ChunkAttempt::Proceed);
        assert_eq!(
            recovery_guard(&plan, FaultSite::Transfer { chunk: 1 }, None),
            0
        );
    }

    #[test]
    fn fires_respects_fail_attempts_and_delay_semantics() {
        let plan = FaultPlan::new(
            vec![
                Injection {
                    site: FaultSite::Chunk {
                        chunk: 1,
                        candidate: 0,
                    },
                    kind: FaultKind::TaskPanic,
                    fail_attempts: 2,
                },
                Injection {
                    site: FaultSite::Replica {
                        boundary: 0,
                        replica: 1,
                    },
                    kind: FaultKind::DelayedStart,
                    fail_attempts: 1,
                },
            ],
            3,
        )
        .expect("valid plan");
        let chunk = FaultSite::Chunk {
            chunk: 1,
            candidate: 0,
        };
        assert_eq!(plan.fires(chunk, 0), Some(FaultKind::TaskPanic));
        assert_eq!(plan.fires(chunk, 1), Some(FaultKind::TaskPanic));
        assert_eq!(plan.fires(chunk, 2), None);
        let delay = FaultSite::Replica {
            boundary: 0,
            replica: 1,
        };
        assert_eq!(plan.fires(delay, 0), Some(FaultKind::DelayedStart));
        assert_eq!(plan.fires(delay, 1), None, "delays fire exactly once");
    }

    #[test]
    fn validation_rejects_illegal_plans() {
        let worker_death_off_chunk = FaultPlan::new(
            vec![Injection {
                site: FaultSite::Replica {
                    boundary: 0,
                    replica: 0,
                },
                kind: FaultKind::WorkerDeath,
                fail_attempts: 1,
            }],
            3,
        );
        assert!(worker_death_off_chunk.is_err());
        let transfer_panic = FaultPlan::new(
            vec![Injection {
                site: FaultSite::Transfer { chunk: 1 },
                kind: FaultKind::TaskPanic,
                fail_attempts: 1,
            }],
            3,
        );
        assert!(transfer_panic.is_err());
        let dup = Injection {
            site: FaultSite::Chunk {
                chunk: 0,
                candidate: 0,
            },
            kind: FaultKind::TaskPanic,
            fail_attempts: 1,
        };
        assert!(FaultPlan::new(vec![dup, dup], 3).is_err());
        let never = FaultPlan::new(
            vec![Injection {
                fail_attempts: 0,
                ..dup
            }],
            3,
        );
        assert!(never.is_err());
    }

    #[test]
    fn seeded_plans_are_valid_recoverable_and_deterministic() {
        let config = cfg(6, 4, 2).with_breadth(2).with_overlap(true);
        for seed in 0..50u64 {
            let plan = FaultPlan::seeded(seed, 5, &config, 240);
            assert_eq!(plan.injections().len(), 5);
            assert!(plan.is_recoverable(), "seed {seed}");
            assert_eq!(plan, FaultPlan::seeded(seed, 5, &config, 240));
        }
        // Distinct seeds explore distinct plans.
        assert_ne!(
            FaultPlan::seeded(1, 5, &config, 240),
            FaultPlan::seeded(2, 5, &config, 240)
        );
        // Site-starved configurations clamp the count instead of
        // duplicating sites.
        let tiny = FaultPlan::seeded(7, 100, &cfg(1, 1, 0), 16);
        assert_eq!(tiny.injections().len(), 1, "one chunk, no boundaries");
    }

    #[test]
    fn expected_totals_count_fires_retries_and_deaths() {
        let config = cfg(4, 4, 1);
        let plan = plan_balanced(64, 4);
        let decisions = vec![
            ChunkDecision::First,
            ChunkDecision::Committed,
            ChunkDecision::Aborted,
            ChunkDecision::Committed,
        ];
        let faults = FaultPlan::new(
            vec![
                Injection {
                    site: FaultSite::Chunk {
                        chunk: 2,
                        candidate: 0,
                    },
                    kind: FaultKind::WorkerDeath,
                    fail_attempts: 2,
                },
                Injection {
                    site: FaultSite::Rerun {
                        chunk: 2,
                        segment: 0,
                    },
                    kind: FaultKind::TaskPanic,
                    fail_attempts: 1,
                },
                Injection {
                    // Chunk 3 committed: this rerun site never executes.
                    site: FaultSite::Rerun {
                        chunk: 3,
                        segment: 0,
                    },
                    kind: FaultKind::TaskPanic,
                    fail_attempts: 3,
                },
                Injection {
                    site: FaultSite::Replica {
                        boundary: 1,
                        replica: 0,
                    },
                    kind: FaultKind::DelayedStart,
                    fail_attempts: 1,
                },
            ],
            3,
        )
        .expect("valid plan");
        let totals = faults.expected_totals(&config, &plan, &decisions);
        assert_eq!(
            totals,
            FaultTotals {
                injected: 2 + 1 + 1,
                retries: 2 + 1,
                workers_lost: 2,
            }
        );
    }

    #[test]
    fn fault_spec_parses_and_rejects() {
        assert_eq!(FaultSpec::parse("4@7"), Ok(FaultSpec { count: 4, seed: 7 }));
        assert_eq!(FaultSpec::parse("3"), Ok(FaultSpec { count: 3, seed: 0 }));
        assert!(FaultSpec::parse("0@1").is_err());
        assert!(FaultSpec::parse("x@1").is_err());
        assert!(FaultSpec::parse("2@y").is_err());
        let config = cfg(4, 4, 2);
        let plan = FaultSpec { count: 3, seed: 9 }.plan(&config, 128);
        assert_eq!(plan.injections().len(), 3);
        assert_eq!(plan, FaultPlan::seeded(9, 3, &config, 128));
    }

    #[test]
    fn guards_fire_retry_and_clear() {
        let plan = FaultPlan {
            injections: vec![
                Injection {
                    site: FaultSite::Replica {
                        boundary: 2,
                        replica: 1,
                    },
                    kind: FaultKind::LostResult,
                    fail_attempts: 2,
                },
                Injection {
                    site: FaultSite::Chunk {
                        chunk: 1,
                        candidate: 0,
                    },
                    kind: FaultKind::TaskPanic,
                    fail_attempts: 1,
                },
            ],
            max_retries: 3,
            backoff_base_us: 1,
        };
        assert_eq!(
            recovery_guard(
                &plan,
                FaultSite::Replica {
                    boundary: 2,
                    replica: 1
                },
                None
            ),
            2
        );
        assert_eq!(chunk_attempt(&plan, 1, 0, 0, None), ChunkAttempt::Respawn);
        assert_eq!(chunk_attempt(&plan, 1, 0, 1, None), ChunkAttempt::Proceed);
    }

    #[test]
    fn exhausted_retries_panic_with_the_injection_payload() {
        let plan = FaultPlan {
            injections: vec![Injection {
                site: FaultSite::Rerun {
                    chunk: 1,
                    segment: 0,
                },
                kind: FaultKind::TaskPanic,
                fail_attempts: 9,
            }],
            max_retries: 1,
            backoff_base_us: 1,
        };
        assert!(!plan.is_recoverable());
        let err = std::panic::catch_unwind(|| {
            recovery_guard(
                &plan,
                FaultSite::Rerun {
                    chunk: 1,
                    segment: 0,
                },
                None,
            )
        })
        .expect_err("must exhaust");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("retries exhausted"), "{msg}");
        assert!(msg.contains("task_panic"), "{msg}");
    }
}
