//! The STATS developer interface: explicit state dependences.

use crate::rng::StatsRng;
use crate::snapshot::SnapshotStrategy;
use serde::{Deserialize, Serialize};
use std::ops::Add;

/// The cost of one state update, reported by the workload.
///
/// The workbench keeps computation *real* (states and outputs are genuinely
/// computed) but time *virtual*: each update tells the platform how many
/// abstract work units (≈ cycles) and committed instructions it represents.
/// Workloads derive these deterministically from the work they actually did
/// (e.g. particles × cameras × annealing layers), so costs vary per input
/// exactly like real latencies do — which is what creates computation
/// imbalance (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UpdateCost {
    /// Abstract work units; the platform cost model converts them to
    /// cycles.
    pub work: u64,
    /// Committed instructions (the paper's Fig. 14 accounting).
    pub instructions: u64,
}

impl UpdateCost {
    /// A cost with the given work and a default instruction estimate
    /// (2 instructions retired per cycle, a typical Haswell IPC).
    pub fn with_work(work: u64) -> Self {
        UpdateCost {
            work,
            instructions: work * 2,
        }
    }

    /// A fully specified cost.
    pub fn new(work: u64, instructions: u64) -> Self {
        UpdateCost { work, instructions }
    }
}

impl Add for UpdateCost {
    type Output = UpdateCost;
    fn add(self, rhs: UpdateCost) -> UpdateCost {
        UpdateCost {
            work: self.work + rhs.work,
            instructions: self.instructions + rhs.instructions,
        }
    }
}

/// A program's state dependence, made explicit for STATS (§II-A).
///
/// This trait is the library-level equivalent of the paper's language
/// extension: the developer identifies the computational state, the update
/// function that advances it per input, and an application-specific
/// acceptance predicate used by the runtime to validate speculation.
///
/// # The short memory property
///
/// For STATS to extract parallelism, `update` must have *short memory*:
/// starting from [`fresh_state`](StateDependence::fresh_state) and
/// processing the `k` inputs preceding position `i` must yield a state that
/// [`states_match`](StateDependence::states_match) accepts against the
/// state of a full sequential run, for some modest `k`. Workloads with long
/// memory simply mispeculate and fall back to serialized re-execution —
/// semantics are preserved either way (§II-B).
///
/// # Nondeterminism
///
/// `update` receives a [`StatsRng`]; all randomness must come from it.
/// Every logical role in the execution model gets an independent stream,
/// so commit/abort decisions depend only on the run's master seed, never
/// on scheduling.
pub trait StateDependence {
    /// The computational state threaded through the dependence chain.
    type State: Clone + Send + 'static;
    /// One element of the input stream.
    type Input: Sync;
    /// The per-input output.
    type Output: Send + 'static;

    /// The state a computation starts from (also used by alternative
    /// producers, which exploit short memory by starting fresh).
    fn fresh_state(&self) -> Self::State;

    /// Advance `state` by one input, producing the input's output and the
    /// cost of doing so.
    fn update(
        &self,
        state: &mut Self::State,
        input: &Self::Input,
        rng: &mut StatsRng,
    ) -> (Self::Output, UpdateCost);

    /// Whether two states are interchangeable under the program's output
    /// quality requirements: the runtime commits a speculative state iff it
    /// matches one of the sampled original states (§II-B).
    fn states_match(&self, a: &Self::State, b: &Self::State) -> bool;

    /// Size of one serialized state in bytes (drives copy/compare costs;
    /// the paper's Table I column "State size").
    fn state_bytes(&self) -> usize;

    /// Work units of program code before and after the STATS region
    /// (§III-D "Sequential code"). Defaults to none.
    fn outside_region_work(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Number of synchronized runtime handoffs per update (input/output
    /// list operations, pipeline stage signals). Pipelined programs like
    /// `facedet-and-track` pay several per frame; simple streams pay one.
    /// Drives the §III-C synchronization overhead.
    fn sync_ops_per_update(&self) -> u64 {
        1
    }

    /// Take a protocol snapshot of `state` under `strategy`.
    ///
    /// The default deep-clones regardless of strategy, which is correct
    /// for any state. Workloads whose state holds large components in
    /// [`CowBox`](crate::snapshot::CowBox) cells override this to `fork`
    /// those cells under [`SnapshotStrategy::CopyOnWrite`] — an O(1)
    /// pointer share in place of an O(state) copy. The returned state and
    /// the (mutated) original must be observably identical to two deep
    /// clones; only the copy *cost* may differ.
    fn snapshot_state(&self, state: &mut Self::State, strategy: SnapshotStrategy) -> Self::State {
        let _ = strategy;
        state.clone()
    }

    /// Drain the bytes this state materialized through copy-on-write
    /// faults since the last drain (in units of
    /// [`state_bytes`](StateDependence::state_bytes) shares). States
    /// without COW components never fault; the default reports zero.
    fn take_materialized(&self, state: &mut Self::State) -> u64 {
        let _ = state;
        0
    }

    /// Bytes physically copied by one [`snapshot_state`] call under
    /// `strategy`, *excluding* later copy-on-write faults (those are
    /// reported by [`take_materialized`]). The default — a full deep
    /// clone either way — charges the whole state.
    ///
    /// [`snapshot_state`]: StateDependence::snapshot_state
    /// [`take_materialized`]: StateDependence::take_materialized
    fn snapshot_copy_bytes(&self, strategy: SnapshotStrategy) -> u64 {
        let _ = strategy;
        self.state_bytes() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The doctest workload from the crate root, reused across unit tests.
    pub struct NoisyAverage;

    impl StateDependence for NoisyAverage {
        type State = f64;
        type Input = f64;
        type Output = f64;

        fn fresh_state(&self) -> f64 {
            0.0
        }

        fn update(&self, state: &mut f64, input: &f64, rng: &mut StatsRng) -> (f64, UpdateCost) {
            *state = 0.5 * *state + 0.5 * (*input + rng.noise(0.01));
            (*state, UpdateCost::with_work(100))
        }

        fn states_match(&self, a: &f64, b: &f64) -> bool {
            (a - b).abs() < 0.1
        }

        fn state_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn update_cost_arithmetic() {
        let a = UpdateCost::with_work(100);
        assert_eq!(a.instructions, 200);
        let b = UpdateCost::new(50, 10);
        let c = a + b;
        assert_eq!(c.work, 150);
        assert_eq!(c.instructions, 210);
    }

    #[test]
    fn noisy_average_has_short_memory() {
        let w = NoisyAverage;
        let inputs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin()).collect();
        // Full run.
        let mut full = w.fresh_state();
        let mut rng = StatsRng::from_seed_value(1);
        for inp in &inputs {
            w.update(&mut full, inp, &mut rng);
        }
        // Lookback-only run over the last k inputs.
        let k = 20;
        let mut short = w.fresh_state();
        let mut rng2 = StatsRng::from_seed_value(2);
        for inp in &inputs[inputs.len() - k..] {
            w.update(&mut short, inp, &mut rng2);
        }
        assert!(
            w.states_match(&full, &short),
            "short-memory property violated: {full} vs {short}"
        );
    }

    #[test]
    fn default_outside_region_is_zero() {
        assert_eq!(NoisyAverage.outside_region_work(), (0, 0));
    }
}
