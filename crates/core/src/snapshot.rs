//! Incremental state snapshots: copy-on-write structural sharing for the
//! STATS replication protocol.
//!
//! The protocol replicates state at every chunk boundary: one speculative
//! handoff per chunk plus `m` original-state replicas per validation
//! (§II-B). With plain `Clone` those are full deep copies — the
//! `StateCopies` overhead the paper's §V-B charges against the tracker
//! benchmarks. This module provides the sanctioned alternative:
//!
//! * [`SnapshotStrategy`] selects between [`DeepClone`] (the historical
//!   behavior, bit-for-bit) and [`CopyOnWrite`] snapshots.
//! * [`CowBox<T>`] holds a large state component behind an [`Arc`] so a
//!   snapshot is a pointer bump; the first write after a share
//!   materializes a private copy and records a *fault* that the runtimes
//!   drain into the `StateBytesCopied` counter.
//!
//! Determinism is the design constraint. Materialization is driven by an
//! explicit `shared` flag set at fork time — never by the live `Arc`
//! refcount, which depends on drop order across threads. Fault counts are
//! therefore a pure function of the protocol structure and the workload's
//! write pattern, identical across the semantic, threaded, and simulated
//! runtimes and across thread interleavings.
//!
//! [`DeepClone`]: SnapshotStrategy::DeepClone
//! [`CopyOnWrite`]: SnapshotStrategy::CopyOnWrite

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// How chunk-boundary state replication copies state.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum SnapshotStrategy {
    /// Full deep clones (the historical protocol; every replicated byte is
    /// physically copied).
    #[default]
    DeepClone,
    /// `Arc`-shared snapshots with dirty-on-write materialization: only
    /// bytes actually written after a share are copied.
    CopyOnWrite,
}

impl SnapshotStrategy {
    /// Short CLI/JSON token (`deep` / `cow`).
    pub fn token(self) -> &'static str {
        match self {
            SnapshotStrategy::DeepClone => "deep",
            SnapshotStrategy::CopyOnWrite => "cow",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "deep" => Ok(SnapshotStrategy::DeepClone),
            "cow" => Ok(SnapshotStrategy::CopyOnWrite),
            other => Err(format!("unknown snapshot strategy {other:?} (deep|cow)")),
        }
    }
}

impl fmt::Display for SnapshotStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A copy-on-write cell for a large state component.
///
/// Reads go through [`Deref`] and never copy. Writes go through
/// [`DerefMut`] (or [`CowBox::make_mut`]); the first write after a
/// [`fork`](CowBox::fork) materializes a private copy of the payload and
/// increments an internal fault counter, which the runtime drains with
/// [`take_faults`](CowBox::take_faults) and converts to
/// `StateBytesCopied`.
///
/// Invariant: when `shared` is false this handle holds the only `Arc`
/// reference it knows about, so in-place mutation is free. `Clone` is a
/// deep payload copy (so `#[derive(Clone)]` on a state struct keeps
/// `DeepClone` mode bit-identical to the pre-COW protocol); structural
/// sharing only ever enters through `fork`.
pub struct CowBox<T> {
    value: Arc<T>,
    /// True while the payload may be aliased by another handle.
    shared: bool,
    /// Copy-on-write materializations since the last drain.
    faults: u32,
}

impl<T: Clone> CowBox<T> {
    /// Wrap a fresh, unshared value.
    pub fn new(value: T) -> Self {
        CowBox {
            value: Arc::new(value),
            shared: false,
            faults: 0,
        }
    }

    /// O(1) snapshot: both handles now share the payload, and either
    /// side's next write faults.
    pub fn fork(&mut self) -> Self {
        self.shared = true;
        CowBox {
            value: Arc::clone(&self.value),
            shared: true,
            faults: 0,
        }
    }

    /// Mutable access, materializing a private copy (and recording a
    /// fault) if the payload is shared.
    pub fn make_mut(&mut self) -> &mut T {
        if self.shared {
            self.value = Arc::new(T::clone(&self.value));
            self.shared = false;
            self.faults += 1;
        }
        Arc::get_mut(&mut self.value).expect("unshared CowBox must hold a unique Arc")
    }

    /// Replace the payload wholesale. No fault: nothing shared was
    /// copied — the old payload is simply released.
    pub fn set(&mut self, value: T) {
        self.value = Arc::new(value);
        self.shared = false;
    }

    /// Drain the fault counter (copy-on-write materializations since the
    /// last drain).
    pub fn take_faults(&mut self) -> u32 {
        std::mem::take(&mut self.faults)
    }
}

impl<T> Deref for CowBox<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T: Clone> DerefMut for CowBox<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.make_mut()
    }
}

impl<T: Clone> Clone for CowBox<T> {
    /// Deep payload copy — `Clone` on a COW state must behave exactly
    /// like the pre-COW deep clone so `DeepClone` mode stays bit-identical.
    fn clone(&self) -> Self {
        CowBox {
            value: Arc::new(T::clone(&self.value)),
            shared: false,
            faults: 0,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        if self.shared {
            self.value = Arc::new(T::clone(&source.value));
            self.shared = false;
        } else {
            let slot =
                Arc::get_mut(&mut self.value).expect("unshared CowBox must hold a unique Arc");
            slot.clone_from(&source.value);
        }
        self.faults = 0;
    }
}

impl<T: Clone + Default> Default for CowBox<T> {
    fn default() -> Self {
        CowBox::new(T::default())
    }
}

impl<T: PartialEq> PartialEq for CowBox<T> {
    fn eq(&self, other: &Self) -> bool {
        *self.value == *other.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CowBox<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

// The workspace's vendored serde is a marker-only stand-in (the wire
// format the tests compare is `Debug`); a real serializer would
// delegate to the payload exactly like `Debug` does above.
impl<T: Serialize> Serialize for CowBox<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for CowBox<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_tokens_round_trip() {
        for s in [SnapshotStrategy::DeepClone, SnapshotStrategy::CopyOnWrite] {
            assert_eq!(SnapshotStrategy::parse(s.token()).unwrap(), s);
        }
        assert!(SnapshotStrategy::parse("shallow").is_err());
    }

    #[test]
    fn fork_is_shared_until_written() {
        let mut a = CowBox::new(vec![1.0f64, 2.0]);
        let mut b = a.fork();
        assert!(Arc::ptr_eq(&a.value, &b.value));
        b.make_mut()[0] = 9.0;
        assert!(!Arc::ptr_eq(&a.value, &b.value));
        assert_eq!(a[0], 1.0, "writer must not alias the parent");
        assert_eq!(b.take_faults(), 1);
        assert_eq!(a.take_faults(), 0, "the read-only side never faults");
    }

    #[test]
    fn parent_write_after_fork_also_faults() {
        let mut a = CowBox::new(vec![1u8; 16]);
        let b = a.fork();
        a.make_mut()[0] = 2;
        assert_eq!(a.take_faults(), 1);
        assert_eq!(b[0], 1);
    }

    #[test]
    fn repeated_writes_fault_once_per_share() {
        let mut a = CowBox::new(0u64);
        let _b = a.fork();
        *a.make_mut() = 1;
        *a.make_mut() = 2;
        assert_eq!(a.take_faults(), 1);
        let _c = a.fork();
        *a.make_mut() = 3;
        assert_eq!(a.take_faults(), 1);
    }

    #[test]
    fn set_replaces_without_fault() {
        let mut a = CowBox::new(vec![1, 2, 3]);
        let b = a.fork();
        a.set(vec![4, 5, 6]);
        assert_eq!(a.take_faults(), 0);
        assert_eq!(*b, vec![1, 2, 3]);
        assert_eq!(*a, vec![4, 5, 6]);
    }

    #[test]
    fn clone_is_deep_and_private() {
        let mut a = CowBox::new(vec![7u32]);
        let _shared = a.fork();
        let mut c = a.clone();
        assert!(!Arc::ptr_eq(&a.value, &c.value));
        c.make_mut()[0] = 8;
        assert_eq!(c.take_faults(), 0, "clone starts unshared");
        assert_eq!(a[0], 7);
    }

    #[test]
    fn clone_from_reuses_unique_allocation() {
        let src = CowBox::new(vec![1.0f64; 8]);
        let mut dst = CowBox::new(vec![0.0f64; 8]);
        let before = (*dst.value).as_ptr();
        dst.clone_from(&src);
        assert_eq!((*dst.value).as_ptr(), before, "buffer reused in place");
        assert_eq!(*dst, *src);
    }

    #[test]
    fn debug_wire_format_is_transparent() {
        // The repo's serialization round-trips through `Debug`; a CowBox
        // must be indistinguishable from its payload on the wire, shared
        // or not.
        let plain = vec![1.5f64, -2.5];
        let mut a = CowBox::new(plain.clone());
        assert_eq!(format!("{a:?}"), format!("{plain:?}"));
        let b = a.fork();
        assert_eq!(format!("{b:?}"), format!("{plain:?}"));
    }
}
