//! # stats-core
//!
//! The STATS execution model: speculative parallelization of *state
//! dependences* in nondeterministic programs.
//!
//! STATS (§II of the paper) targets read-after-write dependence chains that
//! thread a computational *state* through a stream of inputs. It exploits
//! the *short memory property* — the state after input `i` barely depends
//! on inputs older than `i - k` — to split the chain into chunks that run
//! in parallel:
//!
//! * each chunk (except the first) starts from a *speculative state*
//!   produced by an **alternative producer** that processes only the `k`
//!   inputs preceding the chunk;
//! * when the previous chunk finishes, the runtime re-processes its last
//!   `k` inputs several times, producing **multiple original states** that
//!   sample the nondeterministic acceptable-state space;
//! * the speculative state is **compared** against them: a match commits
//!   the chunk, a mismatch aborts it and re-runs it from the true state.
//!
//! This crate implements that model end to end:
//!
//! * [`StateDependence`] — the developer-facing interface (the paper's
//!   language extension, §II-C).
//! * [`Config`]/[`DesignSpace`] — the tunable parameters (§II-B "STATS
//!   design space") explored by `stats-autotuner`.
//! * [`speculation`] — the semantic layer: actually runs the workload and
//!   decides every commit/abort deterministically per seed.
//! * [`runtime::sequential`] — the reference executor.
//! * [`runtime::simulated`] — executes the model on the `stats-platform`
//!   machine and emits a fully instrumented trace (the paper's §V-B
//!   methodology).
//! * [`runtime::threaded`] — the same protocol on real OS threads,
//!   scheduled as tasks on a persistent [`runtime::pool::WorkerPool`].
//! * [`InnerParallelism`] — the model of the benchmarks' pre-existing
//!   ("original") TLP, so the three configurations of Fig. 9 can be
//!   compared.
//! * [`Stats`] — a fluent builder tying it all together
//!   (`Stats::of(&workload).chunks(28).run_simulated(&inputs, seed)`).

pub mod builder;
pub mod config;
pub mod dependence;
pub mod fault;
pub mod planner;
pub mod report;
pub mod rng;
pub mod runtime;
pub mod snapshot;
pub mod speculation;
pub mod tlp;

pub use builder::{Stats, StatsError};
pub use config::{Config, ConfigError, DesignSpace};
pub use dependence::{StateDependence, UpdateCost};
pub use fault::{FaultKind, FaultPlan, FaultSite, FaultSpec, FaultTotals, Injection};
pub use planner::{plan_balanced, plan_weighted, ChunkPlan};
pub use report::{ChunkDecision, ResourceAccounting, RunReport};
pub use rng::StatsRng;
pub use snapshot::{CowBox, SnapshotStrategy};
pub use speculation::{
    run_speculative, run_speculative_planned, CandidateCost, ChunkOutcome, SpeculationOutcome,
};
pub use tlp::InnerParallelism;
