//! Run reports: what a STATS execution did and what it cost.

use crate::config::Config;
use serde::{Deserialize, Serialize};
use stats_platform::ExecutionResult;
use stats_trace::Cycles;

/// The runtime's verdict on one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChunkDecision {
    /// Chunk 0: starts from the program's initial state, never speculative.
    First,
    /// The speculative state matched an original state; the chunk's
    /// speculative execution was kept (§II-B case (ii)).
    Committed,
    /// No original state matched; the chunk was re-executed from the true
    /// state (§II-B case (i)).
    Aborted,
}

/// Resources the STATS runtime allocates for a configuration — the paper's
/// Table I columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceAccounting {
    /// Logical threads created (workers + replica generators + inner-TLP
    /// shard threads + main).
    pub threads: usize,
    /// Computational states allocated (initial + chunk states + speculative
    /// states + replica states).
    pub states: usize,
    /// Bytes per state.
    pub state_bytes: usize,
}

impl ResourceAccounting {
    /// Account for a configuration on `cores` cores with the given inner
    /// width (1 when inner TLP is off).
    pub fn for_config(config: &Config, state_bytes: usize, inner_width: usize) -> Self {
        let c = config.chunks;
        let boundaries = c.saturating_sub(1);
        let workers = c;
        let replicas = boundaries * config.extra_states;
        let shards = if inner_width > 1 { c * inner_width } else { 0 };
        // Breadth candidates beyond the first get their own worker thread
        // and speculative state per non-first chunk.
        let extra_candidates = boundaries * config.spec_breadth.saturating_sub(1);
        let threads = 1 + workers + replicas + shards + extra_candidates;
        let states = 1                      // initial
            + c                             // working state per chunk
            + boundaries                    // speculative state per boundary
            + boundaries * config.extra_states // replica states
            + extra_candidates; // extra candidate states
        ResourceAccounting {
            threads,
            states,
            state_bytes,
        }
    }

    /// Total state memory footprint in bytes.
    pub fn state_footprint(&self) -> usize {
        self.states * self.state_bytes
    }
}

/// The full result of running a workload under the simulated STATS runtime.
#[derive(Debug, Clone)]
pub struct RunReport<O> {
    /// Realized outputs, in input order.
    pub outputs: Vec<O>,
    /// Per-chunk decisions (index 0 is always [`ChunkDecision::First`]).
    pub decisions: Vec<ChunkDecision>,
    /// The scheduled execution (trace, makespan, placements).
    pub execution: ExecutionResult,
    /// Cycles of the matching sequential execution (same seed).
    pub sequential_cycles: Cycles,
    /// Instructions of the matching sequential execution.
    pub sequential_instructions: u64,
    /// The configuration that ran.
    pub config: Config,
    /// Thread/state accounting (Table I).
    pub accounting: ResourceAccounting,
}

impl<O> RunReport<O> {
    /// Speedup over the sequential execution.
    pub fn speedup(&self) -> f64 {
        self.execution.speedup_vs(self.sequential_cycles)
    }

    /// Number of aborted chunks.
    pub fn aborts(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| **d == ChunkDecision::Aborted)
            .count()
    }

    /// Extra instructions versus the sequential baseline, as a percentage
    /// (Fig. 14; negative when STATS executes fewer instructions).
    pub fn extra_instruction_percent(&self) -> f64 {
        if self.sequential_instructions == 0 {
            return 0.0;
        }
        let total = self.execution.trace.total_instructions() as f64;
        (total - self.sequential_instructions as f64) / self.sequential_instructions as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_sequential_config() {
        let acc = ResourceAccounting::for_config(&Config::sequential(), 24, 1);
        // main + 1 worker; initial + 1 working state.
        assert_eq!(acc.threads, 2);
        assert_eq!(acc.states, 2);
        assert_eq!(acc.state_footprint(), 48);
    }

    #[test]
    fn accounting_scales_with_chunks_and_replicas() {
        let cfg = Config::stats_only(28, 8, 2);
        let acc = ResourceAccounting::for_config(&cfg, 104, 1);
        // 1 + 28 workers + 27*2 replicas = 83 threads.
        assert_eq!(acc.threads, 1 + 28 + 54);
        // 1 + 28 + 27 + 54 = 110 states.
        assert_eq!(acc.states, 110);
    }

    #[test]
    fn accounting_counts_inner_shards() {
        let cfg = Config {
            chunks: 14,
            lookback: 4,
            extra_states: 1,
            combine_inner_tlp: true,
            snapshot: crate::SnapshotStrategy::DeepClone,
            spec_breadth: 1,
            overlap_rerun: false,
        };
        let acc = ResourceAccounting::for_config(&cfg, 500_000, 2);
        // 1 + 14 + 13 + 14*2 shards.
        assert_eq!(acc.threads, 1 + 14 + 13 + 28);
    }

    #[test]
    fn accounting_counts_breadth_candidates() {
        let cfg = Config::stats_only(28, 8, 2).with_breadth(3);
        let acc = ResourceAccounting::for_config(&cfg, 104, 1);
        // Breadth adds 27*2 candidate threads and states over the
        // breadth-1 accounting.
        let base = ResourceAccounting::for_config(&Config::stats_only(28, 8, 2), 104, 1);
        assert_eq!(acc.threads, base.threads + 54);
        assert_eq!(acc.states, base.states + 54);
    }
}
