//! The autotuner drive loop (Fig. 3's autotuner → back-end → profiler).
//!
//! The loop is batched: each round the searcher is *asked* for a batch
//! of candidate configurations, the batch is evaluated — serially in
//! [`Tuner::tune`], sharded across a persistent [`WorkerPool`] in
//! [`Tuner::tune_parallel_on`] — and the results are *told* back in
//! proposal order. Because searcher state only changes on `tell`, and
//! tells always arrive in proposal order with costs from a deterministic
//! objective, the search trajectory (and therefore the whole
//! [`TuningReport`]) is a pure function of `(seed, budget, batch)`:
//! worker count and evaluation completion order cannot leak in. See
//! DESIGN.md §10 for the full argument.

use crate::searcher::{Annealing, Ensemble, Evolutionary, HillClimb, RandomSearch, Searcher};
use serde::{Deserialize, Serialize};
use stats_core::runtime::pool::WorkerPool;
use stats_core::{Config, DesignSpace, SnapshotStrategy};
use stats_telemetry::{Event, TelemetrySink};
use std::collections::BTreeMap;

/// Which search technique drives the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Uniform random sampling.
    Random,
    /// Best-first single-dimension mutation.
    HillClimb,
    /// Evolutionary search.
    Evolutionary,
    /// Simulated annealing.
    Annealing,
    /// Bandit ensemble of all techniques (the default, like OpenTuner).
    Ensemble,
}

/// The result of a tuning session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningReport {
    /// Best configuration found.
    pub best: Config,
    /// Its cost.
    pub best_cost: f64,
    /// Every `(config, cost)` evaluated, in order (§IV-B reports 89–342
    /// configurations per benchmark).
    pub evaluations: Vec<(Config, f64)>,
}

impl TuningReport {
    /// Number of configurations evaluated.
    pub fn configurations_explored(&self) -> usize {
        self.evaluations.len()
    }

    /// Cost trajectory: best-so-far after each evaluation.
    pub fn convergence(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.evaluations
            .iter()
            .map(|(_, c)| {
                best = best.min(*c);
                best
            })
            .collect()
    }
}

/// Default number of candidates proposed per ask/tell round: wide enough
/// to keep an 8-worker pool busy, narrow enough that the searchers still
/// adapt several times within the paper's 89–342-evaluation budgets.
pub const DEFAULT_BATCH: usize = 8;

/// Consecutive already-evaluated proposals tolerated before the loop
/// concludes the space is (effectively) exhausted and stops early.
const STALL_LIMIT: usize = 50;

/// The memoization key of a configuration (a totally ordered tuple, so
/// the result database can live in a `BTreeMap` — deterministic and
/// O(log n) instead of the former O(n) scan over a `Vec`).
fn key(cfg: &Config) -> (usize, usize, usize, bool, SnapshotStrategy) {
    (
        cfg.chunks,
        cfg.lookback,
        cfg.extra_states,
        cfg.combine_inner_tlp,
        cfg.snapshot,
    )
}

/// The autotuner: a design space, an evaluation budget, a seed, and a
/// proposal batch width.
#[derive(Debug, Clone)]
pub struct Tuner {
    space: DesignSpace,
    budget: usize,
    seed: u64,
    batch: usize,
}

impl Tuner {
    /// Create a tuner with the [`DEFAULT_BATCH`] proposal batch.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(space: DesignSpace, budget: usize, seed: u64) -> Self {
        assert!(budget > 0, "need a non-zero evaluation budget");
        Tuner {
            space,
            budget,
            seed,
            batch: DEFAULT_BATCH,
        }
    }

    /// Set the proposal batch width. The batch is part of the search
    /// trajectory's identity — `(seed, budget, batch)` fully determine a
    /// tuning run — so sequential and parallel tuning must use the same
    /// value to produce identical reports.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "need a non-zero proposal batch");
        self.batch = batch;
        self
    }

    /// The design space being explored.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The proposal batch width.
    pub fn batch(&self) -> usize {
        self.batch
    }

    fn searcher_for(&self, strategy: Strategy) -> Box<dyn Searcher> {
        match strategy {
            Strategy::Random => Box::new(RandomSearch::new(self.seed)),
            Strategy::HillClimb => Box::new(HillClimb::new(self.seed)),
            Strategy::Evolutionary => Box::new(Evolutionary::new(self.seed)),
            Strategy::Annealing => Box::new(Annealing::new(self.seed)),
            Strategy::Ensemble => Box::new(Ensemble::new(self.seed)),
        }
    }

    /// Run the loop serially: ask a batch, evaluate it (`objective`
    /// returns a cost, lower is better), tell the results back, repeat
    /// until the budget is exhausted. Each distinct configuration is
    /// evaluated at most once — results are memoized in a result
    /// database keyed by configuration, like OpenTuner's, and duplicate
    /// proposals are answered from it (and still told to the searcher).
    pub fn tune(&self, strategy: Strategy, objective: impl FnMut(Config) -> f64) -> TuningReport {
        self.tune_observed(strategy, objective, None)
    }

    /// [`Tuner::tune`] with live telemetry: every evaluation emits an
    /// [`Event::TuneIteration`] (configuration tried, its cost, the best
    /// cost so far, the batch it belongs to) and every ask/tell round an
    /// [`Event::TuneBatch`], so a tuning session can be watched — and
    /// later replayed — from the JSONL stream.
    pub fn tune_observed(
        &self,
        strategy: Strategy,
        mut objective: impl FnMut(Config) -> f64,
        telemetry: Option<&TelemetrySink>,
    ) -> TuningReport {
        self.drive(strategy, telemetry, 1, |fresh, costs| {
            for (slot, cfg) in costs.iter_mut().zip(fresh) {
                *slot = objective(*cfg);
            }
        })
    }

    /// [`Tuner::tune_observed`] with batch evaluation sharded across a
    /// persistent [`WorkerPool`]: the `batch` proposals of each round run
    /// concurrently (each evaluation is typically a full pipeline run, so
    /// they dominate wall-clock), results land in proposal-indexed slots,
    /// and the searcher is told in proposal order. The report is
    /// bit-identical to [`Tuner::tune`] with the same `(seed, budget,
    /// batch)` at *any* pool width — parallelism changes wall-clock only,
    /// never the trajectory.
    ///
    /// # Panics
    ///
    /// Panics if the objective panics on a worker (the pool propagates
    /// the payload after draining the batch).
    pub fn tune_parallel_on(
        &self,
        pool: &WorkerPool,
        strategy: Strategy,
        objective: impl Fn(Config) -> f64 + Sync,
        telemetry: Option<&TelemetrySink>,
    ) -> TuningReport {
        let objective = &objective;
        self.drive(strategy, telemetry, pool.workers(), |fresh, costs| {
            pool.scope(|scope| {
                for (slot, cfg) in costs.iter_mut().zip(fresh) {
                    let cfg = *cfg;
                    scope.spawn(move || *slot = objective(cfg));
                }
            });
        })
    }

    /// The shared drive loop. `evaluate` fills one cost slot per fresh
    /// (first-seen) configuration; everything the searcher proposed —
    /// fresh or memoized — is told back in proposal order afterwards.
    fn drive(
        &self,
        strategy: Strategy,
        telemetry: Option<&TelemetrySink>,
        workers: usize,
        mut evaluate: impl FnMut(&[Config], &mut [f64]),
    ) -> TuningReport {
        let mut searcher = self.searcher_for(strategy);
        let mut database: BTreeMap<(usize, usize, usize, bool, SnapshotStrategy), f64> =
            BTreeMap::new();
        let mut history: Vec<(Config, f64)> = Vec::new();
        let mut best_cost = f64::INFINITY;
        let mut stalled = 0usize;
        let mut batch_index = 0usize;
        while history.len() < self.budget {
            let want = self.batch.min(self.budget - history.len());
            let proposals = searcher.ask(&self.space, want);
            assert_eq!(
                proposals.len(),
                want,
                "searcher must fill the requested batch"
            );
            // First-seen configurations, in proposal order; the rest are
            // answered from the result database without re-running the
            // objective.
            let mut fresh: Vec<Config> = Vec::new();
            for cfg in &proposals {
                if !database.contains_key(&key(cfg)) && !fresh.contains(cfg) {
                    fresh.push(*cfg);
                }
            }
            let mut costs = vec![f64::NAN; fresh.len()];
            evaluate(&fresh, &mut costs);
            for (cfg, cost) in fresh.iter().zip(&costs) {
                assert!(!cost.is_nan(), "objective returned NaN for {cfg:?}");
                database.insert(key(cfg), *cost);
                history.push((*cfg, *cost));
                best_cost = best_cost.min(*cost);
                if let Some(t) = telemetry {
                    t.event(&Event::TuneIteration {
                        iteration: history.len(),
                        batch: batch_index,
                        chunks: cfg.chunks,
                        lookback: cfg.lookback,
                        extra_states: cfg.extra_states,
                        combine_inner_tlp: cfg.combine_inner_tlp,
                        cost: *cost,
                        best_cost,
                    });
                }
            }
            // Tell every proposal back in proposal order — memoized ones
            // carry their cached cost rather than being silently dropped.
            let results: Vec<(Config, f64)> = proposals
                .iter()
                .map(|cfg| (*cfg, database[&key(cfg)]))
                .collect();
            searcher.tell(&results);
            if let Some(t) = telemetry {
                t.event(&Event::TuneBatch {
                    batch: batch_index,
                    proposed: proposals.len(),
                    evaluated: fresh.len(),
                    cache_hits: proposals.len() - fresh.len(),
                    workers,
                });
            }
            batch_index += 1;
            if fresh.is_empty() {
                stalled += proposals.len();
                // The space may be smaller than the budget; stop once the
                // searcher keeps re-proposing known points.
                if stalled > STALL_LIMIT {
                    break;
                }
            } else {
                stalled = 0;
            }
        }
        let (best, best_cost) = history
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
            .map(|(c, v)| (*c, *v))
            .expect("budget > 0 evaluated at least one config");
        TuningReport {
            best,
            best_cost,
            evaluations: history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> DesignSpace {
        DesignSpace::for_inputs(560, 28, true)
    }

    fn objective(cfg: Config) -> f64 {
        (cfg.chunks as f64 - 28.0).abs()
            + cfg.lookback as f64 * 0.1
            + if cfg.combine_inner_tlp { 0.0 } else { 0.5 }
    }

    #[test]
    fn tuner_finds_a_good_configuration() {
        let report = Tuner::new(space(), 80, 1).tune(Strategy::Ensemble, objective);
        assert!(report.best_cost <= 1.5, "best cost {}", report.best_cost);
        assert_eq!(report.best.chunks, 28);
        assert!(report.best.combine_inner_tlp);
    }

    #[test]
    fn convergence_is_monotone() {
        let report = Tuner::new(space(), 60, 2).tune(Strategy::Random, objective);
        let conv = report.convergence();
        for pair in conv.windows(2) {
            assert!(pair[1] <= pair[0]);
        }
        assert_eq!(conv.len(), report.configurations_explored());
    }

    #[test]
    fn no_config_evaluated_twice() {
        let report = Tuner::new(space(), 120, 3).tune(Strategy::Ensemble, objective);
        let mut seen = report
            .evaluations
            .iter()
            .map(|(c, _)| *c)
            .collect::<Vec<_>>();
        let before = seen.len();
        seen.sort_by_key(|c| {
            (
                c.chunks,
                c.lookback,
                c.extra_states,
                c.combine_inner_tlp,
                c.snapshot,
            )
        });
        seen.dedup();
        assert_eq!(seen.len(), before, "duplicate evaluations");
    }

    #[test]
    fn memoized_proposals_never_rerun_the_objective() {
        // The objective call count equals the number of distinct
        // configurations in the report: duplicate proposals (frequent in
        // the Ensemble, whose members re-propose each other's points)
        // are answered from the result database.
        let mut calls = 0usize;
        let report = Tuner::new(space(), 120, 3).tune(Strategy::Ensemble, |cfg| {
            calls += 1;
            objective(cfg)
        });
        assert_eq!(calls, report.configurations_explored());
    }

    #[test]
    fn budget_exceeding_space_terminates() {
        // A tiny space with a huge budget must still terminate.
        let tiny = DesignSpace {
            chunk_choices: vec![1, 2],
            lookback_choices: vec![1],
            extra_state_choices: vec![0],
            allow_combine: false,
            snapshot_choices: Vec::new(),
            breadth_choices: Vec::new(),
            inputs: 10,
        };
        let report = Tuner::new(tiny, 1_000, 4).tune(Strategy::Random, objective);
        assert!(report.configurations_explored() <= 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Tuner::new(space(), 40, 9).tune(Strategy::Ensemble, objective);
        let b = Tuner::new(space(), 40, 9).tune(Strategy::Ensemble, objective);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn batch_width_is_part_of_the_trajectory() {
        // Different batch widths legitimately explore differently; the
        // same batch width reproduces exactly.
        let a = Tuner::new(space(), 40, 9)
            .with_batch(4)
            .tune(Strategy::Ensemble, objective);
        let b = Tuner::new(space(), 40, 9)
            .with_batch(4)
            .tune(Strategy::Ensemble, objective);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(Tuner::new(space(), 40, 9).batch(), DEFAULT_BATCH);
    }

    #[test]
    fn parallel_tuning_matches_sequential_bit_for_bit() {
        for workers in [1, 3, 8] {
            let pool = WorkerPool::new(workers);
            let seq = Tuner::new(space(), 64, 5).tune(Strategy::Ensemble, objective);
            let par = Tuner::new(space(), 64, 5).tune_parallel_on(
                &pool,
                Strategy::Ensemble,
                objective,
                None,
            );
            assert_eq!(
                seq.evaluations, par.evaluations,
                "trajectory diverged at {workers} workers"
            );
            assert_eq!(seq.best, par.best);
            assert!(seq.best_cost.to_bits() == par.best_cost.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "non-zero evaluation budget")]
    fn zero_budget_rejected() {
        Tuner::new(space(), 0, 1);
    }

    #[test]
    #[should_panic(expected = "non-zero proposal batch")]
    fn zero_batch_rejected() {
        let _ = Tuner::new(space(), 10, 1).with_batch(0);
    }

    #[test]
    fn observed_tuning_emits_one_event_per_evaluation() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let sink = TelemetrySink::new(1).with_event_writer(Box::new(buf.clone()));
        let report =
            Tuner::new(space(), 40, 9).tune_observed(Strategy::Ensemble, objective, Some(&sink));
        sink.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let iterations: Vec<_> = text
            .lines()
            .filter(|l| l.contains("\"type\":\"tune_iteration\""))
            .collect();
        assert_eq!(iterations.len(), report.configurations_explored());
        // best_cost in the stream is monotone non-increasing, like
        // TuningReport::convergence.
        let mut last_best = f64::INFINITY;
        for line in &iterations {
            let best = line
                .split("\"best_cost\":")
                .nth(1)
                .and_then(|s| s.trim_end_matches('}').parse::<f64>().ok())
                .expect("best_cost field");
            assert!(best <= last_best, "best_cost regressed in {line}");
            last_best = best;
        }
        // Every batch emits a tune_batch line whose arithmetic closes:
        // proposed = evaluated + cache_hits, and evaluated sums to the
        // report's distinct configurations.
        let batches: Vec<_> = text
            .lines()
            .filter(|l| l.contains("\"type\":\"tune_batch\""))
            .collect();
        assert!(!batches.is_empty());
        let field = |line: &str, name: &str| -> u64 {
            line.split(&format!("\"{name}\":"))
                .nth(1)
                .and_then(|s| s.split([',', '}']).next())
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("missing {name} in {line}"))
        };
        let mut evaluated_total = 0;
        for line in &batches {
            assert_eq!(
                field(line, "proposed"),
                field(line, "evaluated") + field(line, "cache_hits"),
                "batch arithmetic broken in {line}"
            );
            assert_eq!(field(line, "workers"), 1, "serial tuning has one worker");
            evaluated_total += field(line, "evaluated");
        }
        assert_eq!(evaluated_total as usize, report.configurations_explored());
        // Observed and unobserved tuning make identical decisions.
        let plain = Tuner::new(space(), 40, 9).tune(Strategy::Ensemble, objective);
        assert_eq!(report.evaluations, plain.evaluations);
    }
}
