//! The autotuner drive loop (Fig. 3's autotuner → back-end → profiler).

use crate::searcher::{Annealing, Ensemble, Evolutionary, HillClimb, RandomSearch, Searcher};
use serde::{Deserialize, Serialize};
use stats_core::{Config, DesignSpace};
use stats_telemetry::{Event, TelemetrySink};

/// Which search technique drives the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Uniform random sampling.
    Random,
    /// Best-first single-dimension mutation.
    HillClimb,
    /// Evolutionary search.
    Evolutionary,
    /// Simulated annealing.
    Annealing,
    /// Bandit ensemble of all techniques (the default, like OpenTuner).
    Ensemble,
}

/// The result of a tuning session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningReport {
    /// Best configuration found.
    pub best: Config,
    /// Its cost.
    pub best_cost: f64,
    /// Every `(config, cost)` evaluated, in order (§IV-B reports 89–342
    /// configurations per benchmark).
    pub evaluations: Vec<(Config, f64)>,
}

impl TuningReport {
    /// Number of configurations evaluated.
    pub fn configurations_explored(&self) -> usize {
        self.evaluations.len()
    }

    /// Cost trajectory: best-so-far after each evaluation.
    pub fn convergence(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.evaluations
            .iter()
            .map(|(_, c)| {
                best = best.min(*c);
                best
            })
            .collect()
    }
}

/// The autotuner: a design space, an evaluation budget, and a seed.
#[derive(Debug, Clone)]
pub struct Tuner {
    space: DesignSpace,
    budget: usize,
    seed: u64,
}

impl Tuner {
    /// Create a tuner.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(space: DesignSpace, budget: usize, seed: u64) -> Self {
        assert!(budget > 0, "need a non-zero evaluation budget");
        Tuner {
            space,
            budget,
            seed,
        }
    }

    /// The design space being explored.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Run the loop: propose, evaluate (`objective` returns a cost, lower
    /// is better), feed back, repeat until the budget is exhausted. Each
    /// distinct configuration is evaluated at most once (results are
    /// memoized, like OpenTuner's result database).
    pub fn tune(&self, strategy: Strategy, objective: impl FnMut(Config) -> f64) -> TuningReport {
        self.tune_observed(strategy, objective, None)
    }

    /// [`Tuner::tune`] with live telemetry: every evaluation emits a
    /// [`Event::TuneIteration`] (configuration tried, its cost, the best
    /// cost so far) into the sink's event log, so a tuning session can be
    /// watched — and later replayed — from the JSONL stream.
    pub fn tune_observed(
        &self,
        strategy: Strategy,
        mut objective: impl FnMut(Config) -> f64,
        telemetry: Option<&TelemetrySink>,
    ) -> TuningReport {
        let mut history: Vec<(Config, f64)> = Vec::new();
        let mut searcher: Box<dyn Searcher> = match strategy {
            Strategy::Random => Box::new(RandomSearch::new(self.seed)),
            Strategy::HillClimb => Box::new(HillClimb::new(self.seed)),
            Strategy::Evolutionary => Box::new(Evolutionary::new(self.seed)),
            Strategy::Annealing => Box::new(Annealing::new(self.seed)),
            Strategy::Ensemble => Box::new(Ensemble::new(self.seed)),
        };
        let mut evaluated: Vec<Config> = Vec::new();
        let mut proposals_without_progress = 0usize;
        while history.len() < self.budget {
            let cfg = searcher.propose(&self.space, &history);
            if evaluated.contains(&cfg) {
                proposals_without_progress += 1;
                // The space may be smaller than the budget; stop once the
                // searcher keeps re-proposing known points.
                if proposals_without_progress > 50 {
                    break;
                }
                continue;
            }
            proposals_without_progress = 0;
            let cost = objective(cfg);
            assert!(!cost.is_nan(), "objective returned NaN for {cfg:?}");
            evaluated.push(cfg);
            history.push((cfg, cost));
            if let Some(t) = telemetry {
                let best_cost = history
                    .iter()
                    .map(|(_, c)| *c)
                    .fold(f64::INFINITY, f64::min);
                t.event(&Event::TuneIteration {
                    iteration: history.len(),
                    chunks: cfg.chunks,
                    lookback: cfg.lookback,
                    extra_states: cfg.extra_states,
                    combine_inner_tlp: cfg.combine_inner_tlp,
                    cost,
                    best_cost,
                });
            }
        }
        let (best, best_cost) = history
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
            .map(|(c, v)| (*c, *v))
            .expect("budget > 0 evaluated at least one config");
        TuningReport {
            best,
            best_cost,
            evaluations: history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> DesignSpace {
        DesignSpace::for_inputs(560, 28, true)
    }

    fn objective(cfg: Config) -> f64 {
        (cfg.chunks as f64 - 28.0).abs()
            + cfg.lookback as f64 * 0.1
            + if cfg.combine_inner_tlp { 0.0 } else { 0.5 }
    }

    #[test]
    fn tuner_finds_a_good_configuration() {
        let report = Tuner::new(space(), 80, 1).tune(Strategy::Ensemble, objective);
        assert!(report.best_cost <= 1.5, "best cost {}", report.best_cost);
        assert_eq!(report.best.chunks, 28);
        assert!(report.best.combine_inner_tlp);
    }

    #[test]
    fn convergence_is_monotone() {
        let report = Tuner::new(space(), 60, 2).tune(Strategy::Random, objective);
        let conv = report.convergence();
        for pair in conv.windows(2) {
            assert!(pair[1] <= pair[0]);
        }
        assert_eq!(conv.len(), report.configurations_explored());
    }

    #[test]
    fn no_config_evaluated_twice() {
        let report = Tuner::new(space(), 120, 3).tune(Strategy::Ensemble, objective);
        let mut seen = report
            .evaluations
            .iter()
            .map(|(c, _)| *c)
            .collect::<Vec<_>>();
        let before = seen.len();
        seen.sort_by_key(|c| (c.chunks, c.lookback, c.extra_states, c.combine_inner_tlp));
        seen.dedup();
        assert_eq!(seen.len(), before, "duplicate evaluations");
    }

    #[test]
    fn budget_exceeding_space_terminates() {
        // A tiny space with a huge budget must still terminate.
        let tiny = DesignSpace {
            chunk_choices: vec![1, 2],
            lookback_choices: vec![1],
            extra_state_choices: vec![0],
            allow_combine: false,
            inputs: 10,
        };
        let report = Tuner::new(tiny, 1_000, 4).tune(Strategy::Random, objective);
        assert!(report.configurations_explored() <= 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Tuner::new(space(), 40, 9).tune(Strategy::Ensemble, objective);
        let b = Tuner::new(space(), 40, 9).tune(Strategy::Ensemble, objective);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    #[should_panic(expected = "non-zero evaluation budget")]
    fn zero_budget_rejected() {
        Tuner::new(space(), 0, 1);
    }

    #[test]
    fn observed_tuning_emits_one_event_per_evaluation() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let sink = TelemetrySink::new(1).with_event_writer(Box::new(buf.clone()));
        let report =
            Tuner::new(space(), 40, 9).tune_observed(Strategy::Ensemble, objective, Some(&sink));
        sink.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), report.configurations_explored());
        // best_cost in the stream is monotone non-increasing, like
        // TuningReport::convergence.
        let mut last_best = f64::INFINITY;
        for line in &lines {
            assert!(line.contains("\"type\":\"tune_iteration\""));
            let best = line
                .split("\"best_cost\":")
                .nth(1)
                .and_then(|s| s.trim_end_matches('}').parse::<f64>().ok())
                .expect("best_cost field");
            assert!(best <= last_best, "best_cost regressed in {line}");
            last_best = best;
        }
        // Observed and unobserved tuning make identical decisions.
        let plain = Tuner::new(space(), 40, 9).tune(Strategy::Ensemble, objective);
        assert_eq!(report.evaluations, plain.evaluations);
    }
}
