//! # stats-autotuner
//!
//! Design-space exploration for STATS configurations (§II-C).
//!
//! The STATS system drives an autotuner → back-end → profiler loop: "The
//! autotuner chooses a configuration in this design space … The profiler
//! executes the binary … These information are given back to the
//! autotuner, which uses them to choose the next configuration." The
//! original uses OpenTuner; this crate provides the equivalent ensemble of
//! search techniques over [`stats_core::DesignSpace`]:
//!
//! * [`RandomSearch`] — uniform sampling of valid configurations;
//! * [`HillClimb`] — single-dimension mutations of the best-so-far;
//! * [`Evolutionary`] — a small population with tournament selection;
//! * [`Annealing`] — simulated annealing with Metropolis acceptance;
//! * [`Ensemble`] — a bandit over the above, rewarding whichever technique
//!   recently improved the best cost (OpenTuner's AUC bandit, simplified).
//!
//! The searchers speak a batched ask/tell protocol: [`Searcher::ask`]
//! proposes a batch of candidates from current state, [`Searcher::tell`]
//! feeds `(config, cost)` results back in proposal order — the only
//! place state changes. [`Tuner`] runs the loop against any objective
//! (`Config -> cost`) either serially ([`Tuner::tune`]) or with each
//! batch sharded across a persistent worker pool
//! ([`Tuner::tune_parallel_on`]); because tells arrive in proposal
//! order either way, the trajectory depends only on
//! `(seed, budget, batch)`, never on worker count. The experiment
//! harness plugs in the simulated runtime's makespan as the objective.
//!
//! ```
//! use stats_autotuner::{Tuner, Strategy};
//! use stats_core::DesignSpace;
//!
//! let space = DesignSpace::for_inputs(560, 28, false);
//! let tuner = Tuner::new(space, 40, 7);
//! // Toy objective: prefer many chunks, mild lookback.
//! let report = tuner.tune(Strategy::Ensemble, |cfg| {
//!     (60 - cfg.chunks) as f64 + cfg.lookback as f64 * 0.1
//! });
//! assert!(report.best.chunks >= 28);
//! ```

mod searcher;
mod tuner;

pub use searcher::{Annealing, Ensemble, Evolutionary, HillClimb, RandomSearch, Searcher, Told};
pub use tuner::{Strategy, Tuner, TuningReport, DEFAULT_BATCH};
