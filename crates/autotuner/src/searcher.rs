//! Search techniques over the STATS design space, as batched ask/tell
//! searchers.
//!
//! Every technique implements [`Searcher`]: [`Searcher::ask`] proposes a
//! speculative batch of candidates from the technique's *current* state,
//! and [`Searcher::tell`] feeds `(config, cost)` results back **in
//! proposal order**. All randomness comes from seeded ChaCha8 streams
//! drawn inside `ask`/`tell` on the coordinating thread, and a
//! technique's state changes only in `tell` — never while a batch is
//! being evaluated — so a search trajectory is a pure function of
//! `(seed, budget, batch)`. In particular it is bit-identical no matter
//! how many workers evaluate the batch or in which order the
//! evaluations complete; analyzer rule ND008 guards against the ambient
//! reads (wall clocks, thread identity, pool width) that would break
//! this contract.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stats_core::{Config, DesignSpace};

/// Evaluation results fed back to a searcher: `(config, cost)` pairs in
/// proposal order (lower cost is better). Proposals the tuner had
/// already evaluated are told with their memoized cost, so techniques
/// still learn from duplicate proposals.
pub type Told = [(Config, f64)];

/// A search technique proposing batches of configurations to evaluate.
pub trait Searcher {
    /// Propose `batch` configurations from the technique's current
    /// state. Proposals must be valid members of the space; duplicates
    /// (within the batch or with earlier proposals) are allowed — the
    /// tuner memoizes and never re-runs the objective for them.
    fn ask(&mut self, space: &DesignSpace, batch: usize) -> Vec<Config>;

    /// Feed back one result per proposal of the preceding
    /// [`Searcher::ask`] call, in proposal order. This is the only place
    /// a technique may update its state.
    fn tell(&mut self, results: &Told);

    /// Technique name for reports.
    fn name(&self) -> &'static str;
}

/// Uniform random sampling of the valid configuration set.
#[derive(Debug)]
pub struct RandomSearch {
    rng: ChaCha8Rng,
    cache: Vec<Config>,
}

impl RandomSearch {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        RandomSearch {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xAAD0),
            cache: Vec::new(),
        }
    }

    fn sample(&mut self, space: &DesignSpace) -> Config {
        if self.cache.is_empty() {
            self.cache = space.enumerate();
        }
        self.cache[self.rng.gen_range(0..self.cache.len())]
    }
}

impl Searcher for RandomSearch {
    fn ask(&mut self, space: &DesignSpace, batch: usize) -> Vec<Config> {
        (0..batch).map(|_| self.sample(space)).collect()
    }

    fn tell(&mut self, _results: &Told) {}

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Mutate one dimension of the best configuration seen so far.
#[derive(Debug)]
pub struct HillClimb {
    rng: ChaCha8Rng,
    fallback: RandomSearch,
    best: Option<(Config, f64)>,
}

impl HillClimb {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        HillClimb {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xC11B),
            fallback: RandomSearch::new(seed ^ 0x41C0),
            best: None,
        }
    }

    pub(crate) fn neighbor(&mut self, space: &DesignSpace, base: Config) -> Config {
        let mut cfg = base;
        // Pick a dimension and move to an adjacent choice. The snapshot
        // and breadth dimensions only exist (and only cost an RNG draw)
        // when the space actually offers more than one choice, so
        // trajectories over the historical four-dimensional space stay
        // bit-identical.
        let snapshot_dims = u8::from(space.snapshot_options().len() > 1);
        let breadth_dims = u8::from(space.breadth_options().len() > 1);
        let dims = 4 + snapshot_dims + breadth_dims;
        let dim = self.rng.gen_range(0..dims);
        let shift = |rng: &mut ChaCha8Rng, choices: &[usize], cur: usize| -> usize {
            let idx = choices.iter().position(|&c| c == cur).unwrap_or(0);
            let next = if rng.gen::<bool>() {
                (idx + 1).min(choices.len() - 1)
            } else {
                idx.saturating_sub(1)
            };
            choices[next]
        };
        match dim {
            0 => cfg.chunks = shift(&mut self.rng, &space.chunk_choices, cfg.chunks),
            1 => cfg.lookback = shift(&mut self.rng, &space.lookback_choices, cfg.lookback),
            2 => {
                cfg.extra_states =
                    shift(&mut self.rng, &space.extra_state_choices, cfg.extra_states)
            }
            3 => {
                if space.allow_combine {
                    cfg.combine_inner_tlp = !cfg.combine_inner_tlp;
                }
            }
            d => {
                if d == 4 && snapshot_dims == 1 {
                    let options = space.snapshot_options();
                    let idx = options.iter().position(|&s| s == cfg.snapshot).unwrap_or(0);
                    cfg.snapshot = options[(idx + 1) % options.len()];
                } else {
                    cfg.spec_breadth =
                        shift(&mut self.rng, space.breadth_options(), cfg.spec_breadth);
                }
            }
        }
        cfg
    }

    /// A validated single-dimension mutation of `base` (the base itself
    /// when sixteen attempts fail to validate).
    fn valid_neighbor(&mut self, space: &DesignSpace, base: Config) -> Config {
        for _ in 0..16 {
            let cfg = self.neighbor(space, base);
            if cfg.validate(space.inputs).is_ok() && cfg != base {
                return cfg;
            }
        }
        base
    }
}

impl Searcher for HillClimb {
    fn ask(&mut self, space: &DesignSpace, batch: usize) -> Vec<Config> {
        match self.best {
            None => self.fallback.ask(space, batch),
            Some((base, _)) => (0..batch)
                .map(|_| self.valid_neighbor(space, base))
                .collect(),
        }
    }

    fn tell(&mut self, results: &Told) {
        for &(cfg, cost) in results {
            if self.best.is_none_or(|(_, b)| cost < b) {
                self.best = Some((cfg, cost));
            }
        }
    }

    fn name(&self) -> &'static str {
        "hill-climb"
    }
}

/// Tournament-selection evolutionary search with crossover and mutation.
#[derive(Debug)]
pub struct Evolutionary {
    rng: ChaCha8Rng,
    tournament: usize,
    population: Vec<(Config, f64)>,
    fallback: RandomSearch,
}

impl Evolutionary {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        Evolutionary {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xEE01),
            tournament: 3,
            population: Vec::new(),
            fallback: RandomSearch::new(seed ^ 0xEE02),
        }
    }

    fn select(&mut self) -> Config {
        let mut best: Option<(Config, f64)> = None;
        for _ in 0..self.tournament {
            let pick = self.population[self.rng.gen_range(0..self.population.len())];
            match best {
                Some((_, c)) if c <= pick.1 => {}
                _ => best = Some(pick),
            }
        }
        best.expect("non-empty population").0
    }

    fn child(&mut self, space: &DesignSpace) -> Config {
        let a = self.select();
        let b = self.select();
        // Uniform crossover.
        let mut child = Config {
            chunks: if self.rng.gen() { a.chunks } else { b.chunks },
            lookback: if self.rng.gen() {
                a.lookback
            } else {
                b.lookback
            },
            extra_states: if self.rng.gen() {
                a.extra_states
            } else {
                b.extra_states
            },
            combine_inner_tlp: if self.rng.gen() {
                a.combine_inner_tlp
            } else {
                b.combine_inner_tlp
            },
            snapshot: a.snapshot,
            spec_breadth: a.spec_breadth,
            overlap_rerun: a.overlap_rerun,
        };
        // Crossover on the snapshot and breadth dimensions draws (and
        // costs) a coin only when the space offers a choice, keeping
        // four-dimensional trajectories bit-identical to the historical
        // searcher.
        if space.snapshot_options().len() > 1 && self.rng.gen() {
            child.snapshot = b.snapshot;
        }
        if space.breadth_options().len() > 1 && self.rng.gen() {
            child.spec_breadth = b.spec_breadth;
        }
        // Mutation.
        if self.rng.gen::<f64>() < 0.3 {
            child = HillClimb::new(self.rng.gen()).neighbor(space, child);
        }
        if child.validate(space.inputs).is_ok() {
            child
        } else {
            self.fallback.sample(space)
        }
    }
}

impl Searcher for Evolutionary {
    fn ask(&mut self, space: &DesignSpace, batch: usize) -> Vec<Config> {
        if self.population.len() < 4 {
            return self.fallback.ask(space, batch);
        }
        (0..batch).map(|_| self.child(space)).collect()
    }

    fn tell(&mut self, results: &Told) {
        self.population.extend_from_slice(results);
    }

    fn name(&self) -> &'static str {
        "evolutionary"
    }
}

/// Simulated annealing: accept worse neighbors with a temperature-decayed
/// probability, escaping local minima that pure hill climbing gets stuck
/// in.
#[derive(Debug)]
pub struct Annealing {
    rng: ChaCha8Rng,
    hill: HillClimb,
    fallback: RandomSearch,
    current: Option<(Config, f64)>,
    temperature: f64,
    cooling: f64,
}

impl Annealing {
    /// Create with a seed. Temperature starts at 1.0 and decays
    /// geometrically per told result.
    pub fn new(seed: u64) -> Self {
        Annealing {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xA44EA1),
            hill: HillClimb::new(seed ^ 0x51),
            fallback: RandomSearch::new(seed ^ 0xA44EA2),
            current: None,
            temperature: 1.0,
            cooling: 0.92,
        }
    }
}

impl Searcher for Annealing {
    fn ask(&mut self, space: &DesignSpace, batch: usize) -> Vec<Config> {
        match self.current {
            None => self.fallback.ask(space, batch),
            Some((base, _)) => (0..batch)
                .map(|_| self.hill.valid_neighbor(space, base))
                .collect(),
        }
    }

    fn tell(&mut self, results: &Told) {
        // Walk the results in proposal order, applying the Metropolis
        // criterion to each as if it had been evaluated sequentially.
        for &(cfg, cost) in results {
            let accept = match self.current {
                None => true,
                Some((_, cur_cost)) => {
                    cost <= cur_cost || {
                        let scale = cur_cost.abs().max(1e-9);
                        let p = (-(cost - cur_cost) / (scale * self.temperature)).exp();
                        self.rng.gen::<f64>() < p
                    }
                }
            };
            if accept {
                self.current = Some((cfg, cost));
            }
            self.temperature *= self.cooling;
        }
    }

    fn name(&self) -> &'static str {
        "annealing"
    }
}

/// A bandit over the three techniques, rewarding recent improvement
/// (OpenTuner's technique ensemble, simplified).
#[derive(Debug)]
pub struct Ensemble {
    rng: ChaCha8Rng,
    random: RandomSearch,
    hill: HillClimb,
    evo: Evolutionary,
    scores: [f64; 3],
    /// Which technique proposed each slot of the outstanding batch.
    pending: Vec<usize>,
    best_seen: f64,
}

impl Ensemble {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        Ensemble {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xE4534B1E),
            random: RandomSearch::new(seed),
            hill: HillClimb::new(seed),
            evo: Evolutionary::new(seed),
            scores: [1.0; 3],
            pending: Vec::new(),
            best_seen: f64::INFINITY,
        }
    }

    fn pick_technique(&mut self) -> usize {
        let total: f64 = self.scores.iter().sum();
        let mut pick = self.rng.gen::<f64>() * total;
        self.scores
            .iter()
            .position(|s| {
                pick -= s;
                pick <= 0.0
            })
            .unwrap_or(2)
    }
}

impl Searcher for Ensemble {
    fn ask(&mut self, space: &DesignSpace, batch: usize) -> Vec<Config> {
        self.pending.clear();
        (0..batch)
            .map(|_| {
                let idx = self.pick_technique();
                self.pending.push(idx);
                let proposal = match idx {
                    0 => self.random.ask(space, 1),
                    1 => self.hill.ask(space, 1),
                    _ => self.evo.ask(space, 1),
                };
                proposal[0]
            })
            .collect()
    }

    fn tell(&mut self, results: &Told) {
        // Reward bookkeeping per slot: credit (or decay) the technique
        // that proposed it, in proposal order.
        for (i, &(_, cost)) in results.iter().enumerate() {
            let idx = self.pending.get(i).copied().unwrap_or(2);
            if cost < self.best_seen {
                self.best_seen = cost;
                self.scores[idx] += 1.0;
            } else {
                self.scores[idx] = (self.scores[idx] * 0.95).max(0.2);
            }
        }
        self.pending.clear();
        // Every technique learns from every result, whichever technique
        // proposed it — the batched equivalent of the shared history the
        // one-at-a-time ensemble passed to its members.
        self.hill.tell(results);
        self.evo.tell(results);
    }

    fn name(&self) -> &'static str {
        "ensemble"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> DesignSpace {
        DesignSpace::for_inputs(560, 28, true)
    }

    fn cost(cfg: &Config) -> f64 {
        // Sweet spot at chunks=28, lookback=8, extras=1.
        (cfg.chunks as f64 - 28.0).abs()
            + (cfg.lookback as f64 - 8.0).abs() * 0.5
            + (cfg.extra_states as f64 - 1.0).abs()
    }

    /// Drive a searcher through the ask/tell protocol with a batch of
    /// `batch`, returning the best cost seen.
    fn run_search(mut s: impl Searcher, evals: usize, batch: usize) -> f64 {
        let sp = space();
        let mut best = f64::INFINITY;
        let mut done = 0;
        while done < evals {
            let want = batch.min(evals - done);
            let proposals = s.ask(&sp, want);
            assert_eq!(proposals.len(), want, "short batch from {}", s.name());
            let results: Vec<(Config, f64)> = proposals
                .iter()
                .map(|cfg| {
                    assert!(cfg.validate(sp.inputs).is_ok(), "invalid proposal {cfg:?}");
                    (*cfg, cost(cfg))
                })
                .collect();
            for (_, c) in &results {
                best = best.min(*c);
            }
            s.tell(&results);
            done += want;
        }
        best
    }

    #[test]
    fn random_search_proposes_valid_configs() {
        let best = run_search(RandomSearch::new(1), 60, 8);
        assert!(best < 10.0, "random best {best}");
    }

    #[test]
    fn hill_climb_descends() {
        let best = run_search(HillClimb::new(2), 60, 4);
        assert!(best <= 2.0, "hill-climb best {best}");
    }

    #[test]
    fn evolutionary_converges() {
        let best = run_search(Evolutionary::new(3), 120, 8);
        assert!(best <= 3.0, "evolutionary best {best}");
    }

    #[test]
    fn ensemble_is_at_least_as_good_as_random_alone() {
        let ens = run_search(Ensemble::new(4), 80, 8);
        assert!(ens <= 2.5, "ensemble best {ens}");
    }

    #[test]
    fn annealing_converges() {
        let best = run_search(Annealing::new(8), 80, 4);
        assert!(best <= 3.0, "annealing best {best}");
    }

    #[test]
    fn annealing_accepts_worse_moves_early() {
        // Tell a result far worse than the current state: with
        // temperature 1.0 the Metropolis sampler must still keep
        // proposing valid configurations (and sometimes adopt it).
        let sp = space();
        let mut a = Annealing::new(3);
        a.tell(&[
            (Config::stats_only(28, 8, 1), 1.0),
            (Config::stats_only(2, 16, 0), 50.0),
        ]);
        for _ in 0..10 {
            let proposals = a.ask(&sp, 2);
            let results: Vec<(Config, f64)> = proposals
                .iter()
                .map(|cfg| {
                    assert!(cfg.validate(sp.inputs).is_ok());
                    (*cfg, cost(cfg))
                })
                .collect();
            a.tell(&results);
        }
    }

    #[test]
    fn proposals_are_deterministic_per_seed() {
        let sp = space();
        let a = RandomSearch::new(9).ask(&sp, 5);
        let b = RandomSearch::new(9).ask(&sp, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn tells_rebuild_identical_state() {
        // A searcher's state is a pure function of its seed and the
        // told results: rebuilding from the same tells yields identical
        // next proposals (this is what makes the tuning trajectory
        // independent of which worker evaluated what).
        let sp = space();
        let results: Vec<(Config, f64)> = sp
            .enumerate()
            .into_iter()
            .take(6)
            .map(|c| (c, cost(&c)))
            .collect();
        let mut rebuilt = Ensemble::new(11);
        rebuilt.tell(&results);
        let mut replay = Ensemble::new(11);
        replay.tell(&results);
        assert_eq!(rebuilt.ask(&sp, 8), replay.ask(&sp, 8));
    }

    #[test]
    fn hill_climb_stays_near_base() {
        let sp = space();
        let base = Config::stats_only(16, 8, 1);
        let mut hc = HillClimb::new(5);
        hc.tell(&[(base, 0.0)]);
        for prop in hc.ask(&sp, 20) {
            // At most one dimension differs.
            let diffs = usize::from(prop.chunks != base.chunks)
                + usize::from(prop.lookback != base.lookback)
                + usize::from(prop.extra_states != base.extra_states)
                + usize::from(prop.combine_inner_tlp != base.combine_inner_tlp);
            assert!(diffs <= 1, "hill-climb changed {diffs} dims: {prop:?}");
        }
    }

    #[test]
    fn hill_climb_explores_snapshot_when_offered() {
        use stats_core::SnapshotStrategy;
        let mut sp = space();
        sp.snapshot_choices = vec![SnapshotStrategy::DeepClone, SnapshotStrategy::CopyOnWrite];
        let base = Config::stats_only(28, 8, 1);
        let mut hc = HillClimb::new(7);
        hc.tell(&[(base, 0.0)]);
        let props = hc.ask(&sp, 40);
        assert!(
            props
                .iter()
                .any(|p| p.snapshot == SnapshotStrategy::CopyOnWrite),
            "snapshot dimension never mutated"
        );
        for prop in props {
            let diffs = usize::from(prop.chunks != base.chunks)
                + usize::from(prop.lookback != base.lookback)
                + usize::from(prop.extra_states != base.extra_states)
                + usize::from(prop.combine_inner_tlp != base.combine_inner_tlp)
                + usize::from(prop.snapshot != base.snapshot);
            assert!(diffs <= 1, "hill-climb changed {diffs} dims: {prop:?}");
        }
    }

    #[test]
    fn hill_climb_explores_breadth_when_offered() {
        let mut sp = space();
        sp.breadth_choices = vec![1, 2, 4];
        let base = Config::stats_only(28, 8, 1);
        let mut hc = HillClimb::new(7);
        hc.tell(&[(base, 0.0)]);
        let props = hc.ask(&sp, 40);
        assert!(
            props.iter().any(|p| p.spec_breadth != 1),
            "breadth dimension never mutated"
        );
        for prop in props {
            assert!(
                sp.breadth_options().contains(&prop.spec_breadth),
                "breadth {} escaped the space",
                prop.spec_breadth
            );
            let diffs = usize::from(prop.chunks != base.chunks)
                + usize::from(prop.lookback != base.lookback)
                + usize::from(prop.extra_states != base.extra_states)
                + usize::from(prop.combine_inner_tlp != base.combine_inner_tlp)
                + usize::from(prop.spec_breadth != base.spec_breadth);
            assert!(diffs <= 1, "hill-climb changed {diffs} dims: {prop:?}");
        }
    }

    #[test]
    fn breadth_dimension_does_not_disturb_historical_trajectories() {
        // A space without the breadth (or snapshot) dimension must cost
        // zero extra RNG draws: trajectories are bit-identical whether
        // the searcher knows about the new knobs or not. The strongest
        // check available without a time machine: the narrow space and
        // an explicitly-breadth-1 space propose identical batches.
        let sp = space();
        let mut one = sp.clone();
        one.breadth_choices = vec![1];
        for seed in [3u64, 17, 92] {
            let mut a = Ensemble::new(seed);
            let mut b = Ensemble::new(seed);
            let pa = a.ask(&sp, 8);
            let pb = b.ask(&one, 8);
            assert_eq!(pa, pb, "seed {seed}");
            let results: Vec<(Config, f64)> = pa.iter().map(|c| (*c, cost(c))).collect();
            a.tell(&results);
            b.tell(&results);
            assert_eq!(a.ask(&sp, 8), b.ask(&one, 8), "seed {seed} after tell");
        }
    }

    #[test]
    fn evolutionary_explores_breadth_when_offered() {
        let mut sp = space();
        sp.breadth_choices = vec![1, 2, 4];
        let mut evo = Evolutionary::new(13);
        // Seed the population with mixed breadths so crossover has both
        // alleles to draw from.
        let narrow = Config::stats_only(28, 8, 1);
        let wide = Config::stats_only(16, 8, 1).with_breadth(4);
        evo.tell(&[(narrow, 2.0), (wide, 1.0), (narrow, 2.0), (wide, 1.0)]);
        let props = evo.ask(&sp, 40);
        assert!(
            props.iter().any(|p| p.spec_breadth > 1),
            "evolutionary never inherited the wide allele"
        );
        for prop in props {
            assert!(prop.validate(sp.inputs).is_ok(), "invalid child {prop:?}");
        }
    }

    #[test]
    fn hill_climb_tracks_the_told_best() {
        let sp = space();
        let mut hc = HillClimb::new(6);
        let good = Config::stats_only(28, 8, 1);
        let bad = Config::stats_only(2, 32, 4);
        hc.tell(&[(bad, 50.0), (good, 1.0), (bad, 50.0)]);
        // Every proposal is now a neighbor of the best told config.
        for prop in hc.ask(&sp, 12) {
            let diffs = usize::from(prop.chunks != good.chunks)
                + usize::from(prop.lookback != good.lookback)
                + usize::from(prop.extra_states != good.extra_states)
                + usize::from(prop.combine_inner_tlp != good.combine_inner_tlp);
            assert!(diffs <= 1, "proposal {prop:?} not near {good:?}");
        }
    }

    #[test]
    fn ensemble_rewards_are_order_deterministic() {
        // Two identically seeded ensembles, told the same results in the
        // same order, propose identical next batches.
        let sp = space();
        let mut a = Ensemble::new(21);
        let mut b = Ensemble::new(21);
        let pa = a.ask(&sp, 8);
        let pb = b.ask(&sp, 8);
        assert_eq!(pa, pb);
        let results: Vec<(Config, f64)> = pa.iter().map(|c| (*c, cost(c))).collect();
        a.tell(&results);
        b.tell(&results);
        assert_eq!(a.ask(&sp, 8), b.ask(&sp, 8));
    }
}
