//! Search techniques over the STATS design space.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stats_core::{Config, DesignSpace};

/// Evaluation history the searchers draw on: `(config, cost)` pairs in
/// evaluation order (lower cost is better).
pub type History = [(Config, f64)];

/// A search technique proposing the next configuration to evaluate.
pub trait Searcher {
    /// Propose a configuration given the history so far. Proposals must be
    /// valid members of the space.
    fn propose(&mut self, space: &DesignSpace, history: &History) -> Config;

    /// Technique name for reports.
    fn name(&self) -> &'static str;
}

fn best_of(history: &History) -> Option<Config> {
    history
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN costs"))
        .map(|(c, _)| *c)
}

/// Uniform random sampling of the valid configuration set.
#[derive(Debug)]
pub struct RandomSearch {
    rng: ChaCha8Rng,
    cache: Vec<Config>,
}

impl RandomSearch {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        RandomSearch {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xAAD0),
            cache: Vec::new(),
        }
    }
}

impl Searcher for RandomSearch {
    fn propose(&mut self, space: &DesignSpace, _history: &History) -> Config {
        if self.cache.is_empty() {
            self.cache = space.enumerate();
        }
        self.cache[self.rng.gen_range(0..self.cache.len())]
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Mutate one dimension of the best configuration seen so far.
#[derive(Debug)]
pub struct HillClimb {
    rng: ChaCha8Rng,
}

impl HillClimb {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        HillClimb {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xC11B),
        }
    }

    pub(crate) fn neighbor(&mut self, space: &DesignSpace, base: Config) -> Config {
        let mut cfg = base;
        // Pick a dimension and move to an adjacent choice.
        let dim = self.rng.gen_range(0..4u8);
        let shift = |rng: &mut ChaCha8Rng, choices: &[usize], cur: usize| -> usize {
            let idx = choices.iter().position(|&c| c == cur).unwrap_or(0);
            let next = if rng.gen::<bool>() {
                (idx + 1).min(choices.len() - 1)
            } else {
                idx.saturating_sub(1)
            };
            choices[next]
        };
        match dim {
            0 => cfg.chunks = shift(&mut self.rng, &space.chunk_choices, cfg.chunks),
            1 => cfg.lookback = shift(&mut self.rng, &space.lookback_choices, cfg.lookback),
            2 => {
                cfg.extra_states =
                    shift(&mut self.rng, &space.extra_state_choices, cfg.extra_states)
            }
            _ => {
                if space.allow_combine {
                    cfg.combine_inner_tlp = !cfg.combine_inner_tlp;
                }
            }
        }
        cfg
    }
}

impl Searcher for HillClimb {
    fn propose(&mut self, space: &DesignSpace, history: &History) -> Config {
        let base = match best_of(history) {
            Some(b) => b,
            None => return RandomSearch::new(self.rng.gen()).propose(space, history),
        };
        // Try a few mutations until one validates.
        for _ in 0..16 {
            let cfg = self.neighbor(space, base);
            if cfg.validate(space.inputs).is_ok() && cfg != base {
                return cfg;
            }
        }
        base
    }

    fn name(&self) -> &'static str {
        "hill-climb"
    }
}

/// Tournament-selection evolutionary search with crossover and mutation.
#[derive(Debug)]
pub struct Evolutionary {
    rng: ChaCha8Rng,
    tournament: usize,
}

impl Evolutionary {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        Evolutionary {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xEE01),
            tournament: 3,
        }
    }

    fn select(&mut self, history: &History) -> Config {
        let mut best: Option<(Config, f64)> = None;
        for _ in 0..self.tournament {
            let pick = history[self.rng.gen_range(0..history.len())];
            match best {
                Some((_, c)) if c <= pick.1 => {}
                _ => best = Some(pick),
            }
        }
        best.expect("non-empty history").0
    }
}

impl Searcher for Evolutionary {
    fn propose(&mut self, space: &DesignSpace, history: &History) -> Config {
        if history.len() < 4 {
            return RandomSearch::new(self.rng.gen()).propose(space, history);
        }
        let a = self.select(history);
        let b = self.select(history);
        // Uniform crossover.
        let mut child = Config {
            chunks: if self.rng.gen() { a.chunks } else { b.chunks },
            lookback: if self.rng.gen() {
                a.lookback
            } else {
                b.lookback
            },
            extra_states: if self.rng.gen() {
                a.extra_states
            } else {
                b.extra_states
            },
            combine_inner_tlp: if self.rng.gen() {
                a.combine_inner_tlp
            } else {
                b.combine_inner_tlp
            },
        };
        // Mutation.
        if self.rng.gen::<f64>() < 0.3 {
            child = HillClimb::new(self.rng.gen()).neighbor(space, child);
        }
        if child.validate(space.inputs).is_ok() {
            child
        } else {
            RandomSearch::new(self.rng.gen()).propose(space, history)
        }
    }

    fn name(&self) -> &'static str {
        "evolutionary"
    }
}

/// Simulated annealing: accept worse neighbors with a temperature-decayed
/// probability, escaping local minima that pure hill climbing gets stuck
/// in.
#[derive(Debug)]
pub struct Annealing {
    rng: ChaCha8Rng,
    hill: HillClimb,
    current: Option<(Config, f64)>,
    temperature: f64,
    cooling: f64,
}

impl Annealing {
    /// Create with a seed. Temperature starts at 1.0 and decays
    /// geometrically per proposal.
    pub fn new(seed: u64) -> Self {
        Annealing {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xA44EA1),
            hill: HillClimb::new(seed ^ 0x51),
            current: None,
            temperature: 1.0,
            cooling: 0.92,
        }
    }
}

impl Searcher for Annealing {
    fn propose(&mut self, space: &DesignSpace, history: &History) -> Config {
        // Adopt the latest evaluation as the annealing state when it beats
        // the Metropolis criterion.
        if let Some(&(cfg, cost)) = history.last() {
            let accept = match self.current {
                None => true,
                Some((_, cur_cost)) => {
                    cost <= cur_cost || {
                        let scale = cur_cost.abs().max(1e-9);
                        let p = (-(cost - cur_cost) / (scale * self.temperature)).exp();
                        self.rng.gen::<f64>() < p
                    }
                }
            };
            if accept {
                self.current = Some((cfg, cost));
            }
            self.temperature *= self.cooling;
        }
        match self.current {
            None => RandomSearch::new(self.rng.gen()).propose(space, history),
            Some((base, _)) => {
                for _ in 0..16 {
                    let cfg = self.hill.neighbor(space, base);
                    if cfg.validate(space.inputs).is_ok() && cfg != base {
                        return cfg;
                    }
                }
                base
            }
        }
    }

    fn name(&self) -> &'static str {
        "annealing"
    }
}

/// A bandit over the three techniques, rewarding recent improvement
/// (OpenTuner's technique ensemble, simplified).
#[derive(Debug)]
pub struct Ensemble {
    rng: ChaCha8Rng,
    random: RandomSearch,
    hill: HillClimb,
    evo: Evolutionary,
    scores: [f64; 3],
    last_technique: usize,
    best_seen: f64,
}

impl Ensemble {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        Ensemble {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xE4534B1E),
            random: RandomSearch::new(seed),
            hill: HillClimb::new(seed),
            evo: Evolutionary::new(seed),
            scores: [1.0; 3],
            last_technique: 0,
            best_seen: f64::INFINITY,
        }
    }

    /// Reward bookkeeping: call with the cost of the last proposal.
    pub fn observe(&mut self, cost: f64) {
        if cost < self.best_seen {
            self.best_seen = cost;
            self.scores[self.last_technique] += 1.0;
        } else {
            self.scores[self.last_technique] = (self.scores[self.last_technique] * 0.95).max(0.2);
        }
    }
}

impl Searcher for Ensemble {
    fn propose(&mut self, space: &DesignSpace, history: &History) -> Config {
        // Keep the bandit honest: update best_seen from history (covers
        // costs observed without an explicit observe() call).
        if let Some(min) = history
            .iter()
            .map(|(_, c)| *c)
            .min_by(|a, b| a.partial_cmp(b).expect("no NaN"))
        {
            self.best_seen = self.best_seen.min(min);
        }
        let total: f64 = self.scores.iter().sum();
        let mut pick = self.rng.gen::<f64>() * total;
        let idx = self
            .scores
            .iter()
            .position(|s| {
                pick -= s;
                pick <= 0.0
            })
            .unwrap_or(2);
        self.last_technique = idx;
        match idx {
            0 => self.random.propose(space, history),
            1 => self.hill.propose(space, history),
            _ => self.evo.propose(space, history),
        }
    }

    fn name(&self) -> &'static str {
        "ensemble"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> DesignSpace {
        DesignSpace::for_inputs(560, 28, true)
    }

    fn cost(cfg: &Config) -> f64 {
        // Sweet spot at chunks=28, lookback=8, extras=1.
        (cfg.chunks as f64 - 28.0).abs()
            + (cfg.lookback as f64 - 8.0).abs() * 0.5
            + (cfg.extra_states as f64 - 1.0).abs()
    }

    fn run_search(mut s: impl Searcher, evals: usize) -> f64 {
        let sp = space();
        let mut history: Vec<(Config, f64)> = Vec::new();
        for _ in 0..evals {
            let cfg = s.propose(&sp, &history);
            assert!(cfg.validate(sp.inputs).is_ok(), "invalid proposal {cfg:?}");
            history.push((cfg, cost(&cfg)));
        }
        history
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn random_search_proposes_valid_configs() {
        let best = run_search(RandomSearch::new(1), 60);
        assert!(best < 10.0, "random best {best}");
    }

    #[test]
    fn hill_climb_descends() {
        let best = run_search(HillClimb::new(2), 60);
        assert!(best <= 2.0, "hill-climb best {best}");
    }

    #[test]
    fn evolutionary_converges() {
        let best = run_search(Evolutionary::new(3), 120);
        assert!(best <= 3.0, "evolutionary best {best}");
    }

    #[test]
    fn ensemble_is_at_least_as_good_as_random_alone() {
        let ens = run_search(Ensemble::new(4), 80);
        assert!(ens <= 2.5, "ensemble best {ens}");
    }

    #[test]
    fn annealing_converges() {
        let best = run_search(Annealing::new(8), 80);
        assert!(best <= 3.0, "annealing best {best}");
    }

    #[test]
    fn annealing_accepts_worse_moves_early() {
        // Feed a history where the last evaluation is worse than the
        // best: with temperature 1.0 the sampler should still sometimes
        // adopt it (we just check it keeps proposing valid configs).
        let sp = space();
        let mut a = Annealing::new(3);
        let mut history = vec![
            (Config::stats_only(28, 8, 1), 1.0),
            (Config::stats_only(2, 16, 0), 50.0),
        ];
        for _ in 0..10 {
            let cfg = a.propose(&sp, &history);
            assert!(cfg.validate(sp.inputs).is_ok());
            history.push((cfg, cost(&cfg)));
        }
    }

    #[test]
    fn proposals_are_deterministic_per_seed() {
        let sp = space();
        let hist: Vec<(Config, f64)> = Vec::new();
        let a = RandomSearch::new(9).propose(&sp, &hist);
        let b = RandomSearch::new(9).propose(&sp, &hist);
        assert_eq!(a, b);
    }

    #[test]
    fn hill_climb_stays_near_base() {
        let sp = space();
        let base = Config::stats_only(16, 8, 1);
        let history = vec![(base, 0.0)];
        let mut hc = HillClimb::new(5);
        for _ in 0..20 {
            let prop = hc.propose(&sp, &history);
            // At most one dimension differs.
            let diffs = usize::from(prop.chunks != base.chunks)
                + usize::from(prop.lookback != base.lookback)
                + usize::from(prop.extra_states != base.extra_states)
                + usize::from(prop.combine_inner_tlp != base.combine_inner_tlp);
            assert!(diffs <= 1, "hill-climb changed {diffs} dims: {prop:?}");
        }
    }
}
