//! Worker-count independence of the batched ask/tell autotuner.
//!
//! The contract under test: a tuning trajectory is a pure function of
//! `(seed, budget, batch)` — sharding batch evaluation across a
//! `WorkerPool` of *any* width must reproduce the sequential
//! `TuningReport` bit for bit, because results are told back in proposal
//! order regardless of completion order. These tests drive every
//! strategy across several seeds and pool widths against an analytic
//! objective (cheap enough to sweep widely), plus property-style sweeps
//! that batching preserves the invariants `convergence()` promises.

use stats_autotuner::{Strategy, Tuner, TuningReport};
use stats_core::runtime::pool::WorkerPool;
use stats_core::{Config, DesignSpace};

const STRATEGIES: [Strategy; 5] = [
    Strategy::Random,
    Strategy::HillClimb,
    Strategy::Evolutionary,
    Strategy::Annealing,
    Strategy::Ensemble,
];

const SEEDS: [u64; 3] = [1, 7, 42];
const WIDTHS: [usize; 3] = [1, 2, 8];

fn space() -> DesignSpace {
    DesignSpace::for_inputs(560, 28, true)
}

/// An analytic stand-in for the simulated-makespan objective: smooth in
/// every dimension, unique optimum, deterministic.
fn objective(cfg: Config) -> f64 {
    (cfg.chunks as f64 - 21.0).abs() * 3.0
        + (cfg.lookback as f64 - 6.0).abs()
        + cfg.extra_states as f64 * 0.7
        + if cfg.combine_inner_tlp { 0.0 } else { 2.0 }
}

fn assert_reports_identical(a: &TuningReport, b: &TuningReport, context: &str) {
    assert_eq!(
        a.evaluations.len(),
        b.evaluations.len(),
        "{context}: evaluation counts diverged"
    );
    for (i, ((ca, va), (cb, vb))) in a.evaluations.iter().zip(&b.evaluations).enumerate() {
        assert_eq!(ca, cb, "{context}: configuration {i} diverged");
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "{context}: cost {i} diverged ({va} vs {vb})"
        );
    }
    assert_eq!(a.best, b.best, "{context}: best configuration diverged");
    assert_eq!(
        a.best_cost.to_bits(),
        b.best_cost.to_bits(),
        "{context}: best cost diverged"
    );
}

#[test]
fn every_strategy_is_worker_count_independent() {
    for strategy in STRATEGIES {
        for seed in SEEDS {
            let sequential = Tuner::new(space(), 48, seed).tune(strategy, objective);
            for width in WIDTHS {
                let pool = WorkerPool::new(width);
                let parallel = Tuner::new(space(), 48, seed)
                    .tune_parallel_on(&pool, strategy, objective, None);
                assert_reports_identical(
                    &sequential,
                    &parallel,
                    &format!("{strategy:?} seed {seed} width {width}"),
                );
            }
        }
    }
}

#[test]
fn pool_reuse_across_strategies_leaves_no_state_behind() {
    // One pool serving many searches back to back must behave like a
    // fresh pool each time (the CLI shares one pool per invocation).
    let pool = WorkerPool::new(4);
    let mut first = Vec::new();
    for strategy in STRATEGIES {
        first.push(Tuner::new(space(), 32, 9).tune_parallel_on(&pool, strategy, objective, None));
    }
    for (strategy, before) in STRATEGIES.iter().zip(&first) {
        let again = Tuner::new(space(), 32, 9).tune_parallel_on(&pool, *strategy, objective, None);
        assert_reports_identical(before, &again, &format!("{strategy:?} on reused pool"));
    }
}

#[test]
fn convergence_stays_monotone_under_batching() {
    // Property-style sweep: for every strategy, seed, and batch width,
    // the best-so-far trajectory never regresses and ends at the
    // reported best cost.
    for strategy in STRATEGIES {
        for seed in 0..8u64 {
            for batch in [1, 3, 8, 17] {
                let report = Tuner::new(space(), 40, seed)
                    .with_batch(batch)
                    .tune(strategy, objective);
                let conv = report.convergence();
                assert_eq!(conv.len(), report.configurations_explored());
                for (i, pair) in conv.windows(2).enumerate() {
                    assert!(
                        pair[1] <= pair[0],
                        "{strategy:?} seed {seed} batch {batch}: convergence \
                         regressed at step {i}: {} -> {}",
                        pair[0],
                        pair[1]
                    );
                }
                assert_eq!(
                    conv.last().map(|c| c.to_bits()),
                    Some(report.best_cost.to_bits()),
                    "{strategy:?} seed {seed} batch {batch}: trajectory must end at the best"
                );
            }
        }
    }
}

#[test]
fn batched_parallel_trajectories_reproduce_across_batch_widths() {
    // The batch width is part of the trajectory's identity; for each
    // batch the parallel run still matches its own sequential twin.
    for batch in [1, 5, 8] {
        let pool = WorkerPool::new(3);
        let sequential = Tuner::new(space(), 40, 11)
            .with_batch(batch)
            .tune(Strategy::Ensemble, objective);
        let parallel = Tuner::new(space(), 40, 11)
            .with_batch(batch)
            .tune_parallel_on(&pool, Strategy::Ensemble, objective, None);
        assert_reports_identical(&sequential, &parallel, &format!("batch {batch}"));
    }
}
