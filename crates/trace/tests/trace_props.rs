//! Property tests of trace construction, validation, and aggregation.

use proptest::prelude::*;
use stats_trace::{Category, Cycles, ThreadId, TraceBuilder, TraceSummary, CATEGORIES};

/// Generate per-thread sequences of adjacent (gap-or-touch) spans, which
/// are well-formed by construction.
fn wellformed_spans() -> impl Strategy<Value = Vec<(usize, usize, u64, u64, u64)>> {
    // (thread, category index, gap, duration, instructions)
    proptest::collection::vec(
        (
            0usize..6,
            0usize..CATEGORIES.len(),
            0u64..50,
            0u64..200,
            0u64..1_000,
        ),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adjacent per-thread spans always validate, and the aggregate
    /// accounting is exact.
    #[test]
    fn wellformed_traces_validate(spans in wellformed_spans()) {
        let mut b = TraceBuilder::new("prop");
        let mut cursor = [0u64; 6];
        let mut expect_busy = 0u64;
        let mut expect_instr = 0u64;
        let mut expect_makespan = 0u64;
        for (thread, cat, gap, dur, instr) in &spans {
            let start = cursor[*thread] + gap;
            let end = start + dur;
            cursor[*thread] = end;
            expect_busy += dur;
            expect_instr += instr;
            expect_makespan = expect_makespan.max(end);
            b.push(ThreadId(*thread), CATEGORIES[*cat], Cycles(start), Cycles(end), *instr);
        }
        let trace = b.finish().expect("well-formed by construction");
        prop_assert_eq!(trace.makespan(), Cycles(expect_makespan));
        prop_assert_eq!(trace.total_instructions(), expect_instr);
        let busy: u64 = trace.cycles_by_category().values().map(|c| c.get()).sum();
        prop_assert_eq!(busy, expect_busy);
    }

    /// Summaries conserve time: busy + idle equals each thread's lifetime,
    /// and imbalance is a valid fraction.
    #[test]
    fn summaries_conserve_time(spans in wellformed_spans()) {
        let mut b = TraceBuilder::new("prop");
        let mut cursor = [0u64; 6];
        for (thread, cat, gap, dur, instr) in &spans {
            let start = cursor[*thread] + gap;
            let end = start + dur;
            cursor[*thread] = end;
            b.push(ThreadId(*thread), CATEGORIES[*cat], Cycles(start), Cycles(end), *instr);
        }
        let trace = b.finish().unwrap();
        let summary = TraceSummary::from_trace(&trace);
        for t in &summary.threads {
            prop_assert_eq!(
                t.busy + t.idle,
                t.last_end - t.first_start,
                "thread {} lifetime mismatch", t.thread
            );
        }
        let imb = summary.imbalance();
        prop_assert!((0.0..=1.0).contains(&imb), "imbalance {imb}");
        prop_assert!(summary.max_thread_busy() <= summary.makespan);
    }

    /// Overlapping spans on one thread are always rejected.
    #[test]
    fn overlaps_always_rejected(start in 0u64..1_000, len in 1u64..100, shift in 0u64..99) {
        prop_assume!(shift < len);
        let mut b = TraceBuilder::new("bad");
        b.push(ThreadId(0), Category::Sync, Cycles(start), Cycles(start + len), 0);
        b.push(
            ThreadId(0),
            Category::ChunkCompute,
            Cycles(start + shift),
            Cycles(start + shift + len),
            0,
        );
        prop_assert!(b.finish().is_err());
    }

    /// Edges that point backwards in time are always rejected; forward
    /// edges always accepted.
    #[test]
    fn edge_direction_is_enforced(a_end in 1u64..500, b_start in 0u64..1_000) {
        let mut b = TraceBuilder::new("edges");
        let first = b.push(ThreadId(0), Category::Setup, Cycles(0), Cycles(a_end), 0);
        let second = b.push(
            ThreadId(1),
            Category::ChunkCompute,
            Cycles(b_start),
            Cycles(b_start + 10),
            0,
        );
        b.depend(first, second);
        let result = b.finish();
        if b_start >= a_end {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }
}
