//! The overhead taxonomy of §III of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Activity categories recorded by the STATS runtime.
///
/// These mirror the paper's sources of overhead (§III) plus the
/// non-overhead activities needed to account for every cycle:
///
/// * the six "extra computation" components of §III-B
///   ([`Setup`](Category::Setup), [`AltProducer`](Category::AltProducer),
///   [`OriginalStateGen`](Category::OriginalStateGen),
///   [`StateComparison`](Category::StateComparison),
///   [`StateCopy`](Category::StateCopy)),
/// * thread synchronization (§III-C, [`Sync`](Category::Sync)),
/// * code outside the parallelized region (§III-D,
///   [`OutsideRegion`](Category::OutsideRegion)),
/// * the useful work itself ([`ChunkCompute`](Category::ChunkCompute)), and
/// * speculation bookkeeping ([`Commit`](Category::Commit),
///   [`AbortedCompute`](Category::AbortedCompute), re-execution after an
///   abort is regular `ChunkCompute`).
///
/// Imbalance, mispeculation, and unreachability (§III-A, §III-E) are not
/// span categories: they are *derived* properties of a whole trace and are
/// computed by the critical-path attribution in `stats-bench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Allocation/initialization/teardown of STATS support structures
    /// (input lists, state buffers, mutexes, condition variables).
    Setup,
    /// An alternative producer processing the `k` inputs that precede its
    /// chunk to predict the chunk's initial state (§III-B "Generating
    /// speculative states").
    AltProducer,
    /// Re-processing the last `k` inputs of a chunk to generate one of the
    /// extra original states used to validate speculation (§III-B
    /// "Generating multiple original states").
    OriginalStateGen,
    /// Comparing a speculative state against the original states (§III-B
    /// "State comparisons").
    StateComparison,
    /// Cloning a computational state (§III-B "State copying").
    StateCopy,
    /// Kernel-level wakeups and waiting at synchronization points (§III-C).
    Sync,
    /// Useful work: processing the inputs of a chunk. This is the only
    /// category that also exists in the original program.
    ChunkCompute,
    /// Speculative chunk computation that was later aborted and re-executed
    /// (§II-B case (i)). The re-execution itself is `ChunkCompute`.
    AbortedCompute,
    /// Commit-protocol bookkeeping in the STATS runtime.
    Commit,
    /// Program code before/after the region parallelized by STATS (§III-D).
    OutsideRegion,
}

/// All categories, in presentation order (overheads first, then work).
pub const CATEGORIES: [Category; 10] = [
    Category::Setup,
    Category::AltProducer,
    Category::OriginalStateGen,
    Category::StateComparison,
    Category::StateCopy,
    Category::Sync,
    Category::Commit,
    Category::AbortedCompute,
    Category::OutsideRegion,
    Category::ChunkCompute,
];

/// Coarse classification of a [`Category`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CategoryKind {
    /// Work the original program would also have performed.
    UsefulWork,
    /// Extra computation introduced by the STATS execution model (§III-B).
    ExtraComputation,
    /// Synchronization overhead (§III-C).
    Synchronization,
    /// Sequential code outside the STATS region (§III-D).
    Sequential,
}

impl Category {
    /// Coarse kind of this category.
    ///
    /// ```
    /// use stats_trace::{Category, CategoryKind};
    /// assert_eq!(Category::AltProducer.kind(), CategoryKind::ExtraComputation);
    /// assert_eq!(Category::ChunkCompute.kind(), CategoryKind::UsefulWork);
    /// ```
    pub fn kind(self) -> CategoryKind {
        match self {
            Category::ChunkCompute => CategoryKind::UsefulWork,
            Category::Sync => CategoryKind::Synchronization,
            Category::OutsideRegion => CategoryKind::Sequential,
            Category::Setup
            | Category::AltProducer
            | Category::OriginalStateGen
            | Category::StateComparison
            | Category::StateCopy
            | Category::Commit
            | Category::AbortedCompute => CategoryKind::ExtraComputation,
        }
    }

    /// Whether the category is pure overhead of the STATS execution model:
    /// removing it entirely would leave the program's semantics intact.
    pub fn is_overhead(self) -> bool {
        !matches!(self, Category::ChunkCompute)
    }

    /// Whether this category is one of the §III-B "extra computation"
    /// components broken down in the paper's Figs. 11, 13, and 15.
    pub fn is_extra_computation(self) -> bool {
        self.kind() == CategoryKind::ExtraComputation
    }

    /// Short stable name used in reports and serialized traces.
    pub fn name(self) -> &'static str {
        match self {
            Category::Setup => "setup",
            Category::AltProducer => "alt-producer",
            Category::OriginalStateGen => "original-state-gen",
            Category::StateComparison => "state-comparison",
            Category::StateCopy => "state-copy",
            Category::Sync => "sync",
            Category::ChunkCompute => "chunk-compute",
            Category::AbortedCompute => "aborted-compute",
            Category::Commit => "commit",
            Category::OutsideRegion => "outside-region",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_category_is_listed_once() {
        for (i, a) in CATEGORIES.iter().enumerate() {
            for b in &CATEGORIES[i + 1..] {
                assert_ne!(a, b, "duplicate category in CATEGORIES");
            }
        }
        assert_eq!(CATEGORIES.len(), 10);
    }

    #[test]
    fn only_chunk_compute_is_useful_work() {
        let useful: Vec<_> = CATEGORIES
            .iter()
            .filter(|c| c.kind() == CategoryKind::UsefulWork)
            .collect();
        assert_eq!(useful, vec![&Category::ChunkCompute]);
    }

    #[test]
    fn overhead_flag_matches_kind() {
        for c in CATEGORIES {
            assert_eq!(c.is_overhead(), c.kind() != CategoryKind::UsefulWork);
        }
    }

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<_> = CATEGORIES.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CATEGORIES.len());
    }

    #[test]
    fn display_matches_name() {
        for c in CATEGORIES {
            assert_eq!(format!("{c}"), c.name());
        }
    }

    #[test]
    fn extra_computation_set_matches_paper_fig11() {
        // Fig. 11/15 break extra computation into: speculative state
        // generation (alt producers), multiple original states, comparisons,
        // setup, state copying (+ commit bookkeeping and aborted work).
        assert!(Category::AltProducer.is_extra_computation());
        assert!(Category::OriginalStateGen.is_extra_computation());
        assert!(Category::StateComparison.is_extra_computation());
        assert!(Category::Setup.is_extra_computation());
        assert!(Category::StateCopy.is_extra_computation());
        assert!(!Category::Sync.is_extra_computation());
        assert!(!Category::OutsideRegion.is_extra_computation());
    }
}
