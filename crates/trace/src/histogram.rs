//! Per-category span-duration statistics.

use crate::{Category, Cycles, Trace, CATEGORIES};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Duration statistics of one category's spans.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurationStats {
    /// Number of spans.
    pub count: usize,
    /// Shortest span.
    pub min: Cycles,
    /// Longest span.
    pub max: Cycles,
    /// Mean duration (rounded down).
    pub mean: Cycles,
    /// 95th-percentile duration (nearest rank).
    pub p95: Cycles,
}

/// Compute duration statistics per category.
///
/// ```
/// use stats_trace::{Category, Cycles, ThreadId, TraceBuilder};
/// use stats_trace::histogram::span_stats;
/// let mut b = TraceBuilder::new("demo");
/// b.push(ThreadId(0), Category::Sync, Cycles(0), Cycles(10), 0);
/// b.push(ThreadId(0), Category::Sync, Cycles(10), Cycles(40), 0);
/// let stats = span_stats(&b.finish().unwrap());
/// let sync = stats[&Category::Sync];
/// assert_eq!(sync.count, 2);
/// assert_eq!(sync.mean, Cycles(20));
/// assert_eq!(sync.max, Cycles(30));
/// ```
pub fn span_stats(trace: &Trace) -> BTreeMap<Category, DurationStats> {
    let mut buckets: BTreeMap<Category, Vec<u64>> = BTreeMap::new();
    for s in trace.spans() {
        buckets
            .entry(s.category)
            .or_default()
            .push(s.duration().get());
    }
    buckets
        .into_iter()
        .map(|(cat, mut durations)| {
            durations.sort_unstable();
            let count = durations.len();
            let sum: u64 = durations.iter().sum();
            let p95_idx = ((count - 1) as f64 * 0.95).round() as usize;
            (
                cat,
                DurationStats {
                    count,
                    min: Cycles(durations[0]),
                    max: Cycles(durations[count - 1]),
                    mean: Cycles(sum / count as u64),
                    p95: Cycles(durations[p95_idx]),
                },
            )
        })
        .collect()
}

/// Render the statistics as a fixed-width table.
pub fn render_span_stats(trace: &Trace) -> String {
    let stats = span_stats(trace);
    let mut out = format!(
        "{:<20} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
        "category", "count", "min", "mean", "p95", "max"
    );
    for cat in CATEGORIES {
        if let Some(s) = stats.get(&cat) {
            out.push_str(&format!(
                "{:<20} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                cat.name(),
                s.count,
                s.min.get(),
                s.mean.get(),
                s.p95.get(),
                s.max.get()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreadId, TraceBuilder};

    fn trace() -> Trace {
        let mut b = TraceBuilder::new("hist");
        let mut t = 0;
        for (i, d) in [10u64, 20, 30, 40, 100].into_iter().enumerate() {
            b.push(
                ThreadId(i),
                Category::ChunkCompute,
                Cycles(t),
                Cycles(t + d),
                0,
            );
            t += d;
        }
        b.push(ThreadId(0), Category::Setup, Cycles(500), Cycles(510), 0);
        b.finish().unwrap()
    }

    #[test]
    fn stats_are_exact() {
        let stats = span_stats(&trace());
        let c = stats[&Category::ChunkCompute];
        assert_eq!(c.count, 5);
        assert_eq!(c.min, Cycles(10));
        assert_eq!(c.max, Cycles(100));
        assert_eq!(c.mean, Cycles(40));
        assert_eq!(c.p95, Cycles(100));
        assert_eq!(stats[&Category::Setup].count, 1);
        assert!(!stats.contains_key(&Category::Sync));
    }

    #[test]
    fn render_lists_present_categories_in_order() {
        let text = render_span_stats(&trace());
        let setup_pos = text.find("setup").unwrap();
        let compute_pos = text.find("chunk-compute").unwrap();
        assert!(setup_pos < compute_pos, "presentation order");
        assert!(!text.contains("sync\n"));
    }

    #[test]
    fn empty_trace_yields_empty_stats() {
        let t = TraceBuilder::new("empty").finish().unwrap();
        assert!(span_stats(&t).is_empty());
    }
}
