//! ASCII timeline rendering of traces — a textual version of the paper's
//! Figs. 4–8 execution diagrams.

use crate::{Category, Cycles, ThreadId, Trace};

/// Options for [`render_timeline`].
#[derive(Debug, Clone, Copy)]
pub struct TimelineOptions {
    /// Total character width of the time axis.
    pub width: usize,
    /// Maximum number of threads to show (busiest first); the rest are
    /// summarized in a footer.
    pub max_threads: usize,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            width: 96,
            max_threads: 24,
        }
    }
}

/// One-character glyph per category, chosen to evoke the paper's figures:
/// dark blocks for program computation, light glyphs for overhead.
pub fn glyph(category: Category) -> char {
    match category {
        Category::ChunkCompute => '#',
        Category::AbortedCompute => 'x',
        Category::AltProducer => 'a',
        Category::OriginalStateGen => 'o',
        Category::StateComparison => '=',
        Category::StateCopy => 'c',
        Category::Sync => '~',
        Category::Setup => 's',
        Category::Commit => '!',
        Category::OutsideRegion => '.',
    }
}

/// Render a trace as one row per logical thread, time flowing left to
/// right. Idle time is blank; each cell shows the category that occupied
/// the majority of its time slice.
///
/// ```
/// use stats_trace::{Category, Cycles, ThreadId, TraceBuilder};
/// use stats_trace::timeline::{render_timeline, TimelineOptions};
///
/// let mut b = TraceBuilder::new("demo");
/// b.push(ThreadId(0), Category::Setup, Cycles(0), Cycles(50), 0);
/// b.push(ThreadId(1), Category::ChunkCompute, Cycles(50), Cycles(100), 0);
/// let text = render_timeline(&b.finish().unwrap(), &TimelineOptions::default());
/// assert!(text.contains("T0"));
/// assert!(text.contains('#'));
/// ```
pub fn render_timeline(trace: &Trace, opts: &TimelineOptions) -> String {
    let makespan = trace.makespan();
    if makespan == Cycles::ZERO {
        return String::from("(empty trace)\n");
    }
    let width = opts.width.max(8);

    // Busiest threads first, then by id for determinism.
    let mut threads: Vec<(ThreadId, u64)> = {
        let mut busy: std::collections::BTreeMap<ThreadId, u64> = std::collections::BTreeMap::new();
        for s in trace.spans() {
            *busy.entry(s.thread).or_default() += s.duration().get();
        }
        busy.into_iter().collect()
    };
    threads.sort_by_key(|(t, busy)| (std::cmp::Reverse(*busy), *t));
    let shown = threads.len().min(opts.max_threads);

    let mut out = String::new();
    out.push_str(&format!(
        "timeline of {:?}: {} over {} threads ({} shown)\n",
        trace.meta().scenario,
        makespan,
        threads.len(),
        shown
    ));
    let cell = (makespan.get() as f64 / width as f64).max(1.0);
    for &(thread, _) in threads.iter().take(shown) {
        // Coverage per cell: pick the category occupying the most time.
        let mut cells: Vec<(u64, Option<Category>)> = vec![(0, None); width];
        for s in trace.spans().iter().filter(|s| s.thread == thread) {
            let first = (s.start.get() as f64 / cell) as usize;
            let last = (((s.end.get() as f64) / cell).ceil() as usize).min(width);
            for (i, slot) in cells.iter_mut().enumerate().take(last).skip(first) {
                let cell_start = (i as f64 * cell) as u64;
                let cell_end = ((i + 1) as f64 * cell) as u64;
                let overlap = s
                    .end
                    .get()
                    .min(cell_end)
                    .saturating_sub(s.start.get().max(cell_start));
                if overlap > slot.0 {
                    *slot = (overlap, Some(s.category));
                }
            }
        }
        let row: String = cells
            .iter()
            .map(|(_, c)| c.map(glyph).unwrap_or(' '))
            .collect();
        out.push_str(&format!("{:>5} |{}|\n", format!("T{}", thread.0), row));
    }
    if threads.len() > shown {
        out.push_str(&format!("      … {} more threads\n", threads.len() - shown));
    }
    out.push_str(
        "legend: # compute  x aborted  a alt-producer  o original-state  = compare  \
         c copy  ~ sync  s setup  ! commit  . outside\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new("sample");
        b.push(ThreadId(0), Category::Setup, Cycles(0), Cycles(100), 0);
        b.push(
            ThreadId(0),
            Category::OutsideRegion,
            Cycles(900),
            Cycles(1_000),
            0,
        );
        b.push(
            ThreadId(1),
            Category::AltProducer,
            Cycles(100),
            Cycles(300),
            0,
        );
        b.push(
            ThreadId(1),
            Category::ChunkCompute,
            Cycles(300),
            Cycles(900),
            0,
        );
        b.push(
            ThreadId(2),
            Category::OriginalStateGen,
            Cycles(400),
            Cycles(700),
            0,
        );
        b.finish().unwrap()
    }

    #[test]
    fn renders_each_thread_row() {
        let text = render_timeline(&sample_trace(), &TimelineOptions::default());
        for t in ["T0", "T1", "T2"] {
            assert!(text.contains(t), "missing {t} in\n{text}");
        }
        assert!(text.contains('#'));
        assert!(text.contains('a'));
        assert!(text.contains('o'));
        assert!(text.contains("legend:"));
    }

    #[test]
    fn busiest_thread_is_listed_first() {
        let text = render_timeline(&sample_trace(), &TimelineOptions::default());
        let t1 = text.find("T1").unwrap();
        let t0 = text.find("T0").unwrap();
        assert!(t1 < t0, "T1 (800 busy) should precede T0 (200 busy)");
    }

    #[test]
    fn respects_max_threads() {
        let mut b = TraceBuilder::new("many");
        for i in 0..10 {
            b.push(
                ThreadId(i),
                Category::ChunkCompute,
                Cycles(0),
                Cycles(10),
                0,
            );
        }
        let text = render_timeline(
            &b.finish().unwrap(),
            &TimelineOptions {
                width: 40,
                max_threads: 3,
            },
        );
        assert!(text.contains("… 7 more threads"));
        assert_eq!(text.matches('|').count(), 6, "3 rows, 2 pipes each");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = TraceBuilder::new("empty").finish().unwrap();
        assert_eq!(
            render_timeline(&t, &TimelineOptions::default()),
            "(empty trace)\n"
        );
    }

    #[test]
    fn rows_have_uniform_width() {
        let opts = TimelineOptions {
            width: 50,
            max_threads: 10,
        };
        let text = render_timeline(&sample_trace(), &opts);
        for line in text.lines().filter(|l| l.contains('|')) {
            let inner = line.split('|').nth(1).unwrap();
            assert_eq!(inner.chars().count(), 50, "bad row: {line}");
        }
    }

    #[test]
    fn every_category_has_a_distinct_glyph() {
        let glyphs: Vec<char> = crate::CATEGORIES.iter().map(|c| glyph(*c)).collect();
        let mut dedup = glyphs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), glyphs.len(), "duplicate glyphs: {glyphs:?}");
    }
}
