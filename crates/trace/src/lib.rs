//! # stats-trace
//!
//! Span tracing and instruction accounting for the STATS workbench.
//!
//! The ISPASS 2019 paper measures "the time in CPU cycles of each critical
//! point of the STATS execution model" (§V-B) and attributes the gap to
//! ideal speedup across a fixed taxonomy of overhead sources (§III). This
//! crate provides that measurement vocabulary:
//!
//! * [`Category`] — the overhead taxonomy (setup, alternative producers,
//!   original-state generation, state comparison, state copying,
//!   synchronization, …).
//! * [`Span`] — one timestamped interval on one logical thread, carrying a
//!   cycle range and an instruction count.
//! * [`Trace`] — a validated collection of spans plus cross-thread
//!   dependency edges, the substrate for post-mortem critical-path analysis.
//! * [`InstructionBreakdown`] — per-category instruction accounting used by
//!   the paper's Figs. 14–15.
//!
//! Everything here is deterministic and serializable; traces produced by the
//! platform simulator can be archived and re-analyzed.
//!
//! ```
//! use stats_trace::{Category, Cycles, ThreadId, TraceBuilder};
//!
//! let mut b = TraceBuilder::new("demo");
//! let t0 = ThreadId(0);
//! let setup = b.push(t0, Category::Setup, Cycles(0), Cycles(100), 50);
//! let work = b.push(t0, Category::ChunkCompute, Cycles(100), Cycles(1_000), 800);
//! b.depend(setup, work);
//! let trace = b.finish().expect("well-formed");
//! assert_eq!(trace.makespan(), Cycles(1_000));
//! ```

pub mod analysis;
mod category;
pub mod chrome;
pub mod histogram;
mod ids;
mod instructions;
mod span;
mod summary;
pub mod timeline;
#[allow(clippy::module_inception)]
mod trace;

pub use category::{Category, CategoryKind, CATEGORIES};
pub use ids::{Cycles, SpanId, ThreadId};
pub use instructions::InstructionBreakdown;
pub use span::Span;
pub use summary::{CategoryTotals, ThreadSummary, TraceSummary};
pub use trace::{DependencyEdge, Trace, TraceBuilder, TraceError, TraceMeta};
