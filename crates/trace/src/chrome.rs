//! Chrome trace-event export: load workbench traces in `chrome://tracing`
//! or [Perfetto](https://ui.perfetto.dev).
//!
//! The trace-event format is plain JSON; this module hand-writes the tiny
//! subset needed (complete events, `"ph":"X"`) so no JSON dependency is
//! required. Virtual cycles are exported as microseconds (1 cycle = 1 µs)
//! — absolute time is meaningless in a virtual-time trace, only structure
//! matters.

use crate::{DependencyEdge, Trace};
use std::fmt::Write as _;

/// Escape a string for a JSON literal (the only dynamic strings we emit
/// are scenario names and span labels).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize a trace to the Chrome trace-event JSON format.
///
/// Each span becomes a complete event (`"ph":"X"`) on its logical thread;
/// dependency edges become flow events (`"ph":"s"`/`"ph":"f"`) so the
/// viewer draws arrows between producers and consumers. Metadata events
/// (`"ph":"M"`) name the process after the trace's scenario and pin each
/// thread's display order to its thread id — without the explicit
/// `thread_sort_index`, viewers order rows by first-event appearance, so
/// two exports of the same workload could lay out their threads
/// differently.
///
/// ```
/// use stats_trace::{Category, Cycles, ThreadId, TraceBuilder};
/// use stats_trace::chrome::to_chrome_trace;
///
/// let mut b = TraceBuilder::new("demo");
/// b.push(ThreadId(0), Category::Setup, Cycles(0), Cycles(10), 0);
/// let json = to_chrome_trace(&b.finish().unwrap());
/// assert!(json.starts_with('['));
/// assert!(json.contains("\"ph\":\"X\""));
/// assert!(json.contains("\"process_name\""));
/// ```
pub fn to_chrome_trace(trace: &Trace) -> String {
    to_chrome_trace_with_names(trace, &[])
}

/// [`to_chrome_trace`] with explicit thread names: `names` maps a logical
/// thread id to the label shown in the viewer (e.g. `stats-pool-3`,
/// `coordinator`). Threads without an entry fall back to `thread N`.
/// Native profiles use this so the timeline reads in pool terms instead
/// of bare numbers.
pub fn to_chrome_trace_with_names(trace: &Trace, names: &[(usize, String)]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut push = |event: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&event);
    };

    // Metadata first: the process name, then every thread in ascending
    // id order (a stable order regardless of which thread happened to
    // record the first span).
    push(
        format!(
            "  {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(&trace.meta().scenario)
        ),
        &mut out,
    );
    let mut tids: Vec<usize> = trace.spans().iter().map(|s| s.thread.0).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let name = names
            .iter()
            .find(|(t, _)| *t == tid)
            .map_or_else(|| format!("thread {tid}"), |(_, n)| n.clone());
        push(
            format!(
                "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                tid,
                escape(&name)
            ),
            &mut out,
        );
        push(
            format!(
                "  {{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            ),
            &mut out,
        );
    }

    for s in trace.spans() {
        let name = match &s.label {
            Some(l) => format!("{} ({})", s.category.name(), escape(l)),
            None => s.category.name().to_string(),
        };
        push(
            format!(
                "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"instructions\":{}}}}}",
                escape(&name),
                s.category.name(),
                s.start.get(),
                s.duration().get(),
                s.thread.0,
                s.instructions
            ),
            &mut out,
        );
    }

    for (i, DependencyEdge { from, to }) in trace.edges().iter().enumerate() {
        let f = trace.span(*from);
        let t = trace.span(*to);
        push(
            format!(
                "  {{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"s\",\"id\":{},\"ts\":{},\
                 \"pid\":1,\"tid\":{}}}",
                i,
                f.end.get().max(1) - 1,
                f.thread.0
            ),
            &mut out,
        );
        push(
            format!(
                "  {{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\
                 \"ts\":{},\"pid\":1,\"tid\":{}}}",
                i,
                t.start.get(),
                t.thread.0
            ),
            &mut out,
        );
    }

    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Category, Cycles, ThreadId, TraceBuilder};

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("chrome");
        let a = b.push(ThreadId(0), Category::Setup, Cycles(0), Cycles(10), 5);
        let c = b.push_labeled(
            ThreadId(1),
            Category::ChunkCompute,
            Cycles(10),
            Cycles(30),
            20,
            "chunk 0",
        );
        b.depend(a, c);
        b.finish().unwrap()
    }

    #[test]
    fn emits_complete_events_per_span() {
        let json = to_chrome_trace(&sample());
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"dur\":20"));
        assert!(json.contains("chunk 0"));
    }

    #[test]
    fn emits_flow_events_per_edge() {
        let json = to_chrome_trace(&sample());
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
    }

    #[test]
    fn output_is_structurally_valid_json_array() {
        let json = to_chrome_trace(&sample());
        let trimmed = json.trim();
        assert!(trimmed.starts_with('['));
        assert!(trimmed.ends_with(']'));
        // Balanced braces and no trailing comma before the closer.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn escapes_hostile_labels() {
        let mut b = TraceBuilder::new("esc");
        b.push_labeled(
            ThreadId(0),
            Category::Sync,
            Cycles(0),
            Cycles(1),
            0,
            "quote \" backslash \\ newline \n end",
        );
        let json = to_chrome_trace(&b.finish().unwrap());
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\\n"));
        // Raw newline must not appear inside any string literal.
        for line in json.lines() {
            assert!(!line.contains("newline \n"));
        }
    }

    #[test]
    fn empty_trace_has_only_process_metadata() {
        let t = TraceBuilder::new("empty").finish().unwrap();
        let json = to_chrome_trace(&t);
        // No spans → no complete/flow/thread events, but the process is
        // still named so the viewer shows the scenario.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 1);
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\":\"empty\""));
        assert!(!json.contains("\"ph\":\"X\""));
        assert!(!json.contains("thread_name"));
    }

    #[test]
    fn metadata_names_process_and_threads_in_stable_order() {
        // Record the higher thread id first: appearance order and id
        // order disagree, and the metadata must follow id order.
        let mut b = TraceBuilder::new("meta");
        b.push(ThreadId(3), Category::ChunkCompute, Cycles(0), Cycles(5), 1);
        b.push(ThreadId(1), Category::Setup, Cycles(0), Cycles(2), 1);
        let json = to_chrome_trace(&b.finish().unwrap());
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\":\"meta\""));
        let t1 = json
            .find("\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1")
            .unwrap();
        let t3 = json
            .find("\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":3")
            .unwrap();
        assert!(t1 < t3, "thread metadata must be in ascending tid order");
        assert_eq!(json.matches("\"thread_sort_index\"").count(), 2);
        assert!(json.contains("\"sort_index\":1"));
        assert!(json.contains("\"sort_index\":3"));
        // Metadata precedes the first span event.
        assert!(t3 < json.find("\"ph\":\"X\"").unwrap());
    }

    #[test]
    fn named_threads_override_the_default_labels() {
        let mut b = TraceBuilder::new("named");
        b.push(ThreadId(0), Category::ChunkCompute, Cycles(0), Cycles(5), 1);
        b.push(ThreadId(1), Category::Sync, Cycles(0), Cycles(1), 0);
        b.push(ThreadId(2), Category::Commit, Cycles(0), Cycles(1), 0);
        let t = b.finish().unwrap();
        let names = vec![
            (0, "stats-pool-0".to_string()),
            (2, "coordinator".to_string()),
        ];
        let json = to_chrome_trace_with_names(&t, &names);
        assert!(json.contains("\"name\":\"stats-pool-0\""));
        assert!(json.contains("\"name\":\"coordinator\""));
        // Unnamed threads keep the numeric fallback.
        assert!(json.contains("\"name\":\"thread 1\""));
        // Hostile names are escaped like every other string.
        let hostile = vec![(0, "a\"b\\c".to_string())];
        let json = to_chrome_trace_with_names(&t, &hostile);
        assert!(json.contains("a\\\"b\\\\c"));
    }

    #[test]
    fn escape_handles_every_control_character() {
        // The named shorthands.
        assert_eq!(escape("\n\r\t"), "\\n\\r\\t");
        // Everything else below 0x20 becomes a \u escape.
        assert_eq!(escape("\u{0}"), "\\u0000");
        assert_eq!(escape("\u{1b}"), "\\u001b");
        assert_eq!(escape("\u{1f}"), "\\u001f");
        for raw in 0u32..0x20 {
            let c = char::from_u32(raw).unwrap();
            let esc = escape(&c.to_string());
            assert!(esc.is_ascii(), "U+{raw:04X} escaped to non-ASCII {esc:?}");
            assert!(
                !esc.chars().any(|c| (c as u32) < 0x20),
                "U+{raw:04X} left a raw control char in {esc:?}"
            );
        }
        // 0x20 itself (space) and DEL pass through: JSON only requires
        // escaping below 0x20.
        assert_eq!(escape(" \u{7f}"), " \u{7f}");
    }

    #[test]
    fn escape_preserves_backslash_runs_and_unicode() {
        // Each backslash doubles; a run of four becomes eight.
        assert_eq!(escape("\\\\\\\\"), "\\\\\\\\\\\\\\\\");
        // Escaping the escaped form doubles the backslashes again rather
        // than corrupting them: one becomes two becomes four.
        assert_eq!(escape(&escape("a\\b")), "a\\\\\\\\b");
        // Multibyte characters pass through untouched — JSON strings are
        // UTF-8, no \u escaping needed above 0x1F.
        assert_eq!(escape("état 漢字 🎯"), "état 漢字 🎯");
        // Mixed hostile input stays one logical line.
        let esc = escape("a\"b\\c\nd\u{7}e");
        assert_eq!(esc, "a\\\"b\\\\c\\nd\\u0007e");
    }

    #[test]
    fn hostile_label_roundtrips_through_a_full_export() {
        let mut b = TraceBuilder::new("esc2");
        b.push_labeled(
            ThreadId(0),
            Category::Commit,
            Cycles(0),
            Cycles(2),
            0,
            "ctrl \u{1} quote \" slash \\ tab \t",
        );
        let json = to_chrome_trace(&b.finish().unwrap());
        // No raw control characters survive anywhere in the document.
        assert!(
            !json.chars().any(|c| (c as u32) < 0x20 && c != '\n'),
            "raw control char leaked into {json:?}"
        );
        // Quotes inside every emitted string stay escaped: each line is
        // still a single brace-balanced object.
        for line in json.lines().filter(|l| l.contains("{")) {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }
}
