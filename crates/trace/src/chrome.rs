//! Chrome trace-event export: load workbench traces in `chrome://tracing`
//! or [Perfetto](https://ui.perfetto.dev).
//!
//! The trace-event format is plain JSON; this module hand-writes the tiny
//! subset needed (complete events, `"ph":"X"`) so no JSON dependency is
//! required. Virtual cycles are exported as microseconds (1 cycle = 1 µs)
//! — absolute time is meaningless in a virtual-time trace, only structure
//! matters.

use crate::{DependencyEdge, Trace};
use std::fmt::Write as _;

/// Escape a string for a JSON literal (the only dynamic strings we emit
/// are scenario names and span labels).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize a trace to the Chrome trace-event JSON format.
///
/// Each span becomes a complete event (`"ph":"X"`) on its logical thread;
/// dependency edges become flow events (`"ph":"s"`/`"ph":"f"`) so the
/// viewer draws arrows between producers and consumers.
///
/// ```
/// use stats_trace::{Category, Cycles, ThreadId, TraceBuilder};
/// use stats_trace::chrome::to_chrome_trace;
///
/// let mut b = TraceBuilder::new("demo");
/// b.push(ThreadId(0), Category::Setup, Cycles(0), Cycles(10), 0);
/// let json = to_chrome_trace(&b.finish().unwrap());
/// assert!(json.starts_with('['));
/// assert!(json.contains("\"ph\":\"X\""));
/// ```
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut push = |event: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&event);
    };

    for s in trace.spans() {
        let name = match &s.label {
            Some(l) => format!("{} ({})", s.category.name(), escape(l)),
            None => s.category.name().to_string(),
        };
        push(
            format!(
                "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"instructions\":{}}}}}",
                escape(&name),
                s.category.name(),
                s.start.get(),
                s.duration().get(),
                s.thread.0,
                s.instructions
            ),
            &mut out,
        );
    }

    for (i, DependencyEdge { from, to }) in trace.edges().iter().enumerate() {
        let f = trace.span(*from);
        let t = trace.span(*to);
        push(
            format!(
                "  {{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"s\",\"id\":{},\"ts\":{},\
                 \"pid\":1,\"tid\":{}}}",
                i,
                f.end.get().max(1) - 1,
                f.thread.0
            ),
            &mut out,
        );
        push(
            format!(
                "  {{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\
                 \"ts\":{},\"pid\":1,\"tid\":{}}}",
                i,
                t.start.get(),
                t.thread.0
            ),
            &mut out,
        );
    }

    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Category, Cycles, ThreadId, TraceBuilder};

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("chrome");
        let a = b.push(ThreadId(0), Category::Setup, Cycles(0), Cycles(10), 5);
        let c = b.push_labeled(
            ThreadId(1),
            Category::ChunkCompute,
            Cycles(10),
            Cycles(30),
            20,
            "chunk 0",
        );
        b.depend(a, c);
        b.finish().unwrap()
    }

    #[test]
    fn emits_complete_events_per_span() {
        let json = to_chrome_trace(&sample());
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"dur\":20"));
        assert!(json.contains("chunk 0"));
    }

    #[test]
    fn emits_flow_events_per_edge() {
        let json = to_chrome_trace(&sample());
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
    }

    #[test]
    fn output_is_structurally_valid_json_array() {
        let json = to_chrome_trace(&sample());
        let trimmed = json.trim();
        assert!(trimmed.starts_with('['));
        assert!(trimmed.ends_with(']'));
        // Balanced braces and no trailing comma before the closer.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn escapes_hostile_labels() {
        let mut b = TraceBuilder::new("esc");
        b.push_labeled(
            ThreadId(0),
            Category::Sync,
            Cycles(0),
            Cycles(1),
            0,
            "quote \" backslash \\ newline \n end",
        );
        let json = to_chrome_trace(&b.finish().unwrap());
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\\n"));
        // Raw newline must not appear inside any string literal.
        for line in json.lines() {
            assert!(!line.contains("newline \n"));
        }
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        let t = TraceBuilder::new("empty").finish().unwrap();
        let json = to_chrome_trace(&t);
        assert_eq!(json.trim(), "[\n\n]".trim_start());
    }

    #[test]
    fn escape_handles_every_control_character() {
        // The named shorthands.
        assert_eq!(escape("\n\r\t"), "\\n\\r\\t");
        // Everything else below 0x20 becomes a \u escape.
        assert_eq!(escape("\u{0}"), "\\u0000");
        assert_eq!(escape("\u{1b}"), "\\u001b");
        assert_eq!(escape("\u{1f}"), "\\u001f");
        for raw in 0u32..0x20 {
            let c = char::from_u32(raw).unwrap();
            let esc = escape(&c.to_string());
            assert!(esc.is_ascii(), "U+{raw:04X} escaped to non-ASCII {esc:?}");
            assert!(
                !esc.chars().any(|c| (c as u32) < 0x20),
                "U+{raw:04X} left a raw control char in {esc:?}"
            );
        }
        // 0x20 itself (space) and DEL pass through: JSON only requires
        // escaping below 0x20.
        assert_eq!(escape(" \u{7f}"), " \u{7f}");
    }

    #[test]
    fn escape_preserves_backslash_runs_and_unicode() {
        // Each backslash doubles; a run of four becomes eight.
        assert_eq!(escape("\\\\\\\\"), "\\\\\\\\\\\\\\\\");
        // Escaping the escaped form doubles the backslashes again rather
        // than corrupting them: one becomes two becomes four.
        assert_eq!(escape(&escape("a\\b")), "a\\\\\\\\b");
        // Multibyte characters pass through untouched — JSON strings are
        // UTF-8, no \u escaping needed above 0x1F.
        assert_eq!(escape("état 漢字 🎯"), "état 漢字 🎯");
        // Mixed hostile input stays one logical line.
        let esc = escape("a\"b\\c\nd\u{7}e");
        assert_eq!(esc, "a\\\"b\\\\c\\nd\\u0007e");
    }

    #[test]
    fn hostile_label_roundtrips_through_a_full_export() {
        let mut b = TraceBuilder::new("esc2");
        b.push_labeled(
            ThreadId(0),
            Category::Commit,
            Cycles(0),
            Cycles(2),
            0,
            "ctrl \u{1} quote \" slash \\ tab \t",
        );
        let json = to_chrome_trace(&b.finish().unwrap());
        // No raw control characters survive anywhere in the document.
        assert!(
            !json.chars().any(|c| (c as u32) < 0x20 && c != '\n'),
            "raw control char leaked into {json:?}"
        );
        // Quotes inside every emitted string stay escaped: each line is
        // still a single brace-balanced object.
        for line in json.lines().filter(|l| l.contains("{")) {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }
}
