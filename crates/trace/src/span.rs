//! Individual trace spans.

use crate::{Category, Cycles, SpanId, ThreadId};
use serde::{Deserialize, Serialize};

/// One timestamped activity interval on one logical thread.
///
/// Spans are flat (non-nested) per thread: the runtime emits a sequence of
/// adjacent or gapped intervals per thread, mirroring the paper's
/// timestamping of "each critical point of the STATS execution model"
/// (§V-B). A gap between consecutive spans on the same thread is idle time
/// (the thread is blocked waiting or was never scheduled on a core).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Identity of this span within its trace.
    pub id: SpanId,
    /// Logical thread the activity ran on.
    pub thread: ThreadId,
    /// What the thread was doing.
    pub category: Category,
    /// Start timestamp (inclusive), in virtual cycles.
    pub start: Cycles,
    /// End timestamp (exclusive), in virtual cycles. `end >= start`.
    pub end: Cycles,
    /// Committed instructions attributed to this span (the paper's Fig. 14
    /// "extra instructions" accounting).
    pub instructions: u64,
    /// Free-form label, typically the chunk index (`"chunk 3"`) or the
    /// replica index of an original-state generation.
    pub label: Option<String>,
}

impl Span {
    /// Duration of this span.
    ///
    /// ```
    /// use stats_trace::{Category, Cycles, Span, SpanId, ThreadId};
    /// let s = Span {
    ///     id: SpanId(0),
    ///     thread: ThreadId(0),
    ///     category: Category::Sync,
    ///     start: Cycles(10),
    ///     end: Cycles(25),
    ///     instructions: 0,
    ///     label: None,
    /// };
    /// assert_eq!(s.duration(), Cycles(15));
    /// ```
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }

    /// Whether this span overlaps `other` in time (half-open intervals).
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: u64, end: u64) -> Span {
        Span {
            id: SpanId(0),
            thread: ThreadId(0),
            category: Category::ChunkCompute,
            start: Cycles(start),
            end: Cycles(end),
            instructions: 0,
            label: None,
        }
    }

    #[test]
    fn duration_is_end_minus_start() {
        assert_eq!(span(5, 12).duration(), Cycles(7));
        assert_eq!(span(5, 5).duration(), Cycles::ZERO);
    }

    #[test]
    fn overlap_is_half_open() {
        // [0,10) and [10,20) touch but do not overlap.
        assert!(!span(0, 10).overlaps(&span(10, 20)));
        assert!(span(0, 10).overlaps(&span(9, 20)));
        assert!(span(5, 6).overlaps(&span(0, 100)));
        assert!(!span(0, 5).overlaps(&span(6, 7)));
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = span(0, 10);
        let b = span(5, 15);
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }
}
