//! Newtypes for virtual time, threads, and spans.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A quantity of virtual CPU cycles.
///
/// All time in the workbench is virtual: the platform simulator assigns
/// cycle costs deterministically, so every experiment is reproducible on any
/// host. `Cycles` is an absolute timestamp or a duration depending on
/// context, like `u64` nanoseconds in `std::time`.
///
/// ```
/// use stats_trace::Cycles;
/// let a = Cycles(100);
/// let b = Cycles(250);
/// assert_eq!(b - a, Cycles(150));
/// assert_eq!(a + Cycles(50), Cycles(150));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// The raw cycle count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }

    /// This duration as a fraction of `total` (0.0 when `total` is zero).
    pub fn fraction_of(self, total: Cycles) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// Identifier of a logical thread in a trace.
///
/// Logical threads are the paper's "STATS threads" (Table I counts them):
/// there may be many more of them than hardware cores.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ThreadId(pub usize);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a span within one [`Trace`](crate::Trace).
///
/// Densely allocated by [`TraceBuilder`](crate::TraceBuilder) in insertion
/// order; usable as an index into [`Trace::spans`](crate::Trace::spans).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SpanId(pub usize);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(10) - Cycles(4), Cycles(6));
        assert_eq!(Cycles(3).saturating_sub(Cycles(10)), Cycles::ZERO);
        let mut c = Cycles(1);
        c += Cycles(2);
        assert_eq!(c, Cycles(3));
    }

    #[test]
    fn cycles_sum_and_fraction() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
        assert!((Cycles(3).fraction_of(Cycles(6)) - 0.5).abs() < 1e-12);
        assert_eq!(Cycles(3).fraction_of(Cycles::ZERO), 0.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cycles(42).to_string(), "42cy");
        assert_eq!(ThreadId(3).to_string(), "T3");
        assert_eq!(SpanId(9).to_string(), "S9");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Cycles(2) < Cycles(10));
        assert!(ThreadId(1) < ThreadId(2));
    }
}
