//! Instruction accounting for the paper's Figs. 14–15.

use crate::{Category, Trace, CATEGORIES};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Committed-instruction accounting for one execution, split by category.
///
/// The paper's Fig. 14 reports "the total amount of extra work performed in
/// terms of number of instructions executed at run time" relative to the
/// original program, and Fig. 15 breaks the extra instructions into the
/// §III-B components. [`InstructionBreakdown`] computes both given a trace
/// and a baseline instruction count.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InstructionBreakdown {
    per_category: BTreeMap<Category, u64>,
}

impl InstructionBreakdown {
    /// Build from a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        InstructionBreakdown {
            per_category: trace.instructions_by_category(),
        }
    }

    /// Instructions attributed to `category`.
    pub fn get(&self, category: Category) -> u64 {
        self.per_category.get(&category).copied().unwrap_or(0)
    }

    /// Total instructions across all categories.
    pub fn total(&self) -> u64 {
        self.per_category.values().sum()
    }

    /// Instructions in overhead categories (everything but useful work).
    pub fn overhead(&self) -> u64 {
        self.per_category
            .iter()
            .filter(|(c, _)| c.is_overhead())
            .map(|(_, v)| *v)
            .sum()
    }

    /// Extra instructions relative to a sequential baseline, as a signed
    /// percentage of the baseline (Fig. 14's y-axis).
    ///
    /// Negative values are meaningful: the paper observes that
    /// `streamclassifier` and `streamcluster` execute *fewer* instructions
    /// under STATS because they converge faster.
    pub fn extra_percent_vs(&self, baseline_instructions: u64) -> f64 {
        if baseline_instructions == 0 {
            return 0.0;
        }
        let total = self.total() as f64;
        let base = baseline_instructions as f64;
        (total - base) / base * 100.0
    }

    /// Fraction of overhead instructions attributed to `category`
    /// (Fig. 15's stacked-bar shares). Returns 0 when there is no overhead.
    pub fn overhead_share(&self, category: Category) -> f64 {
        let overhead = self.overhead();
        if overhead == 0 {
            return 0.0;
        }
        debug_assert!(category.is_overhead());
        self.get(category) as f64 / overhead as f64
    }

    /// Iterate the §III-B extra-computation categories with their counts,
    /// in presentation order.
    pub fn extra_computation(&self) -> impl Iterator<Item = (Category, u64)> + '_ {
        CATEGORIES
            .into_iter()
            .filter(|c| c.is_extra_computation())
            .map(move |c| (c, self.get(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cycles, ThreadId, TraceBuilder};

    fn trace() -> Trace {
        let mut b = TraceBuilder::new("instr");
        b.push(
            ThreadId(0),
            Category::ChunkCompute,
            Cycles(0),
            Cycles(10),
            1_000,
        );
        b.push(
            ThreadId(0),
            Category::StateCopy,
            Cycles(10),
            Cycles(20),
            300,
        );
        b.push(
            ThreadId(1),
            Category::AltProducer,
            Cycles(0),
            Cycles(10),
            200,
        );
        b.finish().unwrap()
    }

    #[test]
    fn totals_and_overhead() {
        let ib = InstructionBreakdown::from_trace(&trace());
        assert_eq!(ib.total(), 1_500);
        assert_eq!(ib.overhead(), 500);
        assert_eq!(ib.get(Category::StateCopy), 300);
        assert_eq!(ib.get(Category::Setup), 0);
    }

    #[test]
    fn extra_percent_positive_and_negative() {
        let ib = InstructionBreakdown::from_trace(&trace());
        // 1500 total vs 1000 baseline = +50%.
        assert!((ib.extra_percent_vs(1_000) - 50.0).abs() < 1e-12);
        // 1500 total vs 3000 baseline = -50% (the stream* effect).
        assert!((ib.extra_percent_vs(3_000) + 50.0).abs() < 1e-12);
        assert_eq!(ib.extra_percent_vs(0), 0.0);
    }

    #[test]
    fn overhead_shares_sum_to_one() {
        let ib = InstructionBreakdown::from_trace(&trace());
        let share_copy = ib.overhead_share(Category::StateCopy);
        let share_alt = ib.overhead_share(Category::AltProducer);
        assert!((share_copy - 0.6).abs() < 1e-12);
        assert!((share_alt - 0.4).abs() < 1e-12);
        assert!((share_copy + share_alt - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extra_computation_iterates_overhead_components() {
        let ib = InstructionBreakdown::from_trace(&trace());
        let items: Vec<_> = ib.extra_computation().collect();
        assert!(items
            .iter()
            .any(|(c, v)| *c == Category::StateCopy && *v == 300));
        assert!(items.iter().all(|(c, _)| c.is_extra_computation()));
    }
}
