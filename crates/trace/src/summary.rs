//! Aggregated views of a trace: per-category and per-thread summaries.

use crate::{Category, Cycles, ThreadId, Trace, CATEGORIES};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Busy-time totals per category over a whole trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CategoryTotals {
    totals: BTreeMap<Category, Cycles>,
}

impl CategoryTotals {
    /// Compute totals from a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        CategoryTotals {
            totals: trace.cycles_by_category(),
        }
    }

    /// Busy cycles in `category` (zero if absent).
    pub fn get(&self, category: Category) -> Cycles {
        self.totals.get(&category).copied().unwrap_or(Cycles::ZERO)
    }

    /// Sum over all categories.
    pub fn total(&self) -> Cycles {
        self.totals.values().copied().sum()
    }

    /// Sum over overhead categories only (everything except useful work).
    pub fn overhead(&self) -> Cycles {
        self.totals
            .iter()
            .filter(|(c, _)| c.is_overhead())
            .map(|(_, v)| *v)
            .sum()
    }

    /// Iterate categories in presentation order with their totals.
    pub fn iter(&self) -> impl Iterator<Item = (Category, Cycles)> + '_ {
        CATEGORIES.into_iter().map(move |c| (c, self.get(c)))
    }
}

/// Per-thread busy/idle accounting within the parallel region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadSummary {
    /// The logical thread.
    pub thread: ThreadId,
    /// First activity timestamp.
    pub first_start: Cycles,
    /// Last activity timestamp.
    pub last_end: Cycles,
    /// Total busy cycles across all the thread's spans.
    pub busy: Cycles,
    /// Idle cycles between `first_start` and `last_end` not covered by any
    /// span (blocked or descheduled time).
    pub idle: Cycles,
}

/// Whole-trace summary: makespan, per-thread accounting, imbalance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Per-thread accounting, ordered by thread id.
    pub threads: Vec<ThreadSummary>,
    /// End of the last span.
    pub makespan: Cycles,
    /// Busy-time totals per category.
    pub categories: CategoryTotals,
}

impl TraceSummary {
    /// Summarize a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut per_thread: BTreeMap<ThreadId, (Cycles, Cycles, Cycles)> = BTreeMap::new();
        for s in trace.spans() {
            let entry = per_thread
                .entry(s.thread)
                .or_insert((s.start, s.end, Cycles::ZERO));
            entry.0 = entry.0.min(s.start);
            entry.1 = entry.1.max(s.end);
            entry.2 += s.duration();
        }
        let threads = per_thread
            .into_iter()
            .map(|(thread, (first_start, last_end, busy))| ThreadSummary {
                thread,
                first_start,
                last_end,
                busy,
                idle: (last_end - first_start).saturating_sub(busy),
            })
            .collect();
        TraceSummary {
            threads,
            makespan: trace.makespan(),
            categories: CategoryTotals::from_trace(trace),
        }
    }

    /// Imbalance ratio in `[0, 1)`: how much of the aggregate thread
    /// lifetime is spent idle. Zero means perfectly balanced threads.
    ///
    /// This follows §III-A: "the performance lost because of imbalance
    /// execution is the amount of time spent when all threads but one is
    /// running" — generalized to the fraction of thread-lifetime cycles
    /// that are idle.
    pub fn imbalance(&self) -> f64 {
        let lifetime: u64 = self
            .threads
            .iter()
            .map(|t| (t.last_end - t.first_start).get())
            .sum();
        if lifetime == 0 {
            return 0.0;
        }
        let idle: u64 = self.threads.iter().map(|t| t.idle.get()).sum();
        idle as f64 / lifetime as f64
    }

    /// The busiest thread's busy time: a lower bound on the makespan.
    pub fn max_thread_busy(&self) -> Cycles {
        self.threads
            .iter()
            .map(|t| t.busy)
            .max()
            .unwrap_or(Cycles::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    fn two_thread_trace() -> Trace {
        let mut b = TraceBuilder::new("sum");
        // T0 busy 0..100 and 200..300 (idle 100..200).
        b.push(
            ThreadId(0),
            Category::ChunkCompute,
            Cycles(0),
            Cycles(100),
            100,
        );
        b.push(ThreadId(0), Category::Sync, Cycles(200), Cycles(300), 0);
        // T1 busy 0..50.
        b.push(
            ThreadId(1),
            Category::AltProducer,
            Cycles(0),
            Cycles(50),
            40,
        );
        b.finish().unwrap()
    }

    #[test]
    fn thread_summaries_account_busy_and_idle() {
        let s = TraceSummary::from_trace(&two_thread_trace());
        assert_eq!(s.threads.len(), 2);
        let t0 = &s.threads[0];
        assert_eq!(t0.busy, Cycles(200));
        assert_eq!(t0.idle, Cycles(100));
        let t1 = &s.threads[1];
        assert_eq!(t1.busy, Cycles(50));
        assert_eq!(t1.idle, Cycles::ZERO);
    }

    #[test]
    fn imbalance_fraction() {
        let s = TraceSummary::from_trace(&two_thread_trace());
        // lifetimes: 300 + 50 = 350; idle: 100.
        assert!((s.imbalance() - 100.0 / 350.0).abs() < 1e-12);
    }

    #[test]
    fn category_totals() {
        let s = TraceSummary::from_trace(&two_thread_trace());
        assert_eq!(s.categories.get(Category::ChunkCompute), Cycles(100));
        assert_eq!(s.categories.get(Category::Sync), Cycles(100));
        assert_eq!(s.categories.get(Category::AltProducer), Cycles(50));
        assert_eq!(s.categories.get(Category::Setup), Cycles::ZERO);
        assert_eq!(s.categories.total(), Cycles(250));
        assert_eq!(s.categories.overhead(), Cycles(150));
    }

    #[test]
    fn makespan_lower_bound() {
        let s = TraceSummary::from_trace(&two_thread_trace());
        assert!(s.max_thread_busy() <= s.makespan);
    }

    #[test]
    fn empty_trace_summary() {
        let t = TraceBuilder::new("empty").finish().unwrap();
        let s = TraceSummary::from_trace(&t);
        assert_eq!(s.imbalance(), 0.0);
        assert_eq!(s.max_thread_busy(), Cycles::ZERO);
    }

    #[test]
    fn category_iter_covers_presentation_order() {
        let s = TraceSummary::from_trace(&two_thread_trace());
        let cats: Vec<_> = s.categories.iter().map(|(c, _)| c).collect();
        assert_eq!(cats.len(), CATEGORIES.len());
        assert_eq!(cats[0], Category::Setup);
    }
}
