//! Trace slicing and interval analysis utilities.

use crate::{Category, Cycles, Trace, TraceBuilder};

/// Restrict a trace to the spans matching `keep`, preserving timestamps
/// (edges among surviving spans are kept; edges touching removed spans are
/// dropped).
pub fn filter_spans(trace: &Trace, keep: impl Fn(&crate::Span) -> bool) -> Trace {
    let mut b = TraceBuilder::new(trace.meta().scenario.clone());
    b.cores(trace.meta().cores);
    if let Some(seq) = trace.meta().sequential_cycles {
        b.sequential_cycles(seq);
    }
    let mut remap = vec![None; trace.spans().len()];
    for s in trace.spans() {
        if keep(s) {
            let id = match &s.label {
                Some(l) => b.push_labeled(
                    s.thread,
                    s.category,
                    s.start,
                    s.end,
                    s.instructions,
                    l.clone(),
                ),
                None => b.push(s.thread, s.category, s.start, s.end, s.instructions),
            };
            remap[s.id.0] = Some(id);
        }
    }
    for e in trace.edges() {
        if let (Some(f), Some(t)) = (remap[e.from.0], remap[e.to.0]) {
            b.depend(f, t);
        }
    }
    b.finish().expect("subset of a valid trace is valid")
}

/// Clip a trace to the window `[start, end)`: spans are intersected with
/// the window, spans outside it disappear, and edges among survivors whose
/// clipped timestamps still respect causality are kept.
pub fn window(trace: &Trace, start: Cycles, end: Cycles) -> Trace {
    let mut b = TraceBuilder::new(format!("{} [{start}..{end})", trace.meta().scenario));
    b.cores(trace.meta().cores);
    let mut remap = vec![None; trace.spans().len()];
    for s in trace.spans() {
        let s_start = s.start.max(start);
        let s_end = s.end.min(end);
        if s_start < s_end || (s.start == s.end && s.start >= start && s.start < end) {
            let id = b.push(
                s.thread,
                s.category,
                s_start,
                s_end.max(s_start),
                s.instructions,
            );
            remap[s.id.0] = Some(id);
        }
    }
    for e in trace.edges() {
        if let (Some(_), Some(_)) = (remap[e.from.0], remap[e.to.0]) {
            // Clipping can invert edge timing (producer clipped later than
            // consumer start); only keep edges that stay causal.
            let f = trace.span(e.from);
            let t = trace.span(e.to);
            if f.end.min(end) <= t.start.max(start) {
                b.depend(remap[e.from.0].unwrap(), remap[e.to.0].unwrap());
            }
        }
    }
    b.finish().expect("clipped spans cannot overlap")
}

/// Number of threads simultaneously busy at each category-changing
/// instant: returns `(time, busy_threads)` breakpoints in time order.
pub fn concurrency_profile(trace: &Trace) -> Vec<(Cycles, usize)> {
    let mut events: Vec<(Cycles, i64)> = Vec::new();
    for s in trace.spans() {
        if s.start < s.end {
            events.push((s.start, 1));
            events.push((s.end, -1));
        }
    }
    events.sort_by_key(|(t, delta)| (*t, *delta));
    let mut profile = Vec::new();
    let mut level = 0i64;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        while i < events.len() && events[i].0 == t {
            level += events[i].1;
            i += 1;
        }
        profile.push((t, level.max(0) as usize));
    }
    profile
}

/// Fraction of the makespan during which at least `threshold` threads are
/// busy (the paper's §III-A imbalance view: "the amount of time spent when
/// all threads but one is running" is `1 - busy_fraction(2)` for a
/// two-thread program).
///
/// ```
/// use stats_trace::{Category, Cycles, ThreadId, TraceBuilder};
/// use stats_trace::analysis::busy_fraction;
/// let mut b = TraceBuilder::new("demo");
/// b.push(ThreadId(0), Category::ChunkCompute, Cycles(0), Cycles(100), 0);
/// b.push(ThreadId(1), Category::ChunkCompute, Cycles(50), Cycles(100), 0);
/// let t = b.finish().unwrap();
/// assert_eq!(busy_fraction(&t, 2), 0.5);
/// ```
pub fn busy_fraction(trace: &Trace, threshold: usize) -> f64 {
    let makespan = trace.makespan();
    if makespan == Cycles::ZERO {
        return 0.0;
    }
    let profile = concurrency_profile(trace);
    let mut covered = 0u64;
    for pair in profile.windows(2) {
        if pair[0].1 >= threshold {
            covered += (pair[1].0 - pair[0].0).get();
        }
    }
    // Tail after the last breakpoint has level 0 by construction.
    covered as f64 / makespan.get() as f64
}

/// Total cycles spent in `category` within the window `[start, end)`.
pub fn category_cycles_in(trace: &Trace, category: Category, start: Cycles, end: Cycles) -> Cycles {
    let mut total = 0u64;
    for s in trace.spans().iter().filter(|s| s.category == category) {
        let a = s.start.max(start);
        let b = s.end.min(end);
        if a < b {
            total += (b - a).get();
        }
    }
    Cycles(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadId;

    fn trace() -> Trace {
        let mut b = TraceBuilder::new("analysis");
        let a = b.push(ThreadId(0), Category::Setup, Cycles(0), Cycles(100), 10);
        let c = b.push(
            ThreadId(1),
            Category::ChunkCompute,
            Cycles(100),
            Cycles(300),
            50,
        );
        b.push(
            ThreadId(2),
            Category::ChunkCompute,
            Cycles(150),
            Cycles(250),
            40,
        );
        b.push(
            ThreadId(0),
            Category::OutsideRegion,
            Cycles(300),
            Cycles(350),
            5,
        );
        b.depend(a, c);
        b.finish().unwrap()
    }

    #[test]
    fn filter_keeps_matching_spans_and_edges() {
        let t = trace();
        let only_compute = filter_spans(&t, |s| s.category == Category::ChunkCompute);
        assert_eq!(only_compute.spans().len(), 2);
        assert!(only_compute.edges().is_empty(), "edge to setup dropped");
        let keep_all = filter_spans(&t, |_| true);
        assert_eq!(keep_all.spans().len(), 4);
        assert_eq!(keep_all.edges().len(), 1);
    }

    #[test]
    fn window_clips_spans() {
        let t = trace();
        let w = window(&t, Cycles(120), Cycles(220));
        // Setup (0..100) and outside (300..350) vanish; the two compute
        // spans clip to 120..220 and 150..220.
        assert_eq!(w.spans().len(), 2);
        assert_eq!(w.makespan(), Cycles(220));
        for s in w.spans() {
            assert!(s.start >= Cycles(120));
            assert!(s.end <= Cycles(220));
        }
    }

    #[test]
    fn concurrency_profile_tracks_levels() {
        let t = trace();
        let p = concurrency_profile(&t);
        // At 150..250 two compute threads overlap.
        let level_at = |time: u64| {
            p.iter()
                .rev()
                .find(|(t, _)| t.get() <= time)
                .map(|(_, l)| *l)
                .unwrap_or(0)
        };
        assert_eq!(level_at(50), 1);
        assert_eq!(level_at(200), 2);
        assert_eq!(level_at(275), 1);
        assert_eq!(level_at(400), 0);
    }

    #[test]
    fn busy_fraction_matches_hand_count() {
        let t = trace();
        // Makespan 350; >=1 busy during 0..350 = 100%; >=2 busy during
        // 150..250 = 100/350.
        assert!((busy_fraction(&t, 1) - 1.0).abs() < 1e-12);
        assert!((busy_fraction(&t, 2) - 100.0 / 350.0).abs() < 1e-12);
        assert_eq!(busy_fraction(&t, 3), 0.0);
    }

    #[test]
    fn category_cycles_window_intersection() {
        let t = trace();
        let c = category_cycles_in(&t, Category::ChunkCompute, Cycles(0), Cycles(200));
        // Span 100..300 contributes 100; span 150..250 contributes 50.
        assert_eq!(c, Cycles(150));
        assert_eq!(
            category_cycles_in(&t, Category::Setup, Cycles(500), Cycles(600)),
            Cycles::ZERO
        );
    }

    #[test]
    fn empty_trace_analysis_is_safe() {
        let t = TraceBuilder::new("empty").finish().unwrap();
        assert_eq!(busy_fraction(&t, 1), 0.0);
        assert!(concurrency_profile(&t).is_empty());
        assert!(filter_spans(&t, |_| true).spans().is_empty());
    }
}
