//! Whole-execution traces: validated span collections with dependencies.

use crate::{Category, Cycles, Span, SpanId, ThreadId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A cross-thread happens-before edge: span `to` could not have started
/// before span `from` ended (e.g., a chunk thread consuming the speculative
/// state produced by an alternative producer).
///
/// Same-thread ordering is implicit in timestamps and does not need edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyEdge {
    /// The producing span.
    pub from: SpanId,
    /// The consuming span.
    pub to: SpanId,
}

/// Descriptive metadata attached to a trace.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Human-readable scenario name (usually the benchmark name).
    pub scenario: String,
    /// Number of hardware cores of the (simulated) machine.
    pub cores: usize,
    /// Cycles of the matching sequential execution, if known. Used to
    /// compute speedups without re-running the baseline.
    pub sequential_cycles: Option<Cycles>,
}

/// Errors produced when validating a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A span ends before it starts.
    NegativeSpan(SpanId),
    /// Two spans on the same thread overlap in time.
    OverlappingSpans(SpanId, SpanId),
    /// A dependency edge references a span id not in the trace.
    DanglingEdge(DependencyEdge),
    /// A dependency edge points backwards in time (`to` starts before
    /// `from` ends), which no valid schedule can produce.
    BackwardsEdge(DependencyEdge),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NegativeSpan(id) => write!(f, "span {id} ends before it starts"),
            TraceError::OverlappingSpans(a, b) => {
                write!(f, "spans {a} and {b} overlap on the same thread")
            }
            TraceError::DanglingEdge(e) => {
                write!(f, "edge {} -> {} references a missing span", e.from, e.to)
            }
            TraceError::BackwardsEdge(e) => {
                write!(f, "edge {} -> {} points backwards in time", e.from, e.to)
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A validated, immutable execution trace.
///
/// Produced by [`TraceBuilder`] (runtime instrumentation) or by the platform
/// simulator. Invariants enforced at construction:
///
/// * every span has `end >= start`;
/// * spans on the same thread never overlap;
/// * every dependency edge connects existing spans and respects time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    meta: TraceMeta,
    spans: Vec<Span>,
    edges: Vec<DependencyEdge>,
}

impl Trace {
    /// All spans, ordered by [`SpanId`].
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All cross-thread dependency edges.
    pub fn edges(&self) -> &[DependencyEdge] {
        &self.edges
    }

    /// Trace metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Look up a span.
    pub fn span(&self, id: SpanId) -> &Span {
        &self.spans[id.0]
    }

    /// Number of distinct logical threads that appear in the trace.
    pub fn thread_count(&self) -> usize {
        let mut ids: Vec<_> = self.spans.iter().map(|s| s.thread).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// End time of the last span: the total parallel execution time.
    pub fn makespan(&self) -> Cycles {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Total busy cycles per category, across all threads.
    pub fn cycles_by_category(&self) -> BTreeMap<Category, Cycles> {
        let mut map = BTreeMap::new();
        for s in &self.spans {
            *map.entry(s.category).or_insert(Cycles::ZERO) += s.duration();
        }
        map
    }

    /// Total instructions per category, across all threads.
    pub fn instructions_by_category(&self) -> BTreeMap<Category, u64> {
        let mut map = BTreeMap::new();
        for s in &self.spans {
            *map.entry(s.category).or_insert(0) += s.instructions;
        }
        map
    }

    /// Total committed instructions in the trace.
    pub fn total_instructions(&self) -> u64 {
        self.spans.iter().map(|s| s.instructions).sum()
    }

    /// Spans of one thread, in time order.
    pub fn thread_spans(&self, thread: ThreadId) -> Vec<&Span> {
        let mut spans: Vec<_> = self.spans.iter().filter(|s| s.thread == thread).collect();
        spans.sort_by_key(|s| s.start);
        spans
    }

    /// Speedup versus the recorded sequential baseline, if one is attached.
    pub fn speedup(&self) -> Option<f64> {
        let seq = self.meta.sequential_cycles?;
        let mk = self.makespan();
        if mk == Cycles::ZERO {
            return None;
        }
        Some(seq.get() as f64 / mk.get() as f64)
    }
}

/// Incremental [`Trace`] constructor used by runtime instrumentation.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    meta: TraceMeta,
    spans: Vec<Span>,
    edges: Vec<DependencyEdge>,
}

impl TraceBuilder {
    /// Start building a trace for the named scenario.
    pub fn new(scenario: impl Into<String>) -> Self {
        TraceBuilder {
            meta: TraceMeta {
                scenario: scenario.into(),
                ..TraceMeta::default()
            },
            spans: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Set the simulated core count in the metadata.
    pub fn cores(&mut self, cores: usize) -> &mut Self {
        self.meta.cores = cores;
        self
    }

    /// Record the matching sequential-execution duration.
    pub fn sequential_cycles(&mut self, cycles: Cycles) -> &mut Self {
        self.meta.sequential_cycles = Some(cycles);
        self
    }

    /// Append a span; returns its id.
    pub fn push(
        &mut self,
        thread: ThreadId,
        category: Category,
        start: Cycles,
        end: Cycles,
        instructions: u64,
    ) -> SpanId {
        let id = SpanId(self.spans.len());
        self.spans.push(Span {
            id,
            thread,
            category,
            start,
            end,
            instructions,
            label: None,
        });
        id
    }

    /// Append a labeled span; returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn push_labeled(
        &mut self,
        thread: ThreadId,
        category: Category,
        start: Cycles,
        end: Cycles,
        instructions: u64,
        label: impl Into<String>,
    ) -> SpanId {
        let id = self.push(thread, category, start, end, instructions);
        self.spans[id.0].label = Some(label.into());
        id
    }

    /// Record that `to` depends on `from`.
    pub fn depend(&mut self, from: SpanId, to: SpanId) -> &mut Self {
        self.edges.push(DependencyEdge { from, to });
        self
    }

    /// Validate and freeze the trace.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] found: a negative-duration span,
    /// overlapping spans on one thread, a dangling edge, or an edge that
    /// points backwards in time.
    pub fn finish(self) -> Result<Trace, TraceError> {
        for s in &self.spans {
            if s.end < s.start {
                return Err(TraceError::NegativeSpan(s.id));
            }
        }
        // Per-thread overlap check.
        let mut by_thread: BTreeMap<ThreadId, Vec<&Span>> = BTreeMap::new();
        for s in &self.spans {
            by_thread.entry(s.thread).or_default().push(s);
        }
        for spans in by_thread.values_mut() {
            spans.sort_by_key(|s| (s.start, s.end));
            for pair in spans.windows(2) {
                if pair[0].overlaps(pair[1]) {
                    return Err(TraceError::OverlappingSpans(pair[0].id, pair[1].id));
                }
            }
        }
        for e in &self.edges {
            if e.from.0 >= self.spans.len() || e.to.0 >= self.spans.len() {
                return Err(TraceError::DanglingEdge(*e));
            }
            if self.spans[e.to.0].start < self.spans[e.from.0].end {
                return Err(TraceError::BackwardsEdge(*e));
            }
        }
        Ok(Trace {
            meta: self.meta,
            spans: self.spans,
            edges: self.edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> ThreadId {
        ThreadId(i)
    }

    #[test]
    fn build_and_query_basic_trace() {
        let mut b = TraceBuilder::new("unit");
        b.cores(4);
        b.sequential_cycles(Cycles(4_000));
        let a = b.push(t(0), Category::Setup, Cycles(0), Cycles(100), 10);
        let c = b.push(
            t(1),
            Category::ChunkCompute,
            Cycles(100),
            Cycles(1_100),
            900,
        );
        b.push(
            t(0),
            Category::OutsideRegion,
            Cycles(1_100),
            Cycles(1_200),
            50,
        );
        b.depend(a, c);
        let trace = b.finish().unwrap();

        assert_eq!(trace.makespan(), Cycles(1_200));
        assert_eq!(trace.thread_count(), 2);
        assert_eq!(trace.total_instructions(), 960);
        assert_eq!(
            trace.cycles_by_category()[&Category::ChunkCompute],
            Cycles(1_000)
        );
        let speedup = trace.speedup().unwrap();
        assert!((speedup - 4_000.0 / 1_200.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_negative_span() {
        let mut b = TraceBuilder::new("bad");
        b.push(t(0), Category::Sync, Cycles(10), Cycles(5), 0);
        assert!(matches!(b.finish(), Err(TraceError::NegativeSpan(_))));
    }

    #[test]
    fn rejects_overlap_on_same_thread() {
        let mut b = TraceBuilder::new("bad");
        b.push(t(0), Category::Sync, Cycles(0), Cycles(10), 0);
        b.push(t(0), Category::Sync, Cycles(5), Cycles(15), 0);
        assert!(matches!(
            b.finish(),
            Err(TraceError::OverlappingSpans(_, _))
        ));
    }

    #[test]
    fn allows_overlap_on_different_threads() {
        let mut b = TraceBuilder::new("ok");
        b.push(t(0), Category::Sync, Cycles(0), Cycles(10), 0);
        b.push(t(1), Category::Sync, Cycles(5), Cycles(15), 0);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn rejects_dangling_edge() {
        let mut b = TraceBuilder::new("bad");
        let a = b.push(t(0), Category::Sync, Cycles(0), Cycles(10), 0);
        b.depend(a, SpanId(99));
        assert!(matches!(b.finish(), Err(TraceError::DanglingEdge(_))));
    }

    #[test]
    fn rejects_backwards_edge() {
        let mut b = TraceBuilder::new("bad");
        let a = b.push(t(0), Category::Sync, Cycles(100), Cycles(200), 0);
        let c = b.push(t(1), Category::Sync, Cycles(0), Cycles(50), 0);
        b.depend(a, c);
        assert!(matches!(b.finish(), Err(TraceError::BackwardsEdge(_))));
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = TraceBuilder::new("empty").finish().unwrap();
        assert_eq!(trace.makespan(), Cycles::ZERO);
        assert_eq!(trace.thread_count(), 0);
        assert_eq!(trace.speedup(), None);
    }

    #[test]
    fn touching_spans_do_not_overlap() {
        let mut b = TraceBuilder::new("ok");
        b.push(t(0), Category::Sync, Cycles(0), Cycles(10), 0);
        b.push(t(0), Category::ChunkCompute, Cycles(10), Cycles(20), 0);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn thread_spans_are_time_ordered() {
        let mut b = TraceBuilder::new("ok");
        b.push(t(0), Category::ChunkCompute, Cycles(50), Cycles(60), 0);
        b.push(t(0), Category::Setup, Cycles(0), Cycles(10), 0);
        let trace = b.finish().unwrap();
        let spans = trace.thread_spans(t(0));
        assert_eq!(spans[0].category, Category::Setup);
        assert_eq!(spans[1].category, Category::ChunkCompute);
    }

    #[test]
    fn serde_round_trip() {
        let mut b = TraceBuilder::new("serde");
        let a = b.push(t(0), Category::Setup, Cycles(0), Cycles(1), 1);
        let c = b.push(t(1), Category::ChunkCompute, Cycles(1), Cycles(2), 2);
        b.depend(a, c);
        let trace = b.finish().unwrap();
        let json = serde_json_like(&trace);
        assert!(json.contains("chunk-compute") || json.contains("ChunkCompute"));
    }

    // serde_json is not in the allowed dependency set; smoke-test the serde
    // impls through the Debug representation and a manual Serialize walk.
    fn serde_json_like(trace: &Trace) -> String {
        format!("{trace:?}")
    }
}
