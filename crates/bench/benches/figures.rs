//! Criterion benches: one per table/figure of the paper's evaluation.
//!
//! Each bench measures the end-to-end harness that regenerates the
//! corresponding result at a reduced input scale (the full-scale tables
//! are produced by the `--bin` targets; see EXPERIMENTS.md). Timing these
//! pipelines keeps the reproduction honest about its own cost and catches
//! performance regressions in the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use stats_bench::pipeline::Scale;

const SCALE: Scale = Scale(0.1);

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_resources", |b| {
        b.iter(|| stats_bench::table1::compute(std::hint::black_box(SCALE)))
    });
}

fn bench_fig09(c: &mut Criterion) {
    c.bench_function("fig09_speedups", |b| {
        b.iter(|| stats_bench::fig09::compute(std::hint::black_box(SCALE)))
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_loss_attribution", |b| {
        b.iter(|| stats_bench::fig10::compute(std::hint::black_box(SCALE)))
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_extra_computation", |b| {
        b.iter(|| stats_bench::fig11::compute(std::hint::black_box(SCALE)))
    });
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_stats_only_losses", |b| {
        b.iter(|| stats_bench::fig12::compute(std::hint::black_box(SCALE)))
    });
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13_stats_only_extra", |b| {
        b.iter(|| stats_bench::fig13::compute(std::hint::black_box(SCALE)))
    });
}

fn bench_fig14(c: &mut Criterion) {
    c.bench_function("fig14_extra_instructions", |b| {
        b.iter(|| stats_bench::fig14::compute(std::hint::black_box(SCALE)))
    });
}

fn bench_fig15(c: &mut Criterion) {
    c.bench_function("fig15_instruction_breakdown", |b| {
        b.iter(|| stats_bench::fig15::compute(std::hint::black_box(SCALE)))
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_uarch_counters", |b| {
        b.iter(|| stats_bench::table2::compute(std::hint::black_box(Scale(0.01))))
    });
}

fn bench_fig16(c: &mut Criterion) {
    c.bench_function("fig16_quality_distributions", |b| {
        b.iter(|| stats_bench::fig16::compute(std::hint::black_box(SCALE), 4))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_table1, bench_fig09, bench_fig10, bench_fig11,
              bench_fig12, bench_fig13, bench_fig14, bench_fig15,
              bench_table2, bench_fig16
}
criterion_main!(figures);
