//! Criterion micro-benches of the workbench's substrates: cache and
//! branch simulation, the discrete-event scheduler, the speculation
//! semantic layer, chunk planning, and the particle filter.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use stats_core::rng::StatsRng;
use stats_core::runtime::sequential::run_sequential;
use stats_core::speculation::run_speculative;
use stats_core::{plan_balanced, Config};
use stats_platform::{CostModel, Machine, TaskGraph, Topology};
use stats_trace::{Category, Cycles, ThreadId};
use stats_uarch::{BimodalPredictor, BranchPredictor, Cache, CacheConfig};
use stats_workloads::particle::ParticleCloud;
use stats_workloads::swaptions::Swaptions;
use stats_workloads::Workload;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("uarch");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("cache_access_4k", |b| {
        let mut cache = Cache::new(CacheConfig::haswell_l1d());
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..4096 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
                cache.access(addr % (1 << 22));
            }
        })
    });
    g.bench_function("bimodal_predict_4k", |b| {
        let mut p = BimodalPredictor::new(4096);
        let mut x = 1u64;
        b.iter(|| {
            for _ in 0..4096 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                p.predict_and_train(x & 0xFFFF, x & 0x100 != 0);
            }
        })
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    // A fork-join heavy graph: 1k tasks over 64 logical threads.
    let mut graph = TaskGraph::new("bench");
    let mut prev = None;
    for i in 0..1_000usize {
        let t = graph.task(
            ThreadId(i % 64),
            Category::ChunkCompute,
            Cycles(100 + (i as u64 % 37)),
        );
        if let Some(p) = prev {
            if i % 3 == 0 {
                graph.depend(p, t);
            }
        }
        prev = Some(t);
    }
    let machine = Machine::new(Topology::paper_machine(), CostModel::default());
    c.bench_function("scheduler_1k_tasks", |b| {
        b.iter(|| machine.execute(std::hint::black_box(&graph)).unwrap())
    });
}

fn bench_planner(c: &mut Criterion) {
    c.bench_function("plan_balanced_1m", |b| {
        b.iter(|| plan_balanced(std::hint::black_box(1_000_000), 280))
    });
}

fn bench_particle(c: &mut Criterion) {
    c.bench_function("particle_step_128x16", |b| {
        let mut cloud = ParticleCloud::fresh(128, 16, 1);
        let obs = vec![0.1; 16];
        let mut rng = StatsRng::from_seed_value(7);
        b.iter(|| cloud.step(&obs, 0.06, 0.08, 3, &mut rng))
    });
}

fn bench_speculation(c: &mut Criterion) {
    let w = Swaptions::paper();
    let inputs = w.generate_inputs(280, 1);
    c.bench_function("speculation_swaptions_280", |b| {
        b.iter(|| run_speculative(&w, &inputs, Config::stats_only(14, 4, 1), 42))
    });
    c.bench_function("sequential_swaptions_280", |b| {
        b.iter(|| run_sequential(&w, &inputs, 42))
    });
}

criterion_group! {
    name = microcosts;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_cache, bench_scheduler, bench_planner, bench_particle, bench_speculation
}
criterion_main!(microcosts);
