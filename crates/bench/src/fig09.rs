//! Fig. 9: speedups of the three TLP configurations on 14 and 28 cores.
//!
//! "Original" is the out-of-the-box parallel benchmark; "Seq. STATS" uses
//! only the TLP extracted from state dependences; "Par. STATS" combines
//! both sources.

use crate::pipeline::{geomean, run_benchmark, tuned_config, Machines, Scale, FIGURE_SEED};
use crate::render::{f2, TextTable};
use serde::{Deserialize, Serialize};
use stats_core::Config;
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// Speedups for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Original TLP on 14 cores.
    pub original_14: f64,
    /// Original TLP on 28 cores.
    pub original_28: f64,
    /// STATS TLP alone on 14 cores.
    pub seq_stats_14: f64,
    /// STATS TLP alone on 28 cores.
    pub seq_stats_28: f64,
    /// Combined TLP on 14 cores.
    pub par_stats_14: f64,
    /// Combined TLP on 28 cores.
    pub par_stats_28: f64,
}

struct Visit {
    scale: Scale,
}

impl WorkloadVisitor for Visit {
    type Output = Row;
    fn visit<W: Workload>(self, w: &W) -> Row {
        let machines = Machines::paper();
        let scale = self.scale;
        let run = |machine: &stats_platform::Machine, cfg: Config| {
            run_benchmark(w, machine, cfg, scale, FIGURE_SEED).speedup()
        };
        let tuned14 = tuned_config(w, 14, scale);
        let tuned28 = tuned_config(w, 28, scale);
        let seq14 = Config {
            combine_inner_tlp: false,
            ..tuned14
        };
        let seq28 = Config {
            combine_inner_tlp: false,
            ..tuned28
        };
        let par14 = Config {
            combine_inner_tlp: true,
            ..tuned14
        };
        let par28 = Config {
            combine_inner_tlp: true,
            ..tuned28
        };
        Row {
            benchmark: w.name().to_string(),
            original_14: run(&machines.cores14, Config::original_only()),
            original_28: run(&machines.cores28, Config::original_only()),
            seq_stats_14: run(&machines.cores14, seq14),
            seq_stats_28: run(&machines.cores28, seq28),
            par_stats_14: run(&machines.cores14, par14),
            par_stats_28: run(&machines.cores28, par28),
        }
    }
}

/// Compute all rows plus the geomean row (last).
pub fn compute(scale: Scale) -> Vec<Row> {
    let mut rows: Vec<Row> = BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, Visit { scale }))
        .collect();
    let gm = |f: fn(&Row) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    rows.push(Row {
        benchmark: "geomean".to_string(),
        original_14: gm(|r| r.original_14),
        original_28: gm(|r| r.original_28),
        seq_stats_14: gm(|r| r.seq_stats_14),
        seq_stats_28: gm(|r| r.seq_stats_28),
        par_stats_14: gm(|r| r.par_stats_14),
        par_stats_28: gm(|r| r.par_stats_28),
    });
    rows
}

/// Render the figure as a table of speedups.
pub fn render(scale: Scale) -> String {
    let mut t = TextTable::new(vec![
        "Benchmark",
        "Original 14",
        "Original 28",
        "Seq.STATS 14",
        "Seq.STATS 28",
        "Par.STATS 14",
        "Par.STATS 28",
    ]);
    for r in compute(scale) {
        t.row(vec![
            r.benchmark,
            f2(r.original_14),
            f2(r.original_28),
            f2(r.seq_stats_14),
            f2(r.seq_stats_28),
            f2(r.par_stats_14),
            f2(r.par_stats_28),
        ]);
    }
    format!(
        "Fig. 9: speedup over sequential execution per TLP source\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shape_holds_at_reduced_scale() {
        let rows = compute(Scale(0.25));
        let gm = rows.last().unwrap();
        // The paper's ordering: Original < Seq.STATS < Par.STATS at 28
        // cores, and original TLP saturates (tiny gain from 14 -> 28).
        assert!(
            gm.seq_stats_28 > gm.original_28,
            "STATS should beat original: {} vs {}",
            gm.seq_stats_28,
            gm.original_28
        );
        assert!(
            gm.par_stats_28 >= gm.seq_stats_28 * 0.95,
            "combined should be at least STATS-only: {} vs {}",
            gm.par_stats_28,
            gm.seq_stats_28
        );
        assert!(
            gm.original_28 - gm.original_14 < 1.0,
            "original TLP should saturate: {} -> {}",
            gm.original_14,
            gm.original_28
        );
        // STATS TLP keeps scaling with cores.
        assert!(gm.seq_stats_28 > gm.seq_stats_14);
    }

    #[test]
    fn sublinear_but_substantial() {
        let rows = compute(Scale(0.25));
        let gm = rows.last().unwrap();
        assert!(gm.par_stats_28 > 4.0, "par stats 28: {}", gm.par_stats_28);
        assert!(gm.par_stats_28 < 28.0);
    }
}
