//! # stats-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§V), regenerating each from the workbench's simulated
//! runtime. Binaries under `src/bin/` print the rows; the library entry
//! points are reused by integration tests at reduced scale.
//!
//! | module | regenerates |
//! |---|---|
//! | [`table1`] | Table I — threads/states/state sizes per benchmark |
//! | [`fig09`]  | Fig. 9 — speedups of Original / Seq. STATS / Par. STATS |
//! | [`fig10`]  | Fig. 10 — % speedup lost per overhead source (combined TLP) |
//! | [`fig11`]  | Fig. 11 — extra-computation breakdown (combined TLP) |
//! | [`fig12`]  | Fig. 12 — % speedup lost, STATS TLP only, 14/28 cores |
//! | [`fig13`]  | Fig. 13 — extra-computation breakdown, STATS TLP only |
//! | [`fig14`]  | Fig. 14 — extra instructions vs. baseline |
//! | [`fig15`]  | Fig. 15 — extra-instruction breakdown |
//! | [`table2`] | Table II — cache misses and branch mispredictions |
//! | [`fig16`]  | Fig. 16 — output-quality distributions |
//!
//! [`ablations`] adds the design-choice sweeps DESIGN.md calls out
//! (sync-cost elasticity, state-copy acceleration, k/m/chunk trade-offs);
//! [`scaling`] sweeps input size and core count (§I's headline claims);
//! [`chaos`] differentially tests the fault-injection plane (recovery
//! must be observationally invisible — DESIGN.md §15).
//! The measurement machinery lives in [`attribution`]: the post-mortem
//! what-if analysis of §V-B ("we emulate the parallel execution removing
//! only the part of the overhead targeted that is in the critical path",
//! after \[26\]).

pub mod ablations;
pub mod attribution;
pub mod chaos;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod native_attribution;
pub mod pipeline;
pub mod render;
pub mod report;
pub mod scaling;
pub mod svg;
pub mod table1;
pub mod table2;
