//! Regenerate every table and figure of the paper's evaluation section.
//! Scale via STATS_SCALE (default 1.0 = native); Fig. 16 runs via first arg
//! (default 200).
use stats_bench::pipeline::Scale;

fn main() {
    let scale = Scale::from_env();
    let runs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    println!("{}", stats_bench::report::full_report(scale, runs));
}
