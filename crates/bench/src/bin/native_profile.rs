//! Causal-profiler overhead and attribution sweep over the native
//! pooled runtime.
//!
//! For every paper benchmark this harness:
//!
//! * measures the wall-clock overhead of span capture — min-over-`--reps`
//!   time of a profiled run vs. a counters-only run on the same pool;
//! * checks that the counters-only telemetry path is byte-identical
//!   whether or not the profiler rides along (profiling is strictly
//!   additive);
//! * profiles `--seeds` runs, attributes the speedup loss to the six
//!   overhead groups with mean ± CI, and compares the attribution shape
//!   against the simulator's virtual-time attribution;
//!
//! and emits `BENCH_profile.json`. With `--gate`, the process exits
//! non-zero unless every benchmark kept decision/output parity and
//! counter parity, every shape comparison agreed, and the *median*
//! capture overhead across benchmarks stayed under `--threshold`
//! percent. The median (not the max) is gated because min-over-reps on
//! a time-shared host still carries scheduler noise that can push any
//! single benchmark's delta around; the median is the robust estimate
//! of the capture cost itself. The host's parallelism is recorded in
//! the artifact so readers can judge the numbers.
//!
//! Usage: `native_profile [--scale F] [--reps N] [--workers N]
//! [--seeds K] [--threshold PCT] [--out PATH] [--gate]` — exits 0 on
//! success, 1 on gate failure, 2 on bad arguments.

use stats_bench::native_attribution::{
    compare_shapes, profile_workload, profiling_overhead_pct, simulated_reference, ProfileReport,
    ShapeComparison,
};
use stats_bench::pipeline::{tuned_config, Scale, FIGURE_SEED};
use stats_core::runtime::pool::{default_workers, WorkerPool};
use stats_core::runtime::threaded::run_threaded_on;
use stats_telemetry::json::{validate, JsonObject};
use stats_telemetry::{Counter, Profiler, TelemetrySink};
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

#[derive(Clone)]
struct Args {
    scale: Scale,
    reps: usize,
    workers: usize,
    seeds: usize,
    threshold: f64,
    out: String,
    gate: bool,
}

/// One benchmark's profile sweep result.
struct BenchRow {
    report: ProfileReport,
    shape: ShapeComparison,
    overhead_pct: f64,
    counters_unchanged: bool,
}

struct Sweep<'a> {
    args: &'a Args,
}

impl WorkloadVisitor for Sweep<'_> {
    type Output = BenchRow;
    fn visit<W: Workload>(self, w: &W) -> BenchRow {
        let args = self.args;
        let pool = WorkerPool::new(args.workers);
        let seeds: Vec<u64> = (0..args.seeds as u64).map(|i| FIGURE_SEED + i).collect();

        let overhead_pct = profiling_overhead_pct(w, &pool, args.scale, FIGURE_SEED, args.reps);
        let report = profile_workload(w, &pool, args.scale, &seeds);
        let (sim, sim_whatifs, sim_base) =
            simulated_reference(w, args.workers, args.scale, FIGURE_SEED);
        let shape = compare_shapes(&report, &sim, &sim_whatifs, sim_base);

        // The counters-only path must not notice the profiler: every
        // deterministic protocol counter (chunk fates, reruns, replicas,
        // copies, comparisons) must total the same with and without span
        // capture riding along. BusyTime/IdleTime are wall-clock and
        // vary run to run regardless, so they are not compared.
        let n = args.scale.inputs_for(w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let cfg = tuned_config(w, 28, args.scale);
        let bare = TelemetrySink::new(cfg.chunks.max(1));
        run_threaded_on(&pool, w, &inputs, cfg, FIGURE_SEED, Some(&bare));
        let profiled =
            TelemetrySink::new(cfg.chunks.max(1)).with_profiler(Profiler::new(args.workers));
        run_threaded_on(&pool, w, &inputs, cfg, FIGURE_SEED, Some(&profiled));
        let (a, b) = (bare.snapshot(), profiled.snapshot());
        let counters_unchanged = [
            Counter::ChunksStarted,
            Counter::ChunksCommitted,
            Counter::ChunksAborted,
            Counter::Reruns,
            Counter::ReplicasValidated,
            Counter::StateCopies,
            Counter::StateComparisons,
        ]
        .iter()
        .all(|&c| a.get(c) == b.get(c));

        BenchRow {
            report,
            shape,
            overhead_pct,
            counters_unchanged,
        }
    }
}

/// The gate verdict across benchmarks.
struct Gate {
    all_parity: bool,
    all_counters_unchanged: bool,
    all_shapes_agree: bool,
    median_overhead_pct: f64,
    threshold_pct: f64,
}

impl Gate {
    fn evaluate(rows: &[BenchRow], threshold_pct: f64) -> Gate {
        let mut overheads: Vec<f64> = rows.iter().map(|r| r.overhead_pct).collect();
        overheads.sort_by(f64::total_cmp);
        let median = if overheads.is_empty() {
            f64::NAN
        } else {
            overheads[overheads.len() / 2]
        };
        Gate {
            all_parity: rows.iter().all(|r| r.report.parity),
            all_counters_unchanged: rows.iter().all(|r| r.counters_unchanged),
            all_shapes_agree: rows.iter().all(|r| r.shape.agrees()),
            median_overhead_pct: median,
            threshold_pct,
        }
    }

    fn pass(&self) -> bool {
        self.all_parity
            && self.all_counters_unchanged
            && self.all_shapes_agree
            && self.median_overhead_pct < self.threshold_pct
    }
}

fn render_json(args: &Args, rows: &[BenchRow], gate: &Gate) -> String {
    let mut benches = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            benches.push(',');
        }
        let shares = |groups: &[(stats_telemetry::WallLoss, f64)]| {
            let mut o = JsonObject::new();
            for (l, v) in groups {
                o.f64(l.name(), *v);
            }
            o.finish()
        };
        let native = shares(&row.shape.native);
        let simulated = shares(&row.shape.simulated);
        let mut shape = JsonObject::new();
        shape
            .raw("native_shares", &native)
            .raw("simulated_shares", &simulated)
            .u64("inversions", row.shape.inversions.len() as u64)
            .bool("whatif_directions_agree", row.shape.whatif_directions_agree)
            .bool("agrees", row.shape.agrees());
        let mut o = JsonObject::new();
        o.raw("profile", &row.report.to_json())
            .f64("overhead_pct", row.overhead_pct)
            .bool("counters_unchanged", row.counters_unchanged)
            .raw("shape", &shape.finish());
        benches.push_str(&o.finish());
    }
    benches.push(']');

    let mut g = JsonObject::new();
    g.bool("enforced", args.gate)
        .bool("all_parity", gate.all_parity)
        .bool("all_counters_unchanged", gate.all_counters_unchanged)
        .bool("all_shapes_agree", gate.all_shapes_agree)
        .f64("median_overhead_pct", gate.median_overhead_pct)
        .f64("threshold_pct", gate.threshold_pct)
        .bool("pass", gate.pass());

    let mut o = JsonObject::new();
    o.str("bench", "native_profile")
        .u64("seed", FIGURE_SEED)
        .f64("scale", args.scale.0)
        .u64("reps", args.reps as u64)
        .u64("seeds", args.seeds as u64)
        .u64("workers", args.workers as u64)
        .u64("host_parallelism", default_workers() as u64)
        .raw("benchmarks", &benches)
        .raw("gate", &g.finish());
    format!("{}\n", o.finish())
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale(0.1),
        reps: 3,
        workers: 4,
        seeds: 3,
        threshold: 10.0,
        out: "BENCH_profile.json".to_string(),
        gate: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = "usage: native_profile [--scale F] [--reps N] [--workers N] [--seeds K] \
                 [--threshold PCT] [--out PATH] [--gate]";
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: {} requires a value\n{usage}", argv[i]);
                std::process::exit(2);
            })
        };
        let parse_usize = |i: usize, what: &str| -> usize {
            value(i).parse().unwrap_or_else(|_| {
                eprintln!("error: {what} expects an integer\n{usage}");
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--scale" => {
                let v: f64 = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --scale expects a number\n{usage}");
                    std::process::exit(2);
                });
                args.scale = Scale(v);
                i += 2;
            }
            "--reps" => {
                args.reps = parse_usize(i, "--reps");
                i += 2;
            }
            "--workers" => {
                args.workers = parse_usize(i, "--workers");
                i += 2;
            }
            "--seeds" => {
                args.seeds = parse_usize(i, "--seeds");
                i += 2;
            }
            "--threshold" => {
                let v: f64 = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --threshold expects a number\n{usage}");
                    std::process::exit(2);
                });
                args.threshold = v;
                i += 2;
            }
            "--out" => {
                args.out = value(i);
                i += 2;
            }
            "--gate" => {
                args.gate = true;
                i += 1;
            }
            other => {
                eprintln!("error: unknown option {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if !(args.scale.0 > 0.0 && args.scale.0 <= 1.0)
        || args.reps == 0
        || args.workers == 0
        || args.seeds == 0
        || args.threshold <= 0.0
        || args.threshold.is_nan()
    {
        eprintln!(
            "error: --scale in (0,1]; --reps, --workers, --seeds, --threshold positive\n{usage}"
        );
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "native_profile: scale {}, {} reps, {} seeds, pool x{}, host parallelism {}",
        args.scale.0,
        args.reps,
        args.seeds,
        args.workers,
        default_workers(),
    );

    let rows: Vec<BenchRow> =
        BENCHMARK_NAMES
            .iter()
            .map(|name| {
                let row = dispatch(name, Sweep { args: &args });
                println!(
                "{:<18} overhead {:>6.2}% | projected {:.2}x ± {:.2} | dominant {} | shape {}{}{}",
                row.report.benchmark,
                row.overhead_pct,
                row.report.projected.mean,
                row.report.projected.half_width,
                row.report
                    .runs
                    .first()
                    .map_or("n/a", |r| r.dominant().name()),
                if row.shape.agrees() { "ok" } else { "DISAGREES" },
                if row.report.parity { "" } else { ", PARITY BROKEN" },
                if row.counters_unchanged {
                    ""
                } else {
                    ", COUNTERS CHANGED"
                },
            );
                row
            })
            .collect();

    let gate = Gate::evaluate(&rows, args.threshold);
    let json = render_json(&args, &rows, &gate);
    validate(json.trim()).unwrap_or_else(|e| panic!("generated invalid JSON: {e}"));
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    println!(
        "\nwrote {} | median overhead {:.2}% (threshold {:.0}%) | parity {} | counters {} | shapes {}",
        args.out,
        gate.median_overhead_pct,
        gate.threshold_pct,
        if gate.all_parity { "ok" } else { "BROKEN" },
        if gate.all_counters_unchanged {
            "ok"
        } else {
            "CHANGED"
        },
        if gate.all_shapes_agree { "ok" } else { "DISAGREE" },
    );

    if args.gate {
        if gate.pass() {
            println!("OK: span capture stays under the overhead budget and changes nothing");
        } else {
            println!("FAIL: profiling overhead or parity gate failed");
            std::process::exit(1);
        }
    }
}
