//! Tuning scaling sweep: pool-sharded batched design-space exploration
//! vs. the sequential autotuner loop on real hardware.
//!
//! Runs the Fig. 3 autotuning loop (Ensemble strategy, simulated-makespan
//! objective) for all six paper benchmarks, once sequentially
//! (`Tuner::tune`) and once per pool width (`Tuner::tune_parallel_on`),
//! and emits `BENCH_tune.json`. Timing uses the minimum over `--reps`
//! repetitions. Because the batched ask/tell core tells results back in
//! proposal order, every parallel run must produce a `TuningReport`
//! bit-identical to the sequential one — each row records that check as
//! `report_matches_sequential`.
//!
//! With `--gate`, rows at pool width ≥ 4 are *eligible* when the budget
//! is ≥ 4× the proposal batch (enough rounds for sharding to matter).
//! On a host with ≥ 4 cores the gate fails unless:
//!
//! * every row's report matches the sequential one,
//! * at least one eligible row is strictly faster than sequential,
//! * the geometric-mean ratio parallel/sequential over eligible rows is
//!   ≤ 1.0 (no regression).
//!
//! On a narrower host (CI shells, containers pinned to one core) real
//! width-4 speedup is physically impossible, so the gate degrades to
//! parity plus bounded sharding overhead (geomean ≤ 1.15) and says so —
//! honest numbers beat fabricated ones.
//!
//! Usage: `tune_scaling [--scale F] [--budget N] [--reps N]
//! [--workers 1,2,4,8] [--out PATH] [--gate]` — exits 0 on success, 1 on
//! gate failure, 2 on bad arguments.

use stats_autotuner::{Strategy, Tuner, TuningReport, DEFAULT_BATCH};
use stats_bench::pipeline::{Scale, FIGURE_SEED};
use stats_core::runtime::pool::{default_workers, WorkerPool};
use stats_core::runtime::simulated::SimulatedRuntime;
use stats_core::DesignSpace;
use stats_telemetry::json::{validate, JsonObject};
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};
// stats-analyzer: allow(ND002): this harness measures real wall-clock scaling
use std::time::Instant;

/// A pool width is eligible for the speedup gate when the budget buys at
/// least this many full proposal batches (sharding needs rounds to win).
const MIN_BATCHES_FOR_GATE: usize = 4;

/// Width threshold for the speedup side of the gate.
const GATE_WIDTH: usize = 4;

/// Overhead bound for the degraded (narrow-host) gate: sharding batches
/// over a pool the host cannot actually parallelize must stay cheap.
const NARROW_HOST_OVERHEAD: f64 = 1.15;

#[derive(Clone)]
struct Args {
    scale: Scale,
    budget: usize,
    reps: usize,
    workers: Vec<usize>,
    out: String,
    gate: bool,
}

/// One (benchmark, pool-width) measurement.
struct WidthRow {
    workers: usize,
    parallel_ms: f64,
    eligible: bool,
    report_matches_sequential: bool,
}

/// One benchmark's sweep: the sequential baseline plus a row per width.
struct BenchRow {
    benchmark: &'static str,
    inputs: usize,
    explored: usize,
    sequential_ms: f64,
    widths: Vec<WidthRow>,
}

fn min_ms<F: FnMut() -> TuningReport>(reps: usize, mut run: F) -> (f64, TuningReport) {
    let mut best = f64::INFINITY;
    let mut last = run(); // warm-up: caches, allocator, lazy pool state
    for _ in 0..reps {
        // stats-analyzer: allow(ND002): scaling measurement harness
        let t0 = Instant::now();
        last = run();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, last)
}

/// Two reports are identical when every evaluation (configuration and
/// bit-exact cost, in order) and the chosen best agree.
fn reports_match(a: &TuningReport, b: &TuningReport) -> bool {
    a.best == b.best
        && a.best_cost.to_bits() == b.best_cost.to_bits()
        && a.evaluations.len() == b.evaluations.len()
        && a.evaluations
            .iter()
            .zip(&b.evaluations)
            .all(|((ca, va), (cb, vb))| ca == cb && va.to_bits() == vb.to_bits())
}

struct Sweep<'a> {
    args: &'a Args,
}

impl WorkloadVisitor for Sweep<'_> {
    type Output = BenchRow;
    fn visit<W: Workload>(self, w: &W) -> BenchRow {
        let n = self.args.scale.inputs_for(w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let rt = SimulatedRuntime::paper_machine();
        let space = DesignSpace::for_inputs(n, 28, w.inner_parallelism().is_parallel());
        let tuner = Tuner::new(space, self.args.budget, FIGURE_SEED);
        let objective = |cfg| {
            rt.run(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                FIGURE_SEED,
            )
            .expect("valid config")
            .execution
            .makespan
            .get() as f64
        };

        let (sequential_ms, baseline) =
            min_ms(self.args.reps, || tuner.tune(Strategy::Ensemble, objective));

        let widths = self
            .args
            .workers
            .iter()
            .map(|&workers| {
                let pool = WorkerPool::new(workers);
                let (parallel_ms, report) = min_ms(self.args.reps, || {
                    tuner.tune_parallel_on(&pool, Strategy::Ensemble, objective, None)
                });
                WidthRow {
                    workers,
                    parallel_ms,
                    eligible: workers >= GATE_WIDTH
                        && self.args.budget >= MIN_BATCHES_FOR_GATE * tuner.batch(),
                    report_matches_sequential: reports_match(&report, &baseline),
                }
            })
            .collect();

        BenchRow {
            benchmark: w.name(),
            inputs: n,
            explored: baseline.configurations_explored(),
            sequential_ms,
            widths,
        }
    }
}

/// The gate verdict over all rows.
struct Gate {
    strict: bool,
    eligible_rows: usize,
    any_parallel_win: bool,
    all_match: bool,
    geomean_ratio: f64,
}

impl Gate {
    fn evaluate(rows: &[BenchRow], host_parallelism: usize) -> Gate {
        let mut log_sum = 0.0f64;
        let mut count = 0usize;
        let mut any_win = false;
        let mut all_match = true;
        for row in rows {
            for wr in &row.widths {
                all_match &= wr.report_matches_sequential;
                if !wr.eligible {
                    continue;
                }
                count += 1;
                any_win |= wr.parallel_ms < row.sequential_ms;
                log_sum += (wr.parallel_ms / row.sequential_ms).ln();
            }
        }
        Gate {
            strict: host_parallelism >= GATE_WIDTH,
            eligible_rows: count,
            any_parallel_win: any_win,
            all_match,
            geomean_ratio: if count > 0 {
                (log_sum / count as f64).exp()
            } else {
                f64::NAN
            },
        }
    }

    fn pass(&self) -> bool {
        if !(self.all_match && self.eligible_rows > 0) {
            return false;
        }
        if self.strict {
            self.any_parallel_win && self.geomean_ratio <= 1.0
        } else {
            self.geomean_ratio <= NARROW_HOST_OVERHEAD
        }
    }
}

fn render_json(args: &Args, rows: &[BenchRow], gate: &Gate) -> String {
    let mut benches = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            benches.push(',');
        }
        let mut widths = String::from("[");
        for (j, wr) in row.widths.iter().enumerate() {
            if j > 0 {
                widths.push(',');
            }
            let mut o = JsonObject::new();
            o.u64("workers", wr.workers as u64)
                .f64("parallel_ms", wr.parallel_ms)
                .f64("speedup_vs_sequential", row.sequential_ms / wr.parallel_ms)
                .bool("eligible", wr.eligible)
                .bool("report_matches_sequential", wr.report_matches_sequential);
            widths.push_str(&o.finish());
        }
        widths.push(']');
        let mut o = JsonObject::new();
        o.str("benchmark", row.benchmark)
            .u64("inputs", row.inputs as u64)
            .u64("explored", row.explored as u64)
            .f64("sequential_ms", row.sequential_ms)
            .raw("workers", &widths);
        benches.push_str(&o.finish());
    }
    benches.push(']');

    let mut g = JsonObject::new();
    g.bool("enforced", args.gate)
        .str("mode", if gate.strict { "strict" } else { "parity-only" })
        .u64("eligible_rows", gate.eligible_rows as u64)
        .bool("any_parallel_win", gate.any_parallel_win)
        .bool("all_match", gate.all_match)
        .f64("geomean_parallel_over_sequential", gate.geomean_ratio)
        .bool("pass", gate.pass());

    let mut o = JsonObject::new();
    o.str("bench", "tune_scaling")
        .u64("seed", FIGURE_SEED)
        .f64("scale", args.scale.0)
        .u64("budget", args.budget as u64)
        .u64("batch", DEFAULT_BATCH as u64)
        .u64("reps", args.reps as u64)
        .u64("host_parallelism", default_workers() as u64)
        .raw("benchmarks", &benches)
        .raw("gate", &g.finish());
    format!("{}\n", o.finish())
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale(0.1),
        budget: 80,
        reps: 1,
        workers: vec![1, 2, 4, 8],
        out: "BENCH_tune.json".to_string(),
        gate: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = "usage: tune_scaling [--scale F] [--budget N] [--reps N] \
                 [--workers 1,2,4,8] [--out PATH] [--gate]";
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: {} requires a value\n{usage}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--scale" => {
                let v: f64 = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --scale expects a number\n{usage}");
                    std::process::exit(2);
                });
                args.scale = Scale(v);
                i += 2;
            }
            "--budget" => {
                args.budget = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --budget expects an integer\n{usage}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--reps" => {
                args.reps = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --reps expects an integer\n{usage}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--workers" => {
                args.workers = value(i)
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("error: --workers expects a comma list like 1,2,4\n{usage}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                i += 2;
            }
            "--out" => {
                args.out = value(i);
                i += 2;
            }
            "--gate" => {
                args.gate = true;
                i += 1;
            }
            other => {
                eprintln!("error: unknown option {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if !(args.scale.0 > 0.0 && args.scale.0 <= 1.0)
        || args.budget == 0
        || args.reps == 0
        || args.workers.is_empty()
        || args.workers.contains(&0)
    {
        eprintln!("error: --scale in (0,1], --budget, --reps and all --workers positive\n{usage}");
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "tune_scaling: scale {}, budget {}, batch {}, {} reps, pool widths {:?}, host parallelism {}",
        args.scale.0,
        args.budget,
        DEFAULT_BATCH,
        args.reps,
        args.workers,
        default_workers(),
    );

    let rows: Vec<BenchRow> = BENCHMARK_NAMES
        .iter()
        .map(|name| {
            let row = dispatch(name, Sweep { args: &args });
            println!(
                "{:<18} {:>6} inputs {:>3} evals | sequential {:>9.2} ms",
                row.benchmark, row.inputs, row.explored, row.sequential_ms
            );
            for wr in &row.widths {
                println!(
                    "  pool x{:<3} {:>9.2} ms  ({:.2}x vs sequential{}{})",
                    wr.workers,
                    wr.parallel_ms,
                    row.sequential_ms / wr.parallel_ms,
                    if wr.eligible { ", eligible" } else { "" },
                    if wr.report_matches_sequential {
                        ""
                    } else {
                        ", REPORT MISMATCH"
                    },
                );
            }
            row
        })
        .collect();

    let gate = Gate::evaluate(&rows, default_workers());
    let json = render_json(&args, &rows, &gate);
    validate(json.trim()).unwrap_or_else(|e| panic!("generated invalid JSON: {e}"));
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    println!(
        "\nwrote {} | eligible rows: {} | parallel/sequential geomean: {:.3} | parity: {} | gate mode: {}",
        args.out,
        gate.eligible_rows,
        gate.geomean_ratio,
        if gate.all_match { "ok" } else { "MISMATCH" },
        if gate.strict { "strict" } else { "parity-only" },
    );

    if args.gate {
        if gate.pass() {
            println!("OK: parallel tuning holds parity and scaling on this host");
        } else {
            println!("FAIL: parallel tuning regressed against sequential (or parity broke)");
            std::process::exit(1);
        }
    }
}
