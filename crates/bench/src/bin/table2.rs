//! Regenerate the paper's table2. Scale via STATS_SCALE (default 1.0).
use stats_bench::pipeline::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", stats_bench::table2::render(scale));
    println!("{}", stats_bench::table2::render_cpi(scale));
}
