//! Regenerate the paper's fig10. Scale via STATS_SCALE (default 1.0).
use stats_bench::pipeline::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", stats_bench::fig10::render(scale));
    let svg = stats_bench::svg::losses_svg(
        "Fig. 10: % of ideal speedup lost per overhead source (Par. STATS, 28 cores)",
        &stats_bench::fig10::compute(scale),
    );
    if let Some(path) = stats_bench::svg::write_if_configured("fig10", &svg) {
        println!("(svg written to {})", path.display());
    }
}
