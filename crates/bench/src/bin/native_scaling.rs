//! Native scaling sweep: pooled executor vs. the thread-per-chunk
//! baseline on real hardware.
//!
//! Runs all six paper benchmarks at several pool widths, timing both the
//! pooled threaded runtime (`run_threaded_on`) and the pre-pool
//! thread-per-chunk lowering (`run_threaded_per_chunk`), and emits
//! `BENCH_native.json`. Timing uses the minimum over `--reps`
//! repetitions — the standard low-noise estimator for a deterministic
//! workload under scheduler jitter.
//!
//! Semantics are checked alongside performance: for every benchmark the
//! pooled run at each width must reproduce the baseline's commit/abort
//! decisions and outputs exactly (outputs are compared through length and
//! the benchmark's scalar quality metric here; the test suite asserts
//! element-wise equality with concrete types).
//!
//! With `--gate`, the process exits non-zero unless, over the
//! oversubscribed rows (chunks ≥ 4× workers):
//!
//! * every row's decisions and outputs match the baseline,
//! * at least one row has the pool strictly faster than thread-per-chunk,
//! * the geometric-mean ratio pooled/per-chunk is ≤ 1.0 (no regression).
//!
//! Usage: `native_scaling [--scale F] [--reps N] [--workers 1,2,4,8]
//! [--out PATH] [--gate]` — exits 0 on success, 1 on gate failure, 2 on
//! bad arguments.

use stats_bench::pipeline::{tuned_config, Scale, FIGURE_SEED};
use stats_core::runtime::pool::{default_workers, WorkerPool};
use stats_core::runtime::threaded::{run_threaded_on, run_threaded_per_chunk, ThreadedRun};
use stats_telemetry::json::{validate, JsonObject};
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};
// stats-analyzer: allow(ND002): this harness measures real wall-clock scaling
use std::time::Instant;

/// A chunk count is "oversubscribed" for a pool when it exceeds the pool
/// width by at least this factor (the regime the pool exists for).
const OVERSUBSCRIPTION_FACTOR: usize = 4;

#[derive(Clone)]
struct Args {
    scale: Scale,
    reps: usize,
    workers: Vec<usize>,
    out: String,
    gate: bool,
}

/// One (benchmark, pool-width) measurement.
struct WidthRow {
    workers: usize,
    pooled_ms: f64,
    oversubscribed: bool,
    decisions_match: bool,
    outputs_match: bool,
}

/// One benchmark's sweep: the shared thread-per-chunk baseline plus a row
/// per pool width.
struct BenchRow {
    benchmark: &'static str,
    inputs: usize,
    chunks: usize,
    per_chunk_ms: f64,
    widths: Vec<WidthRow>,
}

/// `f64` equality by bit pattern: the outputs are produced by identical
/// update sequences, so any legitimate match is exact.
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn min_ms<F: FnMut() -> ThreadedRun<O>, O>(reps: usize, mut run: F) -> (f64, ThreadedRun<O>) {
    let mut best = f64::INFINITY;
    let mut last = run(); // warm-up: caches, allocator, thread-creation paths
    for _ in 0..reps {
        // stats-analyzer: allow(ND002): scaling measurement harness
        let t0 = Instant::now();
        last = run();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, last)
}

struct Sweep<'a> {
    args: &'a Args,
}

impl WorkloadVisitor for Sweep<'_> {
    type Output = BenchRow;
    fn visit<W: Workload>(self, w: &W) -> BenchRow {
        let n = self.args.scale.inputs_for(w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let cfg = tuned_config(w, 28, self.args.scale); // pre-clamped to n

        let (per_chunk_ms, baseline) = min_ms(self.args.reps, || {
            run_threaded_per_chunk(w, &inputs, cfg, FIGURE_SEED)
        });
        let baseline_quality = w.quality(&inputs, &baseline.outputs);

        let widths = self
            .args
            .workers
            .iter()
            .map(|&workers| {
                let pool = WorkerPool::new(workers);
                let (pooled_ms, pooled) = min_ms(self.args.reps, || {
                    run_threaded_on(&pool, w, &inputs, cfg, FIGURE_SEED, None)
                });
                WidthRow {
                    workers,
                    pooled_ms,
                    oversubscribed: cfg.chunks >= OVERSUBSCRIPTION_FACTOR * workers,
                    decisions_match: pooled.decisions == baseline.decisions,
                    outputs_match: pooled.outputs.len() == baseline.outputs.len()
                        && bits_eq(w.quality(&inputs, &pooled.outputs), baseline_quality),
                }
            })
            .collect();

        BenchRow {
            benchmark: w.name(),
            inputs: n,
            chunks: cfg.chunks,
            per_chunk_ms,
            widths,
        }
    }
}

/// The gate verdict over all oversubscribed rows.
struct Gate {
    oversubscribed_rows: usize,
    any_pooled_win: bool,
    all_match: bool,
    geomean_ratio: f64,
}

impl Gate {
    fn evaluate(rows: &[BenchRow]) -> Gate {
        let mut log_sum = 0.0f64;
        let mut count = 0usize;
        let mut any_win = false;
        let mut all_match = true;
        for row in rows {
            for wr in &row.widths {
                all_match &= wr.decisions_match && wr.outputs_match;
                if !wr.oversubscribed {
                    continue;
                }
                count += 1;
                any_win |= wr.pooled_ms < row.per_chunk_ms;
                log_sum += (wr.pooled_ms / row.per_chunk_ms).ln();
            }
        }
        Gate {
            oversubscribed_rows: count,
            any_pooled_win: any_win,
            all_match,
            geomean_ratio: if count > 0 {
                (log_sum / count as f64).exp()
            } else {
                f64::NAN
            },
        }
    }

    fn pass(&self) -> bool {
        self.all_match
            && self.oversubscribed_rows > 0
            && self.any_pooled_win
            && self.geomean_ratio <= 1.0
    }
}

fn render_json(args: &Args, rows: &[BenchRow], gate: &Gate) -> String {
    let mut benches = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            benches.push(',');
        }
        let mut widths = String::from("[");
        for (j, wr) in row.widths.iter().enumerate() {
            if j > 0 {
                widths.push(',');
            }
            let mut o = JsonObject::new();
            o.u64("workers", wr.workers as u64)
                .f64("pooled_ms", wr.pooled_ms)
                .f64("speedup_vs_per_chunk", row.per_chunk_ms / wr.pooled_ms)
                .bool("oversubscribed", wr.oversubscribed)
                .bool("decisions_match", wr.decisions_match)
                .bool("outputs_match", wr.outputs_match);
            widths.push_str(&o.finish());
        }
        widths.push(']');
        let mut o = JsonObject::new();
        o.str("benchmark", row.benchmark)
            .u64("inputs", row.inputs as u64)
            .u64("chunks", row.chunks as u64)
            .f64("per_chunk_ms", row.per_chunk_ms)
            .raw("workers", &widths);
        benches.push_str(&o.finish());
    }
    benches.push(']');

    let mut g = JsonObject::new();
    g.bool("enforced", args.gate)
        .u64("oversubscribed_rows", gate.oversubscribed_rows as u64)
        .bool("any_pooled_win", gate.any_pooled_win)
        .bool("all_match", gate.all_match)
        .f64("geomean_pooled_over_per_chunk", gate.geomean_ratio)
        .bool("pass", gate.pass());

    let mut o = JsonObject::new();
    o.str("bench", "native_scaling")
        .u64("seed", FIGURE_SEED)
        .f64("scale", args.scale.0)
        .u64("reps", args.reps as u64)
        .u64("host_parallelism", default_workers() as u64)
        .raw("benchmarks", &benches)
        .raw("gate", &g.finish());
    format!("{}\n", o.finish())
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale(0.25),
        reps: 3,
        workers: vec![1, 2, 4, 8],
        out: "BENCH_native.json".to_string(),
        gate: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage =
        "usage: native_scaling [--scale F] [--reps N] [--workers 1,2,4,8] [--out PATH] [--gate]";
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: {} requires a value\n{usage}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--scale" => {
                let v: f64 = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --scale expects a number\n{usage}");
                    std::process::exit(2);
                });
                args.scale = Scale(v);
                i += 2;
            }
            "--reps" => {
                args.reps = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --reps expects an integer\n{usage}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--workers" => {
                args.workers = value(i)
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("error: --workers expects a comma list like 1,2,4\n{usage}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                i += 2;
            }
            "--out" => {
                args.out = value(i);
                i += 2;
            }
            "--gate" => {
                args.gate = true;
                i += 1;
            }
            other => {
                eprintln!("error: unknown option {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if !(args.scale.0 > 0.0 && args.scale.0 <= 1.0)
        || args.reps == 0
        || args.workers.is_empty()
        || args.workers.contains(&0)
    {
        eprintln!("error: --scale in (0,1], --reps and all --workers positive\n{usage}");
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "native_scaling: scale {}, {} reps, pool widths {:?}, host parallelism {}",
        args.scale.0,
        args.reps,
        args.workers,
        default_workers(),
    );

    let rows: Vec<BenchRow> = BENCHMARK_NAMES
        .iter()
        .map(|name| {
            let row = dispatch(name, Sweep { args: &args });
            println!(
                "{:<18} {:>6} inputs {:>3} chunks | per-chunk {:>9.2} ms",
                row.benchmark, row.inputs, row.chunks, row.per_chunk_ms
            );
            for wr in &row.widths {
                println!(
                    "  pool x{:<3} {:>9.2} ms  ({:.2}x vs per-chunk{}{})",
                    wr.workers,
                    wr.pooled_ms,
                    row.per_chunk_ms / wr.pooled_ms,
                    if wr.oversubscribed {
                        ", oversubscribed"
                    } else {
                        ""
                    },
                    if wr.decisions_match && wr.outputs_match {
                        ""
                    } else {
                        ", MISMATCH"
                    },
                );
            }
            row
        })
        .collect();

    let gate = Gate::evaluate(&rows);
    let json = render_json(&args, &rows, &gate);
    validate(json.trim()).unwrap_or_else(|e| panic!("generated invalid JSON: {e}"));
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    println!(
        "\nwrote {} | oversubscribed rows: {} | pooled/per-chunk geomean: {:.3} | parity: {}",
        args.out,
        gate.oversubscribed_rows,
        gate.geomean_ratio,
        if gate.all_match { "ok" } else { "MISMATCH" },
    );

    if args.gate {
        if gate.pass() {
            println!("OK: pooled executor is no slower than thread-per-chunk when oversubscribed");
        } else {
            println!("FAIL: pooled executor regressed against thread-per-chunk (or parity broke)");
            std::process::exit(1);
        }
    }
}
