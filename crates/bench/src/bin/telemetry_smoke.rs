//! Telemetry-overhead smoke check: run swaptions on the threaded runtime
//! with telemetry off and on, and fail if the instrumented run is more
//! than `--max-overhead` percent slower.
//!
//! The hot-path recording is a relaxed atomic add on a per-worker shard;
//! this harness is the regression gate keeping it that cheap. Timing uses
//! the minimum over `--reps` repetitions — the minimum is the standard
//! low-noise estimator for a deterministic workload under scheduler
//! jitter.
//!
//! Usage: `telemetry_smoke [--scale F] [--reps N] [--max-overhead PCT]`
//! Exits 0 when the overhead is within budget, 1 otherwise, 2 on bad args.

use stats_bench::pipeline::{tuned_config, Scale};
use stats_core::runtime::threaded::{run_threaded, run_threaded_observed};
use stats_telemetry::TelemetrySink;
use stats_workloads::{dispatch, Workload, WorkloadVisitor};
// stats-analyzer: allow(ND002): this harness measures real wall-clock overhead
use std::time::Instant;

const SEED: u64 = 42;

struct Smoke {
    scale: Scale,
    reps: usize,
    max_overhead: f64,
}

impl WorkloadVisitor for Smoke {
    type Output = i32;
    fn visit<W: Workload>(self, w: &W) -> i32 {
        let n = self.scale.inputs_for(w);
        let inputs = w.generate_inputs(n, SEED);
        let cfg = tuned_config(w, 28, self.scale);

        // Warm up caches, the allocator, and thread spawn paths once.
        run_threaded(w, &inputs, cfg, SEED);

        let mut base = f64::INFINITY;
        for _ in 0..self.reps {
            // stats-analyzer: allow(ND002): overhead measurement harness
            let t0 = Instant::now();
            let run = run_threaded(w, &inputs, cfg, SEED);
            base = base.min(t0.elapsed().as_secs_f64());
            assert_eq!(run.outputs.len(), n);
        }

        let mut observed = f64::INFINITY;
        for _ in 0..self.reps {
            let sink = TelemetrySink::new(cfg.chunks);
            // stats-analyzer: allow(ND002): overhead measurement harness
            let t0 = Instant::now();
            let run = run_threaded_observed(w, &inputs, cfg, SEED, Some(&sink));
            observed = observed.min(t0.elapsed().as_secs_f64());
            assert_eq!(run.outputs.len(), n);
            assert!(sink.snapshot().get(stats_telemetry::Counter::ChunksStarted) > 0);
        }

        let overhead = ((observed - base) / base * 100.0).max(0.0);
        println!(
            "benchmark:    {} ({} inputs, {} chunks, {} reps)\n\
             baseline:     {:.3} ms (min)\n\
             instrumented: {:.3} ms (min)\n\
             overhead:     {overhead:.2}% (budget {:.1}%)",
            w.name(),
            n,
            cfg.chunks,
            self.reps,
            base * 1e3,
            observed * 1e3,
            self.max_overhead,
        );
        if base * 1e3 < 20.0 {
            println!("note: baseline under 20 ms; consider a larger --scale for stable numbers");
        }
        if overhead > self.max_overhead {
            println!("FAIL: telemetry overhead exceeds budget");
            1
        } else {
            println!("OK: telemetry overhead within budget");
            0
        }
    }
}

fn main() {
    let mut scale = Scale(1.0);
    let mut reps = 5usize;
    let mut max_overhead = 10.0f64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned();
        let num = |what: &str| -> f64 {
            value
                .as_deref()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("error: {what} expects a number");
                    std::process::exit(2);
                })
        };
        match args[i].as_str() {
            "--scale" => scale = Scale(num("--scale")),
            "--reps" => reps = num("--reps") as usize,
            "--max-overhead" => max_overhead = num("--max-overhead"),
            other => {
                eprintln!("error: unknown option {other}");
                eprintln!("usage: telemetry_smoke [--scale F] [--reps N] [--max-overhead PCT]");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if !(scale.0 > 0.0 && scale.0 <= 1.0) || reps == 0 {
        eprintln!("error: --scale must be in (0,1] and --reps positive");
        std::process::exit(2);
    }
    let code = dispatch(
        "swaptions",
        Smoke {
            scale,
            reps,
            max_overhead,
        },
    );
    std::process::exit(code);
}
