//! Regenerate the paper's Fig. 13. Scale via STATS_SCALE (default 1.0).
use stats_bench::pipeline::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", stats_bench::fig13::render(scale));
}
