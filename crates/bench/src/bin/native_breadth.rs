//! Speculation-breadth sweep over the native pooled runtime: every paper
//! benchmark × breadth {1, 2, 4} × {serial, overlapped} abort recovery.
//!
//! For each cell this harness runs the pooled executor over two seeds,
//! `--reps` times each, and records the summed min wall time, the abort
//! count, and the breadth counters (`SpecCandidates` / `CandidateHits` /
//! `RerunSegments`); for each benchmark it additionally profiles the
//! breadth-1 and breadth-2 configurations to close the causal-profiler
//! loop. With `--gate`, the process exits non-zero unless:
//!
//! * **parity** — in every cell the threaded decisions and quality bits
//!   match the simulated run exactly, and the overlapped-recovery cell
//!   matches its serial sibling exactly (overlap moves work, never
//!   results);
//! * **counters** — `SpecCandidates` equals speculative-chunks × breadth
//!   exactly, and `RerunSegments` equals the abort count under serial
//!   recovery (at most twice it when overlapped);
//! * **rescue** — on the abort-heavy trackers, breadth 2 strictly
//!   reduces the summed abort count, and the profiled mispeculation
//!   loss share strictly shrinks from breadth 1 to breadth 2;
//! * **no overlap slowdown** — the geomean over all (benchmark,
//!   breadth) cells of `overlapped_time / serial_time` stays within
//!   `--tolerance` percent of 1.0;
//! * **bracket** — on the trackers, the achieved breadth-2 speedup
//!   stays under the mispeculation-free what-if the breadth-1 profile
//!   projects (slackened by `--tolerance` percent plus the CIs); the
//!   floor — breadth must not cost wall time — additionally needs the
//!   host to have a thread for every candidate of every chunk, so it is
//!   only enforced when `host_parallelism >= 2 x chunks` (the JSON
//!   records whether it was).
//!
//! Usage: `native_breadth [--scale F] [--reps N] [--tolerance PCT] \
//! [--out PATH] [--gate]` — exits 0 on success, 1 on gate failure, 2 on
//! bad arguments.

use stats_bench::native_attribution::{profile_workload_configured, ProfileReport};
use stats_bench::pipeline::{geomean, tuned_config, Scale, FIGURE_SEED};
use stats_core::runtime::pool::{default_workers, WorkerPool};
use stats_core::runtime::simulated::SimulatedRuntime;
use stats_core::runtime::threaded::run_threaded_on;
use stats_core::{ChunkDecision, Config};
use stats_telemetry::json::{validate, JsonObject};
use stats_telemetry::{Counter, Estimate, TelemetrySink, WallLoss};
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// Breadths swept per benchmark. 1 is the head-identical baseline; the
/// profiler bracket compares 1 against 2.
const BREADTHS: [usize; 3] = [1, 2, 4];

/// Seeds each cell runs over (abort patterns are seed-dependent; the
/// rescue gate sums across both so a lucky single seed cannot pass it).
const SEEDS: [u64; 2] = [FIGURE_SEED, FIGURE_SEED + 1];

/// Benchmarks whose tuned configurations actually mispeculate at the
/// sweep scale: breadth has aborts to rescue, so the rescue and bracket
/// gates apply. The face detector's aborts stem from a detection-count
/// discontinuity no sibling RNG stream crosses differently, so breadth
/// cannot rescue it — it stays a sweep row but not a gated one.
const ABORT_HEAVY: [&str; 2] = ["bodytrack", "facetrack"];

#[derive(Clone)]
struct Args {
    scale: Scale,
    reps: usize,
    tolerance: f64,
    out: String,
    gate: bool,
}

/// One (breadth, overlap) cell, summed over [`SEEDS`].
struct Cell {
    min_ns: u64,
    aborts: u64,
    candidates: u64,
    hits: u64,
    segments: u64,
    /// Threaded decisions and quality bits matched the simulated run on
    /// every seed.
    sim_parity: bool,
}

/// Serial and overlapped recovery at one breadth.
struct BreadthPair {
    breadth: usize,
    serial: Cell,
    overlapped: Cell,
    /// Overlapped decisions and quality bits matched serial on every seed.
    overlap_parity: bool,
    /// The counter identities held in both cells.
    counters_ok: bool,
}

struct BenchRow {
    name: String,
    /// Pool width the sweep ran on: `2 x chunks`, so at breadth 2 every
    /// candidate of every chunk has a worker slot.
    width: usize,
    pairs: Vec<BreadthPair>,
    narrow_measured: Estimate,
    wide_measured: Estimate,
    /// The mispeculation-free what-if projected from the breadth-1
    /// profile: the upper edge of the bracket breadth 2 must land in.
    mispec_free_narrow: Estimate,
    narrow_mispec_share: f64,
    wide_mispec_share: f64,
    is_abort_heavy: bool,
}

fn mispec_share(r: &ProfileReport) -> f64 {
    r.normalized_losses()
        .iter()
        .find(|(l, _)| *l == WallLoss::Mispeculation)
        .map_or(0.0, |(_, s)| *s)
}

struct Sweep<'a> {
    args: &'a Args,
}

impl WorkloadVisitor for Sweep<'_> {
    type Output = BenchRow;
    fn visit<W: Workload>(self, w: &W) -> BenchRow {
        let args = self.args;
        let n = args.scale.inputs_for(w);
        let base = tuned_config(w, 28, args.scale);
        let width = base.chunks * 2;
        let pool = WorkerPool::new(width);
        let rt = SimulatedRuntime::paper_machine();

        // One threaded cell: summed min-over-reps time, counters, and
        // the per-seed decision/quality record for the parity checks.
        let measure = |cfg: Config| {
            let mut cell = Cell {
                min_ns: 0,
                aborts: 0,
                candidates: 0,
                hits: 0,
                segments: 0,
                sim_parity: true,
            };
            let mut record = Vec::new();
            for &seed in &SEEDS {
                let inputs = w.generate_inputs(n, seed);
                let sink = TelemetrySink::new(cfg.chunks.max(1));
                let first = run_threaded_on(&pool, w, &inputs, cfg, seed, Some(&sink));
                let snap = sink.snapshot();
                let mut min_ns = u64::try_from(first.elapsed.as_nanos()).unwrap_or(u64::MAX);
                for _ in 1..args.reps {
                    let rep = run_threaded_on(&pool, w, &inputs, cfg, seed, None);
                    min_ns = min_ns.min(u64::try_from(rep.elapsed.as_nanos()).unwrap_or(u64::MAX));
                }
                let sim = rt
                    .run(w.name(), w, &inputs, cfg, w.inner_parallelism(), seed)
                    .expect("valid configuration");
                let quality = w.quality(&inputs, &first.outputs).to_bits();
                cell.sim_parity &= first.decisions == sim.decisions
                    && quality == w.quality(&inputs, &sim.outputs).to_bits();
                cell.min_ns += min_ns;
                cell.aborts += first
                    .decisions
                    .iter()
                    .filter(|d| **d == ChunkDecision::Aborted)
                    .count() as u64;
                cell.candidates += snap.get(Counter::SpecCandidates);
                cell.hits += snap.get(Counter::CandidateHits);
                cell.segments += snap.get(Counter::RerunSegments);
                record.push((first.decisions, quality));
            }
            (cell, record)
        };

        let mut pairs = Vec::new();
        for &breadth in &BREADTHS {
            let cfg = base.with_breadth(breadth);
            let (serial, serial_record) = measure(cfg);
            let (overlapped, overlapped_record) = measure(cfg.with_overlap(true));
            let overlap_parity = serial_record == overlapped_record;
            // Every seed contributes (chunks - 1) speculative chunks.
            let speculative = SEEDS.len() as u64 * (cfg.chunks as u64 - 1);
            let counters_ok = serial.candidates == speculative * breadth as u64
                && overlapped.candidates == serial.candidates
                && serial.segments == serial.aborts
                && overlapped.segments >= overlapped.aborts
                && overlapped.segments <= 2 * overlapped.aborts;
            pairs.push(BreadthPair {
                breadth,
                serial,
                overlapped,
                overlap_parity,
                counters_ok,
            });
        }

        // Close the profiler loop: the mispeculation-free what-if is
        // projected under breadth 1 (where reruns still cost), the
        // achieved speedup measured under breadth 2.
        let narrow = profile_workload_configured(w, &pool, args.scale, &SEEDS, base);
        let wide = profile_workload_configured(w, &pool, args.scale, &SEEDS, base.with_breadth(2));

        BenchRow {
            name: w.name().to_string(),
            width,
            pairs,
            narrow_measured: narrow.measured,
            wide_measured: wide.measured,
            mispec_free_narrow: narrow.whatif_mispeculation_free,
            narrow_mispec_share: mispec_share(&narrow),
            wide_mispec_share: mispec_share(&wide),
            is_abort_heavy: ABORT_HEAVY.contains(&w.name()),
        }
    }
}

struct Gate {
    all_parity: bool,
    counters_exact: bool,
    rescues: bool,
    geomean_overlap_ratio: f64,
    ceilings_hold: bool,
    /// Whether the host had the threads to enforce the wall-time floor
    /// on every gated row.
    floor_enforced: bool,
    floors_hold: bool,
    tolerance_pct: f64,
}

impl Gate {
    fn evaluate(rows: &[BenchRow], tolerance_pct: f64) -> Gate {
        let slack = 1.0 + tolerance_pct / 100.0;
        let all_parity = rows.iter().all(|r| {
            r.pairs
                .iter()
                .all(|p| p.serial.sim_parity && p.overlapped.sim_parity && p.overlap_parity)
        });
        let counters_exact = rows.iter().all(|r| r.pairs.iter().all(|p| p.counters_ok));
        fn cell(r: &BenchRow, breadth: usize) -> &BreadthPair {
            r.pairs
                .iter()
                .find(|p| p.breadth == breadth)
                .expect("swept breadth")
        }
        let rescues = rows.iter().filter(|r| r.is_abort_heavy).all(|r| {
            let (b1, b2) = (cell(r, 1), cell(r, 2));
            b1.serial.aborts > 0
                && b2.serial.aborts < b1.serial.aborts
                && r.wide_mispec_share < r.narrow_mispec_share
        });
        let ratios: Vec<f64> = rows
            .iter()
            .flat_map(|r| r.pairs.iter())
            .map(|p| p.overlapped.min_ns as f64 / p.serial.min_ns.max(1) as f64)
            .collect();
        let geomean_overlap_ratio = geomean(&ratios);
        let ceilings_hold = rows.iter().filter(|r| r.is_abort_heavy).all(|r| {
            let ceiling = (r.mispec_free_narrow.mean + r.mispec_free_narrow.half_width) * slack;
            r.wide_measured.mean - r.wide_measured.half_width <= ceiling
        });
        let floor_enforced = rows
            .iter()
            .filter(|r| r.is_abort_heavy)
            .all(|r| default_workers() >= r.width);
        let floors_hold = !floor_enforced
            || rows.iter().filter(|r| r.is_abort_heavy).all(|r| {
                let floor = (r.narrow_measured.mean - r.narrow_measured.half_width) / slack;
                r.wide_measured.mean + r.wide_measured.half_width >= floor
            });
        Gate {
            all_parity,
            counters_exact,
            rescues,
            geomean_overlap_ratio,
            ceilings_hold,
            floor_enforced,
            floors_hold,
            tolerance_pct,
        }
    }

    fn pass(&self) -> bool {
        self.all_parity
            && self.counters_exact
            && self.rescues
            && self.geomean_overlap_ratio <= 1.0 + self.tolerance_pct / 100.0
            && self.ceilings_hold
            && self.floors_hold
    }
}

fn render_json(args: &Args, rows: &[BenchRow], gate: &Gate) -> String {
    let est = |e: &Estimate| format!("{{\"mean\":{:.6},\"ci\":{:.6}}}", e.mean, e.half_width);
    let mut benches = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            benches.push(',');
        }
        let mut cells = String::from("[");
        for (j, p) in row.pairs.iter().enumerate() {
            if j > 0 {
                cells.push(',');
            }
            let cell = |c: &Cell| {
                let mut o = JsonObject::new();
                o.u64("min_ns", c.min_ns)
                    .u64("aborts", c.aborts)
                    .u64("candidates", c.candidates)
                    .u64("hits", c.hits)
                    .u64("segments", c.segments)
                    .bool("sim_parity", c.sim_parity);
                o.finish()
            };
            let mut o = JsonObject::new();
            o.u64("breadth", p.breadth as u64)
                .raw("serial", &cell(&p.serial))
                .raw("overlapped", &cell(&p.overlapped))
                .bool("overlap_parity", p.overlap_parity)
                .bool("counters_ok", p.counters_ok);
            cells.push_str(&o.finish());
        }
        cells.push(']');
        let mut o = JsonObject::new();
        o.str("benchmark", &row.name)
            .bool("abort_heavy", row.is_abort_heavy)
            .u64("width", row.width as u64)
            .raw("breadths", &cells)
            .raw("narrow_measured", &est(&row.narrow_measured))
            .raw("wide_measured", &est(&row.wide_measured))
            .raw("mispec_free_narrow", &est(&row.mispec_free_narrow))
            .f64("narrow_mispec_share", row.narrow_mispec_share)
            .f64("wide_mispec_share", row.wide_mispec_share);
        benches.push_str(&o.finish());
    }
    benches.push(']');

    let mut breadths = String::from("[");
    for (i, b) in BREADTHS.iter().enumerate() {
        if i > 0 {
            breadths.push(',');
        }
        breadths.push_str(&b.to_string());
    }
    breadths.push(']');

    let mut g = JsonObject::new();
    g.bool("enforced", args.gate)
        .bool("all_parity", gate.all_parity)
        .bool("counters_exact", gate.counters_exact)
        .bool("rescues", gate.rescues)
        .f64("geomean_overlap_ratio", gate.geomean_overlap_ratio)
        .bool("ceilings_hold", gate.ceilings_hold)
        .bool("floor_enforced", gate.floor_enforced)
        .bool("floors_hold", gate.floors_hold)
        .f64("tolerance_pct", gate.tolerance_pct)
        .bool("pass", gate.pass());

    let mut o = JsonObject::new();
    o.str("bench", "native_breadth")
        .u64("seed", FIGURE_SEED)
        .f64("scale", args.scale.0)
        .u64("reps", args.reps as u64)
        .u64("seeds", SEEDS.len() as u64)
        .raw("breadths", &breadths)
        .u64("host_parallelism", default_workers() as u64)
        .raw("benchmarks", &benches)
        .raw("gate", &g.finish());
    format!("{}\n", o.finish())
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale(0.08),
        reps: 2,
        tolerance: 10.0,
        out: "BENCH_breadth.json".to_string(),
        gate: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = "usage: native_breadth [--scale F] [--reps N] [--tolerance PCT] \
                 [--out PATH] [--gate]";
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: {} requires a value\n{usage}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--scale" => {
                let v: f64 = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --scale expects a number\n{usage}");
                    std::process::exit(2);
                });
                args.scale = Scale(v);
                i += 2;
            }
            "--reps" => {
                args.reps = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --reps expects an integer\n{usage}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--tolerance" => {
                let v: f64 = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --tolerance expects a number\n{usage}");
                    std::process::exit(2);
                });
                args.tolerance = v;
                i += 2;
            }
            "--out" => {
                args.out = value(i);
                i += 2;
            }
            "--gate" => {
                args.gate = true;
                i += 1;
            }
            other => {
                eprintln!("error: unknown option {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if !(args.scale.0 > 0.0 && args.scale.0 <= 1.0)
        || args.reps == 0
        || args.tolerance <= 0.0
        || args.tolerance.is_nan()
    {
        eprintln!("error: --scale in (0,1]; --reps and --tolerance positive\n{usage}");
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "native_breadth: scale {}, {} reps x {} seeds, breadths {:?}, host parallelism {}",
        args.scale.0,
        args.reps,
        SEEDS.len(),
        BREADTHS,
        default_workers(),
    );

    let rows: Vec<BenchRow> = BENCHMARK_NAMES
        .iter()
        .map(|name| {
            let row = dispatch(name, Sweep { args: &args });
            for p in &row.pairs {
                println!(
                    "{:<18} b{} aborts {} -> hits {} | segments {} -> {} | overlap x{:.3}{}{}",
                    row.name,
                    p.breadth,
                    p.serial.aborts,
                    p.serial.hits,
                    p.serial.segments,
                    p.overlapped.segments,
                    p.overlapped.min_ns as f64 / p.serial.min_ns.max(1) as f64,
                    if p.serial.sim_parity && p.overlapped.sim_parity && p.overlap_parity {
                        ""
                    } else {
                        " PARITY BROKEN"
                    },
                    if p.counters_ok { "" } else { " COUNTERS OFF" },
                );
            }
            println!(
                "{:<18} bracket: b1 {:.2}x <= b2 {:.2}x <= mispec-free {:.2}x | \
                 mispec share {:.4} -> {:.4}{}",
                "",
                row.narrow_measured.mean,
                row.wide_measured.mean,
                row.mispec_free_narrow.mean,
                row.narrow_mispec_share,
                row.wide_mispec_share,
                if row.is_abort_heavy { " (gated)" } else { "" },
            );
            row
        })
        .collect();

    let gate = Gate::evaluate(&rows, args.tolerance);
    let json = render_json(&args, &rows, &gate);
    validate(json.trim()).unwrap_or_else(|e| panic!("generated invalid JSON: {e}"));
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    println!(
        "\nwrote {} | parity {} | counters {} | rescues {} | overlap x{:.3} | \
         ceilings {} | floors {}",
        args.out,
        if gate.all_parity { "ok" } else { "BROKEN" },
        if gate.counters_exact { "exact" } else { "OFF" },
        if gate.rescues { "ok" } else { "MISSING" },
        gate.geomean_overlap_ratio,
        if gate.ceilings_hold { "hold" } else { "BROKEN" },
        if !gate.floor_enforced {
            "skipped (host too narrow)"
        } else if gate.floors_hold {
            "hold"
        } else {
            "BROKEN"
        },
    );

    if args.gate {
        if gate.pass() {
            println!("OK: breadth trades bounded extra work for fewer aborts, never results");
        } else {
            println!("FAIL: speculation-breadth gate failed");
            std::process::exit(1);
        }
    }
}
