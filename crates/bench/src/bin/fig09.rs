//! Regenerate the paper's fig09. Scale via STATS_SCALE (default 1.0).
use stats_bench::pipeline::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("{}", stats_bench::fig09::render(scale));
    let svg = stats_bench::svg::fig09_svg(&stats_bench::fig09::compute(scale));
    if let Some(path) = stats_bench::svg::write_if_configured("fig09", &svg) {
        println!("(svg written to {})", path.display());
    }
}
