//! Input-size and core-count scaling sweeps (the paper's §I claims).
fn main() {
    println!("{}", stats_bench::scaling::render());
}
