//! Snapshot-strategy sweep over the native pooled runtime: every paper
//! benchmark × {deep, cow} × pool widths.
//!
//! For each cell this harness runs the pooled executor `--reps` times
//! and records the min wall time plus the byte accounting
//! (`StateBytesLogical` / `StateBytesCopied`); for each benchmark at the
//! widest width it additionally profiles both strategies to close the
//! causal-profiler loop. With `--gate`, the process exits non-zero
//! unless:
//!
//! * **parity** — at every width, the cow run's decisions, outputs, and
//!   quality bits match the deep run exactly, and both strategies agree
//!   on `StateBytesLogical` (the logical copy volume is a property of
//!   the protocol, not the snapshot mechanism);
//! * **byte collapse** — on the tracker benchmarks, whose particle-cloud
//!   states update generationally and so never fault their shared
//!   generations, `StateBytesCopied(cow) <= 0.5 x deep` (in practice it
//!   is near zero — far beyond the 2x the acceptance bar asks for);
//! * **no slowdown** — the geomean over all (benchmark, width) cells of
//!   `cow_time / deep_time` stays within `--tolerance` percent of 1.0;
//! * **bracket** — on the trackers, the achieved cow speedup lands in
//!   the bracket the deep profile predicts: at least the deep measured
//!   speedup and at most the copies-free what-if projection, each side
//!   slackened by `--tolerance` percent plus the estimate's own CI
//!   (wall-clock speedups on a time-shared host carry scheduler noise
//!   the tolerance absorbs).
//!
//! Usage: `native_copies [--scale F] [--reps N] [--widths A,B] \
//! [--tolerance PCT] [--out PATH] [--gate]` — exits 0 on success, 1 on
//! gate failure, 2 on bad arguments.

use stats_bench::native_attribution::profile_workload_configured;
use stats_bench::pipeline::{geomean, tuned_config, Scale, FIGURE_SEED};
use stats_core::runtime::pool::{default_workers, WorkerPool};
use stats_core::runtime::threaded::run_threaded_on;
use stats_core::{Config, SnapshotStrategy};
use stats_telemetry::json::{validate, JsonObject};
use stats_telemetry::{Counter, Estimate, TelemetrySink};
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// Benchmarks whose dominant state is a particle cloud: COW forks share
/// whole generations structurally, so physical copies must collapse.
/// The stream workloads merely *defer* their (tiny) copy to the first
/// post-fork write, which the byte gate deliberately does not reward.
const TRACKERS: [&str; 3] = ["bodytrack", "facetrack", "facedet-and-track"];

#[derive(Clone)]
struct Args {
    scale: Scale,
    reps: usize,
    widths: Vec<usize>,
    tolerance: f64,
    out: String,
    gate: bool,
}

/// One (strategy, width) cell: timing plus byte accounting.
struct Cell {
    min_ns: u64,
    bytes_logical: u64,
    bytes_copied: u64,
}

/// Deep and cow at one width, with the parity verdict between them.
struct WidthPair {
    width: usize,
    deep: Cell,
    cow: Cell,
    parity: bool,
}

struct BenchRow {
    name: String,
    pairs: Vec<WidthPair>,
    /// Measured speedup of the deep-snapshot runs (profiled, widest width).
    deep_measured: Estimate,
    /// Measured speedup of the cow-snapshot runs (same pool and seeds).
    cow_measured: Estimate,
    /// The copies-free what-if, projected from the *deep* profile: the
    /// upper edge of the bracket the cow runs must land in.
    copies_free_deep: Estimate,
    is_tracker: bool,
}

struct Sweep<'a> {
    args: &'a Args,
}

impl WorkloadVisitor for Sweep<'_> {
    type Output = BenchRow;
    fn visit<W: Workload>(self, w: &W) -> BenchRow {
        let args = self.args;
        let n = args.scale.inputs_for(w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let deep_cfg = tuned_config(w, 28, args.scale);
        let mut cow_cfg = deep_cfg;
        cow_cfg.snapshot = SnapshotStrategy::CopyOnWrite;

        let mut pairs = Vec::new();
        for &width in &args.widths {
            let pool = WorkerPool::new(width);
            let measure = |cfg: Config| {
                let sink = TelemetrySink::new(cfg.chunks.max(1));
                let first = run_threaded_on(&pool, w, &inputs, cfg, FIGURE_SEED, Some(&sink));
                let snap = sink.snapshot();
                let mut min_ns = u64::try_from(first.elapsed.as_nanos()).unwrap_or(u64::MAX);
                for _ in 1..args.reps {
                    let rep = run_threaded_on(&pool, w, &inputs, cfg, FIGURE_SEED, None);
                    min_ns = min_ns.min(u64::try_from(rep.elapsed.as_nanos()).unwrap_or(u64::MAX));
                }
                let cell = Cell {
                    min_ns,
                    bytes_logical: snap.get(Counter::StateBytesLogical),
                    bytes_copied: snap.get(Counter::StateBytesCopied),
                };
                (cell, first)
            };
            let (deep, deep_run) = measure(deep_cfg);
            let (cow, cow_run) = measure(cow_cfg);
            // Outputs lack a PartialEq bound at this level; the quality
            // score hashes every output bit, so equal decisions + equal
            // quality bits is output parity in practice (the integration
            // suite checks Output equality directly where the type allows).
            let parity = deep_run.decisions == cow_run.decisions
                && deep_run.outputs.len() == cow_run.outputs.len()
                && w.quality(&inputs, &deep_run.outputs).to_bits()
                    == w.quality(&inputs, &cow_run.outputs).to_bits()
                && deep.bytes_logical == cow.bytes_logical;
            pairs.push(WidthPair {
                width,
                deep,
                cow,
                parity,
            });
        }

        // Close the profiler loop at the widest width: the copies-free
        // what-if is measured under deep (where copies still cost), the
        // achieved speedup under cow.
        let widest = args.widths.iter().copied().max().unwrap_or(1);
        let pool = WorkerPool::new(widest);
        let seeds = [FIGURE_SEED, FIGURE_SEED + 1];
        let deep_report = profile_workload_configured(w, &pool, args.scale, &seeds, deep_cfg);
        let cow_report = profile_workload_configured(w, &pool, args.scale, &seeds, cow_cfg);

        BenchRow {
            name: w.name().to_string(),
            pairs,
            deep_measured: deep_report.measured,
            cow_measured: cow_report.measured,
            copies_free_deep: deep_report.whatif_copies_free,
            is_tracker: TRACKERS.contains(&w.name()),
        }
    }
}

struct Gate {
    all_parity: bool,
    trackers_collapse: bool,
    geomean_time_ratio: f64,
    brackets_hold: bool,
    tolerance_pct: f64,
}

impl Gate {
    fn evaluate(rows: &[BenchRow], tolerance_pct: f64) -> Gate {
        let slack = 1.0 + tolerance_pct / 100.0;
        let all_parity = rows.iter().all(|r| r.pairs.iter().all(|p| p.parity));
        let trackers_collapse = rows.iter().filter(|r| r.is_tracker).all(|r| {
            r.pairs
                .iter()
                .all(|p| 2 * p.cow.bytes_copied <= p.deep.bytes_copied)
        });
        let ratios: Vec<f64> = rows
            .iter()
            .flat_map(|r| r.pairs.iter())
            .map(|p| p.cow.min_ns as f64 / p.deep.min_ns.max(1) as f64)
            .collect();
        let geomean_time_ratio = geomean(&ratios);
        let brackets_hold = rows.iter().filter(|r| r.is_tracker).all(|r| {
            let ceiling = (r.copies_free_deep.mean + r.copies_free_deep.half_width) * slack;
            let floor = (r.deep_measured.mean - r.deep_measured.half_width) / slack;
            let achieved = r.cow_measured.mean;
            achieved - r.cow_measured.half_width <= ceiling
                && achieved + r.cow_measured.half_width >= floor
        });
        Gate {
            all_parity,
            trackers_collapse,
            geomean_time_ratio,
            brackets_hold,
            tolerance_pct,
        }
    }

    fn pass(&self) -> bool {
        self.all_parity
            && self.trackers_collapse
            && self.geomean_time_ratio <= 1.0 + self.tolerance_pct / 100.0
            && self.brackets_hold
    }
}

fn render_json(args: &Args, rows: &[BenchRow], gate: &Gate) -> String {
    let est = |e: &Estimate| format!("{{\"mean\":{:.6},\"ci\":{:.6}}}", e.mean, e.half_width);
    let mut benches = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            benches.push(',');
        }
        let mut widths = String::from("[");
        for (j, p) in row.pairs.iter().enumerate() {
            if j > 0 {
                widths.push(',');
            }
            let cell = |c: &Cell| {
                let mut o = JsonObject::new();
                o.u64("min_ns", c.min_ns)
                    .u64("bytes_logical", c.bytes_logical)
                    .u64("bytes_copied", c.bytes_copied);
                o.finish()
            };
            let mut o = JsonObject::new();
            o.u64("width", p.width as u64)
                .raw("deep", &cell(&p.deep))
                .raw("cow", &cell(&p.cow))
                .bool("parity", p.parity);
            widths.push_str(&o.finish());
        }
        widths.push(']');
        let mut o = JsonObject::new();
        o.str("benchmark", &row.name)
            .bool("tracker", row.is_tracker)
            .raw("widths", &widths)
            .raw("deep_measured", &est(&row.deep_measured))
            .raw("cow_measured", &est(&row.cow_measured))
            .raw("copies_free_deep", &est(&row.copies_free_deep));
        benches.push_str(&o.finish());
    }
    benches.push(']');

    let mut widths = String::from("[");
    for (i, wd) in args.widths.iter().enumerate() {
        if i > 0 {
            widths.push(',');
        }
        widths.push_str(&wd.to_string());
    }
    widths.push(']');

    let mut g = JsonObject::new();
    g.bool("enforced", args.gate)
        .bool("all_parity", gate.all_parity)
        .bool("trackers_collapse", gate.trackers_collapse)
        .f64("geomean_time_ratio", gate.geomean_time_ratio)
        .bool("brackets_hold", gate.brackets_hold)
        .f64("tolerance_pct", gate.tolerance_pct)
        .bool("pass", gate.pass());

    let mut o = JsonObject::new();
    o.str("bench", "native_copies")
        .u64("seed", FIGURE_SEED)
        .f64("scale", args.scale.0)
        .u64("reps", args.reps as u64)
        .raw("widths", &widths)
        .u64("host_parallelism", default_workers() as u64)
        .raw("benchmarks", &benches)
        .raw("gate", &g.finish());
    format!("{}\n", o.finish())
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale(0.1),
        reps: 3,
        widths: vec![1, 4],
        tolerance: 10.0,
        out: "BENCH_copies.json".to_string(),
        gate: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = "usage: native_copies [--scale F] [--reps N] [--widths A,B] \
                 [--tolerance PCT] [--out PATH] [--gate]";
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: {} requires a value\n{usage}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--scale" => {
                let v: f64 = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --scale expects a number\n{usage}");
                    std::process::exit(2);
                });
                args.scale = Scale(v);
                i += 2;
            }
            "--reps" => {
                args.reps = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --reps expects an integer\n{usage}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--widths" => {
                args.widths = value(i)
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("error: --widths expects integers\n{usage}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                i += 2;
            }
            "--tolerance" => {
                let v: f64 = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --tolerance expects a number\n{usage}");
                    std::process::exit(2);
                });
                args.tolerance = v;
                i += 2;
            }
            "--out" => {
                args.out = value(i);
                i += 2;
            }
            "--gate" => {
                args.gate = true;
                i += 1;
            }
            other => {
                eprintln!("error: unknown option {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if !(args.scale.0 > 0.0 && args.scale.0 <= 1.0)
        || args.reps == 0
        || args.widths.is_empty()
        || args.widths.contains(&0)
        || args.tolerance <= 0.0
        || args.tolerance.is_nan()
    {
        eprintln!("error: --scale in (0,1]; --reps, --widths, --tolerance positive\n{usage}");
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "native_copies: scale {}, {} reps, widths {:?}, host parallelism {}",
        args.scale.0,
        args.reps,
        args.widths,
        default_workers(),
    );

    let rows: Vec<BenchRow> = BENCHMARK_NAMES
        .iter()
        .map(|name| {
            let row = dispatch(name, Sweep { args: &args });
            for p in &row.pairs {
                println!(
                    "{:<18} w{} copied {:>12} -> {:>12} B ({}) | time x{:.3}{}",
                    row.name,
                    p.width,
                    p.deep.bytes_copied,
                    p.cow.bytes_copied,
                    if p.deep.bytes_copied > 0 && 2 * p.cow.bytes_copied <= p.deep.bytes_copied {
                        "collapsed"
                    } else {
                        "deferred"
                    },
                    p.cow.min_ns as f64 / p.deep.min_ns.max(1) as f64,
                    if p.parity { "" } else { " PARITY BROKEN" },
                );
            }
            println!(
                "{:<18} bracket: deep {:.2}x <= cow {:.2}x <= copies-free {:.2}x{}",
                "",
                row.deep_measured.mean,
                row.cow_measured.mean,
                row.copies_free_deep.mean,
                if row.is_tracker { " (gated)" } else { "" },
            );
            row
        })
        .collect();

    let gate = Gate::evaluate(&rows, args.tolerance);
    let json = render_json(&args, &rows, &gate);
    validate(json.trim()).unwrap_or_else(|e| panic!("generated invalid JSON: {e}"));
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    println!(
        "\nwrote {} | parity {} | tracker bytes {} | geomean time x{:.3} | brackets {}",
        args.out,
        if gate.all_parity { "ok" } else { "BROKEN" },
        if gate.trackers_collapse {
            "collapsed"
        } else {
            "NOT COLLAPSED"
        },
        gate.geomean_time_ratio,
        if gate.brackets_hold { "hold" } else { "BROKEN" },
    );

    if args.gate {
        if gate.pass() {
            println!("OK: cow snapshots change bytes and time, never results");
        } else {
            println!("FAIL: snapshot-strategy gate failed");
            std::process::exit(1);
        }
    }
}
