//! Differential chaos sweep over the fault-injection plane: every paper
//! benchmark × pool width {1, 2, 4} × seeded fault plans.
//!
//! Each cell runs the pooled executor fault-free and under a seeded
//! [`FaultPlan`](stats_core::FaultPlan), plus the simulated runtime
//! under the same plan, and checks that recovery is observationally
//! invisible (see `stats_bench::chaos`). With `--gate`, the process
//! exits non-zero unless:
//!
//! * **parity** — every faulted run's decisions and quality bits equal
//!   the fault-free run's, on every width and plan;
//! * **counters** — the twelve protocol counters are untouched by
//!   recovery, and all fifteen (protocol + fault) counters reconcile
//!   exactly between the threaded and simulated runtimes;
//! * **accounting** — observed fault counters equal the plan's derived
//!   totals, and retries stay within `injections × max_retries`;
//! * **coverage** — all six injection kinds executed somewhere in the
//!   sweep (a kind that never fires is a kind that was never tested).
//!
//! Usage: `chaos [--scale F] [--plans N] [--injections N] [--out PATH]
//! [--gate]` — exits 0 on success, 1 on gate failure, 2 on bad
//! arguments.

use stats_bench::chaos::{ChaosGate, ChaosRow, ChaosSweep, ALL_KINDS, WIDTHS};
use stats_bench::pipeline::{Scale, FIGURE_SEED};
use stats_core::runtime::pool::default_workers;
use stats_telemetry::json::{validate, JsonObject};
use stats_workloads::{dispatch, BENCHMARK_NAMES};

#[derive(Clone)]
struct Args {
    scale: Scale,
    plans: usize,
    injections: usize,
    out: String,
    gate: bool,
}

fn render_json(args: &Args, rows: &[ChaosRow], gate: &ChaosGate) -> String {
    let mut benches = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            benches.push(',');
        }
        let mut cells = String::from("[");
        for (j, c) in row.cells.iter().enumerate() {
            if j > 0 {
                cells.push(',');
            }
            let mut kinds = String::from("[");
            for (k, kind) in c.kinds_executed.iter().enumerate() {
                if k > 0 {
                    kinds.push(',');
                }
                kinds.push('"');
                kinds.push_str(kind);
                kinds.push('"');
            }
            kinds.push(']');
            let mut o = JsonObject::new();
            o.u64("width", c.width as u64)
                .u64("plan_seed", c.plan_seed)
                .u64("planned", c.planned as u64)
                .u64("injected", c.injected)
                .u64("retries", c.retries)
                .u64("workers_lost", c.workers_lost)
                .u64("aborts", c.aborts)
                .bool("decisions_match", c.decisions_match)
                .bool("quality_match", c.quality_match)
                .bool("protocol_match", c.protocol_match)
                .bool("sim_reconciled", c.sim_reconciled)
                .bool("totals_exact", c.totals_exact)
                .bool("retries_bounded", c.retries_bounded)
                .raw("kinds_executed", &kinds);
            cells.push_str(&o.finish());
        }
        cells.push(']');
        let mut o = JsonObject::new();
        o.str("benchmark", &row.name).raw("cells", &cells);
        benches.push_str(&o.finish());
    }
    benches.push(']');

    let mut widths = String::from("[");
    for (i, wd) in WIDTHS.iter().enumerate() {
        if i > 0 {
            widths.push(',');
        }
        widths.push_str(&wd.to_string());
    }
    widths.push(']');

    let mut covered = String::from("[");
    for (i, kind) in gate.kinds_covered.iter().enumerate() {
        if i > 0 {
            covered.push(',');
        }
        covered.push('"');
        covered.push_str(kind);
        covered.push('"');
    }
    covered.push(']');

    let mut g = JsonObject::new();
    g.bool("enforced", args.gate)
        .bool("all_ok", gate.all_ok)
        .raw("kinds_covered", &covered)
        .bool("full_coverage", gate.full_coverage)
        .bool("pass", gate.pass());

    let mut o = JsonObject::new();
    o.str("bench", "chaos")
        .u64("seed", FIGURE_SEED)
        .f64("scale", args.scale.0)
        .u64("plans_per_width", args.plans as u64)
        .u64("injections_per_plan", args.injections as u64)
        .raw("widths", &widths)
        .u64("host_parallelism", default_workers() as u64)
        .raw("benchmarks", &benches)
        .raw("gate", &g.finish());
    format!("{}\n", o.finish())
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale(0.05),
        plans: 3,
        injections: 5,
        out: "BENCH_chaos.json".to_string(),
        gate: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = "usage: chaos [--scale F] [--plans N] [--injections N] [--out PATH] [--gate]";
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: {} requires a value\n{usage}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--scale" => {
                let v: f64 = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --scale expects a number\n{usage}");
                    std::process::exit(2);
                });
                args.scale = Scale(v);
                i += 2;
            }
            "--plans" => {
                args.plans = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --plans expects an integer\n{usage}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--injections" => {
                args.injections = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --injections expects an integer\n{usage}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--out" => {
                args.out = value(i);
                i += 2;
            }
            "--gate" => {
                args.gate = true;
                i += 1;
            }
            other => {
                eprintln!("error: unknown option {other}\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if !(args.scale.0 > 0.0 && args.scale.0 <= 1.0) || args.plans == 0 || args.injections == 0 {
        eprintln!("error: --scale in (0,1]; --plans and --injections positive\n{usage}");
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "chaos: scale {}, {} plans x {} injections per width, widths {:?}, host parallelism {}",
        args.scale.0,
        args.plans,
        args.injections,
        WIDTHS,
        default_workers(),
    );

    let sweep = ChaosSweep {
        scale: args.scale,
        plans: args.plans,
        injections: args.injections,
    };
    let rows: Vec<ChaosRow> = BENCHMARK_NAMES
        .iter()
        .map(|name| {
            let row = dispatch(name, &sweep);
            for c in &row.cells {
                println!(
                    "{:<18} w{} plan {:#010x} injected {:>2} retries {:>2} lost {} | {}",
                    row.name,
                    c.width,
                    c.plan_seed & 0xFFFF_FFFF,
                    c.injected,
                    c.retries,
                    c.workers_lost,
                    if c.ok() { "identical" } else { "DIVERGED" },
                );
            }
            row
        })
        .collect();

    let gate = ChaosGate::evaluate(&rows);
    let json = render_json(&args, &rows, &gate);
    validate(json.trim()).unwrap_or_else(|e| panic!("generated invalid JSON: {e}"));
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    println!(
        "\nwrote {} | cells {} | kinds covered {}/{}",
        args.out,
        if gate.all_ok {
            "all identical"
        } else {
            "DIVERGED"
        },
        gate.kinds_covered.len(),
        ALL_KINDS.len(),
    );

    if args.gate {
        if gate.pass() {
            println!("OK: every injected fault recovered without a trace in the results");
        } else {
            println!("FAIL: chaos gate failed");
            std::process::exit(1);
        }
    }
}
