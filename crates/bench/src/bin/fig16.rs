//! Regenerate the paper's Fig. 16 (200 runs by default; first CLI arg
//! overrides the run count, STATS_SCALE the input scale).
use stats_bench::pipeline::Scale;

fn main() {
    let runs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let scale = Scale::from_env();
    println!("{}", stats_bench::fig16::render(scale, runs));
}
