//! Differential chaos harness for the fault-injection plane.
//!
//! For every benchmark × pool width × seeded fault plan, this module
//! runs the pooled executor three ways — fault-free, under the plan,
//! and on the simulated runtime under the same plan — and checks the
//! recovery invariant from every angle:
//!
//! * **parity** — the faulted run's decisions and quality bits equal
//!   the fault-free run's, bit for bit;
//! * **protocol counters** — all twelve protocol counters are untouched
//!   by recovery (the guards fire before any recording, so the clearing
//!   attempt records exactly once);
//! * **reconciliation** — the simulated runtime, which *derives* the
//!   fault counters post hoc from (config, chunk plan, decisions),
//!   produces exactly the counters the threaded run recorded live —
//!   protocol and fault counters both;
//! * **accounting** — the observed fault counters equal the plan's own
//!   [`FaultPlan::expected_totals`], and retries stay within
//!   `injections × max_retries`.
//!
//! The library entry points are reused by `tests/fault_recovery.rs` at
//! reduced scale; the `chaos` binary sweeps them at full scale and
//! gates CI.

use crate::pipeline::{tuned_config, Scale, FIGURE_SEED};
use stats_core::runtime::pool::WorkerPool;
use stats_core::runtime::simulated::SimulatedRuntime;
use stats_core::runtime::threaded::{run_threaded_faulted_on, run_threaded_on};
use stats_core::{plan_balanced, ChunkDecision, FaultPlan};
use stats_telemetry::{Counter, Snapshot, TelemetrySink};
use stats_workloads::{Workload, WorkloadVisitor};

/// Pool widths each plan is swept across (the protocol is
/// width-oblivious; recovery must be too).
pub const WIDTHS: [usize; 3] = [1, 2, 4];

/// Protocol counters fault recovery must leave untouched.
pub const PROTOCOL: [Counter; 12] = [
    Counter::ChunksStarted,
    Counter::ChunksCommitted,
    Counter::ChunksAborted,
    Counter::Reruns,
    Counter::RerunSegments,
    Counter::SpecCandidates,
    Counter::CandidateHits,
    Counter::ReplicasValidated,
    Counter::StateCopies,
    Counter::StateComparisons,
    Counter::StateBytesLogical,
    Counter::StateBytesCopied,
];

/// Fault counters both runtimes must reconcile exactly.
pub const FAULT_COUNTERS: [Counter; 3] = [
    Counter::FaultsInjected,
    Counter::RetriesScheduled,
    Counter::WorkersLost,
];

fn totals(snap: &Snapshot, counters: &[Counter]) -> Vec<u64> {
    counters.iter().map(|c| snap.get(*c)).collect()
}

/// One (width, plan seed) cell of the sweep.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Pool width the faulted run executed on.
    pub width: usize,
    /// Seed the fault plan was drawn from.
    pub plan_seed: u64,
    /// Injections the plan holds (sites are deduplicated, so this can
    /// fall short of the requested count on tiny configurations).
    pub planned: usize,
    /// `FaultsInjected` the faulted run recorded.
    pub injected: u64,
    /// `RetriesScheduled` the faulted run recorded.
    pub retries: u64,
    /// `WorkersLost` the faulted run recorded.
    pub workers_lost: u64,
    /// Chunks the (identical) runs aborted.
    pub aborts: u64,
    /// Faulted decisions equal fault-free decisions.
    pub decisions_match: bool,
    /// Faulted quality bits equal fault-free quality bits.
    pub quality_match: bool,
    /// The twelve protocol counters are untouched by recovery.
    pub protocol_match: bool,
    /// All fifteen counters reconcile exactly with the simulated run
    /// under the same plan.
    pub sim_reconciled: bool,
    /// Observed fault counters equal the plan's derived totals.
    pub totals_exact: bool,
    /// Retries stayed within `planned × max_retries`.
    pub retries_bounded: bool,
    /// Names of the injection kinds that actually executed this run.
    pub kinds_executed: Vec<&'static str>,
}

impl ChaosCell {
    /// Every invariant the cell checks.
    pub fn ok(&self) -> bool {
        self.decisions_match
            && self.quality_match
            && self.protocol_match
            && self.sim_reconciled
            && self.totals_exact
            && self.retries_bounded
    }
}

/// One benchmark's sweep row.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    pub name: String,
    pub cells: Vec<ChaosCell>,
}

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSweep {
    /// Input-size scale (see [`Scale`]).
    pub scale: Scale,
    /// Seeded plans per pool width.
    pub plans: usize,
    /// Injections requested per plan.
    pub injections: usize,
}

impl WorkloadVisitor for &ChaosSweep {
    type Output = ChaosRow;
    fn visit<W: Workload>(self, w: &W) -> ChaosRow {
        let n = self.scale.inputs_for(w);
        let cfg = tuned_config(w, 28, self.scale);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let chunk_plan = plan_balanced(inputs.len(), cfg.chunks);
        let rt = SimulatedRuntime::paper_machine();

        let mut cells = Vec::new();
        for &width in &WIDTHS {
            // The fault-free reference for this width: decisions,
            // quality, and protocol counters recovery must reproduce.
            let clean_pool = WorkerPool::new(width);
            let clean_sink = TelemetrySink::new(cfg.chunks);
            let clean =
                run_threaded_on(&clean_pool, w, &inputs, cfg, FIGURE_SEED, Some(&clean_sink));
            let clean_quality = w.quality(&inputs, &clean.outputs).to_bits();
            let clean_protocol = totals(&clean_sink.snapshot(), &PROTOCOL);

            for p in 0..self.plans {
                let plan_seed = FIGURE_SEED ^ (width as u64) << 32 ^ p as u64;
                let plan = FaultPlan::seeded(plan_seed, self.injections, &cfg, inputs.len());

                // Fresh pool per faulted cell: worker-death injections
                // doom workers, and cells must not inherit each other's
                // degraded pools.
                let pool = WorkerPool::new(width);
                let sink = TelemetrySink::new(cfg.chunks);
                let faulted = run_threaded_faulted_on(
                    &pool,
                    w,
                    &inputs,
                    cfg,
                    FIGURE_SEED,
                    &plan,
                    Some(&sink),
                );
                let snap = sink.snapshot();

                let sim_sink = TelemetrySink::new(cfg.chunks);
                let sim = rt
                    .run_observed_faulted(
                        w.name(),
                        w,
                        &inputs,
                        cfg,
                        w.inner_parallelism(),
                        FIGURE_SEED,
                        &plan,
                        Some(&sim_sink),
                    )
                    .expect("valid configuration");
                let sim_snap = sim_sink.snapshot();

                let expected = plan.expected_totals(&cfg, &chunk_plan, &faulted.decisions);
                let kinds_executed = plan
                    .injections()
                    .iter()
                    .filter(|i| plan.executes(i, &cfg, &chunk_plan, &faulted.decisions))
                    .map(|i| i.kind.name())
                    .collect();

                let quality = w.quality(&inputs, &faulted.outputs).to_bits();
                let reconciled = [PROTOCOL.as_slice(), FAULT_COUNTERS.as_slice()].concat();
                cells.push(ChaosCell {
                    width,
                    plan_seed,
                    planned: plan.injections().len(),
                    injected: snap.get(Counter::FaultsInjected),
                    retries: snap.get(Counter::RetriesScheduled),
                    workers_lost: snap.get(Counter::WorkersLost),
                    aborts: faulted
                        .decisions
                        .iter()
                        .filter(|d| **d == ChunkDecision::Aborted)
                        .count() as u64,
                    decisions_match: faulted.decisions == clean.decisions
                        && faulted.decisions == sim.decisions,
                    quality_match: quality == clean_quality
                        && quality == w.quality(&inputs, &sim.outputs).to_bits(),
                    protocol_match: totals(&snap, &PROTOCOL) == clean_protocol,
                    sim_reconciled: totals(&snap, &reconciled) == totals(&sim_snap, &reconciled),
                    totals_exact: snap.get(Counter::FaultsInjected) == expected.injected
                        && snap.get(Counter::RetriesScheduled) == expected.retries
                        && snap.get(Counter::WorkersLost) == expected.workers_lost,
                    retries_bounded: snap.get(Counter::RetriesScheduled)
                        <= (plan.injections().len() * plan.max_retries) as u64,
                    kinds_executed,
                });
            }
        }
        ChaosRow {
            name: w.name().to_string(),
            cells,
        }
    }
}

/// Sweep-level verdict.
#[derive(Debug, Clone)]
pub struct ChaosGate {
    /// Every cell's invariants held.
    pub all_ok: bool,
    /// Injection kinds that executed at least once across the sweep.
    pub kinds_covered: Vec<&'static str>,
    /// All six kinds executed somewhere in the sweep.
    pub full_coverage: bool,
}

/// All injection kinds, by stable name.
pub const ALL_KINDS: [&str; 6] = [
    "task_panic",
    "worker_death",
    "delayed_start",
    "poisoned_snapshot",
    "lost_result",
    "transfer_failure",
];

impl ChaosGate {
    /// Evaluate a finished sweep.
    pub fn evaluate(rows: &[ChaosRow]) -> ChaosGate {
        let all_ok = rows.iter().all(|r| r.cells.iter().all(ChaosCell::ok));
        let mut kinds_covered: Vec<&'static str> = Vec::new();
        for kind in rows
            .iter()
            .flat_map(|r| r.cells.iter())
            .flat_map(|c| c.kinds_executed.iter())
        {
            if !kinds_covered.contains(kind) {
                kinds_covered.push(kind);
            }
        }
        kinds_covered.sort_unstable();
        let full_coverage = ALL_KINDS.iter().all(|k| kinds_covered.contains(k));
        ChaosGate {
            all_ok,
            kinds_covered,
            full_coverage,
        }
    }

    /// The CI verdict.
    pub fn pass(&self) -> bool {
        self.all_ok && self.full_coverage
    }
}
