//! Fig. 15: breakdown of the extra instructions added by STATS, per
//! §III-B component (28 cores).

use crate::fig11::EXTRA_COMPONENTS;
use crate::pipeline::{run_benchmark, tuned_config, Machines, Scale, FIGURE_SEED};
use crate::render::{pct, TextTable};
use serde::{Deserialize, Serialize};
use stats_trace::{Category, InstructionBreakdown};
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// One benchmark's extra-instruction shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// `(component, share-of-extra-instructions)` in
    /// [`EXTRA_COMPONENTS`] order, plus runtime sync.
    pub shares: Vec<(Category, f64)>,
    /// Total overhead instructions.
    pub total: u64,
}

/// Components reported by Fig. 15 (the §III-B set plus runtime sync).
pub fn components() -> Vec<Category> {
    let mut v = EXTRA_COMPONENTS.to_vec();
    v.push(Category::Sync);
    v
}

struct Visit {
    scale: Scale,
}

impl WorkloadVisitor for Visit {
    type Output = Row;
    fn visit<W: Workload>(self, w: &W) -> Row {
        let machines = Machines::paper();
        let cfg = tuned_config(w, 28, self.scale);
        let report = run_benchmark(w, &machines.cores28, cfg, self.scale, FIGURE_SEED);
        let ib = InstructionBreakdown::from_trace(&report.execution.trace);
        let comps = components();
        let total: u64 = comps.iter().map(|c| ib.get(*c)).sum();
        let shares = comps
            .iter()
            .map(|c| {
                (
                    *c,
                    if total == 0 {
                        0.0
                    } else {
                        ib.get(*c) as f64 / total as f64
                    },
                )
            })
            .collect();
        Row {
            benchmark: w.name().to_string(),
            shares,
            total,
        }
    }
}

/// Compute all rows.
pub fn compute(scale: Scale) -> Vec<Row> {
    BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, Visit { scale }))
        .collect()
}

/// Render the figure.
pub fn render(scale: Scale) -> String {
    let mut header = vec!["Benchmark".to_string()];
    header.extend(components().iter().map(|c| c.name().to_string()));
    let mut t = TextTable::new(header);
    for r in compute(scale) {
        let mut cells = vec![r.benchmark.clone()];
        for (_, s) in &r.shares {
            cells.push(pct(s * 100.0));
        }
        t.row(cells);
    }
    format!(
        "Fig. 15: breakdown of extra instructions added by STATS (28 cores)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copying_and_speculation_dominate() {
        // The paper: "Most of the extra instructions added by STATS are
        // executed to copy computational states and to generate
        // speculative states."
        let rows = compute(Scale(0.2));
        let mut dominated = 0;
        for r in &rows {
            let main: f64 = r
                .shares
                .iter()
                .filter(|(c, _)| {
                    matches!(
                        c,
                        Category::StateCopy | Category::AltProducer | Category::OriginalStateGen
                    )
                })
                .map(|(_, s)| s)
                .sum();
            if main > 0.5 {
                dominated += 1;
            }
        }
        assert!(dominated >= 4, "only {dominated}/6 dominated by copy+spec");
    }

    #[test]
    fn bodytrack_state_copies_are_visible() {
        // 500 KB states vs 24 B states: bodytrack's absolute copy
        // instructions must dwarf swaptions' even though swaptions copies
        // states at more chunk boundaries.
        let rows = compute(Scale(0.2));
        let abs_copy = |name: &str| {
            let r = rows.iter().find(|r| r.benchmark == name).unwrap();
            let share = r
                .shares
                .iter()
                .find(|(c, _)| *c == Category::StateCopy)
                .unwrap()
                .1;
            share * r.total as f64
        };
        assert!(
            abs_copy("bodytrack") > 20.0 * abs_copy("swaptions"),
            "bodytrack {} vs swaptions {}",
            abs_copy("bodytrack"),
            abs_copy("swaptions")
        );
    }

    #[test]
    fn shares_sum_to_one() {
        for r in compute(Scale(0.1)) {
            if r.total > 0 {
                let sum: f64 = r.shares.iter().map(|(_, s)| s).sum();
                assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", r.benchmark);
            }
        }
    }
}
