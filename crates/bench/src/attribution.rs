//! Post-mortem speedup-loss attribution (§V-B, after \[26\]).
//!
//! The paper instruments every critical point of the STATS execution
//! model, computes the critical path, and then "to evaluate the
//! performance loss due to a given overhead, we compute the speedup
//! obtainable if that overhead would be removed … we emulate the parallel
//! execution removing only the part of the overhead targeted that is in
//! the critical path".
//!
//! We do the same with full fidelity: every overhead category is a task
//! category in the generated graph, so the what-if emulation is "zero
//! that category's durations and re-schedule". Re-scheduling collapses the
//! waits the removed tasks caused, exactly like the paper's emulation.
//! Imbalance is evaluated by equalizing per-thread useful work;
//! mispeculation by forcing all speculations to commit (and, when the
//! tuned chunk count was lowered because deeper speculation aborts, by
//! raising the chunk count back); unreachability is the residual to the
//! all-overheads-removed bound.

use crate::pipeline::{clamp_config, Scale};
use serde::{Deserialize, Serialize};
use stats_core::runtime::sequential::run_sequential;
use stats_core::runtime::simulated::{build_task_graph, GraphOptions};
use stats_core::speculation::run_speculative;
use stats_core::Config;
use stats_platform::Machine;
use stats_trace::{Category, Cycles, ThreadId};
use stats_workloads::Workload;
use std::collections::BTreeMap;
use std::fmt;

/// The loss taxonomy of §III, as presented in Figs. 10 and 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LossCategory {
    /// §III-A: uneven work across STATS threads.
    Imbalance,
    /// §III-B: speculative-state generation (alternative producers).
    AltProducer,
    /// §III-B: multiple original states.
    OriginalStateGen,
    /// §III-B: state comparisons (plus commit bookkeeping).
    StateComparison,
    /// §III-B: setup of runtime structures.
    Setup,
    /// §III-B: state copying.
    StateCopy,
    /// §III-C: thread synchronization.
    Sync,
    /// §III-D: sequential code outside the STATS region.
    OutsideRegion,
    /// §III-E: aborted speculation work and abort-avoiding chunk counts.
    Mispeculation,
    /// §III-E: not enough parallel chunks even with perfect speculation.
    Unreachability,
}

impl LossCategory {
    /// All categories, presentation order.
    pub const ALL: [LossCategory; 10] = [
        LossCategory::Imbalance,
        LossCategory::AltProducer,
        LossCategory::OriginalStateGen,
        LossCategory::StateComparison,
        LossCategory::Setup,
        LossCategory::StateCopy,
        LossCategory::Sync,
        LossCategory::OutsideRegion,
        LossCategory::Mispeculation,
        LossCategory::Unreachability,
    ];

    /// Short name as printed in figure rows.
    pub fn name(self) -> &'static str {
        match self {
            LossCategory::Imbalance => "imbalance",
            LossCategory::AltProducer => "alt-producer",
            LossCategory::OriginalStateGen => "original-states",
            LossCategory::StateComparison => "comparisons",
            LossCategory::Setup => "setup",
            LossCategory::StateCopy => "state-copy",
            LossCategory::Sync => "sync",
            LossCategory::OutsideRegion => "sequential-code",
            LossCategory::Mispeculation => "mispeculation",
            LossCategory::Unreachability => "unreachability",
        }
    }
}

impl fmt::Display for LossCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The attribution result for one benchmark/configuration/machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LossBreakdown {
    /// Benchmark name.
    pub benchmark: String,
    /// Cores of the machine (the ideal speedup).
    pub ideal: f64,
    /// Achieved speedup over the sequential baseline.
    pub achieved: f64,
    /// Marginal speedup recovered by removing each loss source
    /// (what-if speedup minus achieved speedup, in speedup points).
    pub marginal: Vec<(LossCategory, f64)>,
    /// Commit rate of the run.
    pub commit_rate: f64,
}

impl LossBreakdown {
    /// Total speedup lost versus ideal, in speedup points (the number the
    /// paper prints at the right of each Fig. 10 bar).
    pub fn total_lost(&self) -> f64 {
        (self.ideal - self.achieved).max(0.0)
    }

    /// Percentage of the ideal speedup lost in total.
    pub fn total_lost_percent(&self) -> f64 {
        self.total_lost() / self.ideal * 100.0
    }

    /// Normalized shares: each category's fraction of the total loss,
    /// scaled so shares sum to [`LossBreakdown::total_lost_percent`]
    /// (the paper's stacked-bar presentation).
    pub fn normalized_percent(&self) -> Vec<(LossCategory, f64)> {
        let marginal_sum: f64 = self.marginal.iter().map(|(_, v)| v.max(0.0)).sum();
        let total_pct = self.total_lost_percent();
        if marginal_sum <= 0.0 {
            return self.marginal.iter().map(|(c, _)| (*c, 0.0)).collect();
        }
        self.marginal
            .iter()
            .map(|(c, v)| (*c, v.max(0.0) / marginal_sum * total_pct))
            .collect()
    }

    /// Marginal loss for one category (0 if absent).
    pub fn marginal_of(&self, cat: LossCategory) -> f64 {
        self.marginal
            .iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    /// Speedup points recoverable "via engineering efforts" (§I): runtime
    /// mechanics that better implementations shrink — setup, state
    /// copying, comparisons, synchronization, imbalance.
    pub fn engineering_recoverable(&self) -> f64 {
        [
            LossCategory::Setup,
            LossCategory::StateCopy,
            LossCategory::StateComparison,
            LossCategory::Sync,
            LossCategory::Imbalance,
        ]
        .into_iter()
        .map(|c| self.marginal_of(c).max(0.0))
        .sum()
    }

    /// Speedup points that "require a deeper evolution of STATS" (§I):
    /// the speculation scheme itself — alternative producers, original
    /// states, mispeculation, unreachability — plus the Amdahl residue of
    /// code outside the region.
    pub fn requires_evolution(&self) -> f64 {
        [
            LossCategory::AltProducer,
            LossCategory::OriginalStateGen,
            LossCategory::Mispeculation,
            LossCategory::Unreachability,
            LossCategory::OutsideRegion,
        ]
        .into_iter()
        .map(|c| self.marginal_of(c).max(0.0))
        .sum()
    }

    /// The category with the largest marginal loss.
    pub fn dominant(&self) -> LossCategory {
        self.marginal
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
            .map(|(c, _)| *c)
            .unwrap_or(LossCategory::Unreachability)
    }
}

/// Trace-category → loss-category mapping for the simple what-ifs.
const CATEGORY_WHATIFS: [(Category, LossCategory); 6] = [
    (Category::AltProducer, LossCategory::AltProducer),
    (Category::OriginalStateGen, LossCategory::OriginalStateGen),
    (Category::StateComparison, LossCategory::StateComparison),
    (Category::Setup, LossCategory::Setup),
    (Category::StateCopy, LossCategory::StateCopy),
    (Category::Sync, LossCategory::Sync),
];

/// Run the full attribution for one benchmark.
///
/// `config` is the configuration under study (clamped by the caller);
/// `seed` drives all nondeterminism.
pub fn attribute<W: Workload>(
    workload: &W,
    machine: &Machine,
    config: Config,
    scale: Scale,
    seed: u64,
) -> LossBreakdown {
    let n = scale.inputs_for(workload);
    let inputs = workload.generate_inputs(n, seed);
    let outcome = run_speculative(workload, &inputs, config, seed);
    let opts = GraphOptions {
        inner: workload.inner_parallelism(),
        assume_all_commit: false,
        outside_work: workload.outside_region_work(),
        sync_ops_per_update: workload.sync_ops_per_update(),
        lazy_replicas: false,
    };

    let seq = run_sequential(workload, &inputs, seed);
    let outside = opts.outside_work.0 + opts.outside_work.1;
    let seq_cycles = machine.cost_model().work(seq.cost.work + outside);

    let base_graph = build_task_graph(workload.name(), &outcome, machine, &opts);
    let base = machine.execute(&base_graph).expect("acyclic");
    let achieved = base.speedup_vs(seq_cycles);
    let ideal = machine.topology().total_cores() as f64;

    let mut marginal: Vec<(LossCategory, f64)> = Vec::new();

    // --- per-category what-ifs (zero the category, re-schedule) ----------
    for (cat, loss) in CATEGORY_WHATIFS {
        let g = base_graph.without_category(cat);
        let s = machine.execute(&g).expect("acyclic").speedup_vs(seq_cycles);
        marginal.push((loss, (s - achieved).max(0.0)));
    }

    // --- sequential code outside the region -------------------------------
    {
        let g = base_graph.without_category(Category::OutsideRegion);
        // Removing the outside region also shrinks the baseline? No: the
        // paper measures loss against the whole-program ideal, so the
        // baseline stays the full sequential time.
        let s = machine.execute(&g).expect("acyclic").speedup_vs(seq_cycles);
        marginal.push((LossCategory::OutsideRegion, (s - achieved).max(0.0)));
    }

    // --- imbalance: equalize per-thread useful work ------------------------
    {
        // Balance the *useful* per-thread work only; aborted speculative
        // work is mispeculation, not imbalance (§III-A vs §III-E).
        let mut per_thread: BTreeMap<ThreadId, u64> = BTreeMap::new();
        for t in base_graph.tasks() {
            if t.category == Category::ChunkCompute {
                *per_thread.entry(t.thread).or_default() += t.duration.get();
            }
        }
        let compute_threads: Vec<_> = per_thread.iter().filter(|(_, v)| **v > 0).collect();
        if compute_threads.len() > 1 {
            let mean: f64 = compute_threads.iter().map(|(_, v)| **v as f64).sum::<f64>()
                / compute_threads.len() as f64;
            let scales: BTreeMap<ThreadId, f64> = compute_threads
                .iter()
                .map(|(t, v)| (**t, mean / **v as f64))
                .collect();
            let mut patched = base_graph.clone();
            patch_durations(&mut patched, &scales);
            let s = machine
                .execute(&patched)
                .expect("acyclic")
                .speedup_vs(seq_cycles);
            marginal.push((LossCategory::Imbalance, (s - achieved).max(0.0)));
        } else {
            marginal.push((LossCategory::Imbalance, 0.0));
        }
    }

    // --- mispeculation & unreachability (§III-E) --------------------------
    // Mispeculation = abort work/serialization at the tuned chunk count,
    // plus the chunk deficit when the tuner stayed low *because* deeper
    // speculation aborts. Unreachability = whatever separates the best
    // case (max chunks, perfect speculation, zero overhead) from the
    // ideal, plus a deficit that exists even with perfect speculation.
    {
        let commit_opts = GraphOptions {
            assume_all_commit: true,
            ..opts
        };
        let g = build_task_graph("all-commit", &outcome, machine, &commit_opts);
        let s_commit = machine.execute(&g).expect("acyclic").speedup_vs(seq_cycles);
        let abort_loss = (s_commit - achieved).max(0.0);

        let cores = machine.topology().total_cores();
        let max_cfg = clamp_config(
            Config {
                chunks: cores.max(config.chunks),
                ..config
            },
            n,
        );
        let (max_outcome, deficit, deficit_is_mispec) = if max_cfg.chunks > config.chunks {
            let max_outcome = run_speculative(workload, &inputs, max_cfg, seed);
            let abort_rate = 1.0 - max_outcome.commit_rate();
            let g_max = build_task_graph("max-chunks", &max_outcome, machine, &commit_opts);
            let s_max = machine
                .execute(&g_max)
                .expect("acyclic")
                .speedup_vs(seq_cycles);
            // The paper's classification: the tuner's conservative chunk
            // count is mispeculation when deeper speculation aborts
            // (facetrack, §V-B); otherwise the chunks simply are not
            // there — unreachability.
            (
                Some(max_outcome),
                (s_max - s_commit).max(0.0),
                abort_rate > 0.05,
            )
        } else {
            (None, 0.0, false)
        };

        let mispec = abort_loss + if deficit_is_mispec { deficit } else { 0.0 };
        marginal.push((LossCategory::Mispeculation, mispec));

        // Best case: max chunks, all commits, every overhead removed.
        let best_outcome = max_outcome.as_ref().unwrap_or(&outcome);
        let mut g_best = build_task_graph("bestcase", best_outcome, machine, &commit_opts);
        for (cat, _) in CATEGORY_WHATIFS {
            g_best = g_best.without_category(cat);
        }
        g_best = g_best.without_category(Category::OutsideRegion);
        g_best = g_best.without_category(Category::Commit);
        // Balance the best case too: residual imbalance is §III-A, not
        // unreachability.
        let mut best_threads: BTreeMap<ThreadId, u64> = BTreeMap::new();
        for t in g_best.tasks() {
            if t.category == Category::ChunkCompute {
                *best_threads.entry(t.thread).or_default() += t.duration.get();
            }
        }
        let busy: Vec<_> = best_threads.iter().filter(|(_, v)| **v > 0).collect();
        if busy.len() > 1 {
            let mean: f64 = busy.iter().map(|(_, v)| **v as f64).sum::<f64>() / busy.len() as f64;
            let scales: BTreeMap<ThreadId, f64> =
                busy.iter().map(|(t, v)| (**t, mean / **v as f64)).collect();
            patch_durations(&mut g_best, &scales);
        }
        let s_best = machine
            .execute(&g_best)
            .expect("acyclic")
            .speedup_vs(seq_cycles);
        let unreach = (ideal - s_best).max(0.0) + if deficit_is_mispec { 0.0 } else { deficit };
        marginal.push((LossCategory::Unreachability, unreach));
    }

    LossBreakdown {
        benchmark: workload.name().to_string(),
        ideal,
        achieved,
        marginal,
        commit_rate: outcome.commit_rate(),
    }
}

/// Decompose a realized schedule's critical path by category: every cycle
/// of the makespan is attributed to the task category occupying it on the
/// binding chain (the direct \[26\]-style view, complementary to the
/// what-if re-scheduling used by [`attribute`]).
pub fn critical_path_composition(
    result: &stats_platform::ExecutionResult,
    graph: &stats_platform::TaskGraph,
) -> Vec<(Category, Cycles)> {
    let mut totals: std::collections::BTreeMap<Category, u64> = std::collections::BTreeMap::new();
    for task in result.critical_path() {
        let entry = result.entry(task);
        let cat = graph.get(task).category;
        *totals.entry(cat).or_default() += (entry.end - entry.start).get();
    }
    totals.into_iter().map(|(c, v)| (c, Cycles(v))).collect()
}

/// Scale the compute-task durations of each thread by its factor.
fn patch_durations(graph: &mut stats_platform::TaskGraph, scales: &BTreeMap<ThreadId, f64>) {
    // TaskGraph has no mutable task access by design; rebuild through the
    // public mapping API, one thread at a time.
    let mut patched = graph.clone();
    for (&thread, &factor) in scales {
        patched = patched.map_durations(
            move |t| t.thread == thread && t.category == Category::ChunkCompute,
            move |d| Cycles((d.get() as f64 * factor).round() as u64),
        );
    }
    *graph = patched;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{tuned_config, Machines, FIGURE_SEED};
    use stats_workloads::facedet_and_track::FaceDetAndTrack;
    use stats_workloads::facetrack::FaceTrack;
    use stats_workloads::streamcluster::StreamCluster;
    use stats_workloads::swaptions::Swaptions;

    const SCALE: Scale = Scale(0.2);

    #[test]
    fn swaptions_loses_little() {
        let machines = Machines::paper();
        let w = Swaptions::paper();
        let scale = Scale(0.5);
        let cfg = tuned_config(&w, 28, scale);
        let b = attribute(&w, &machines.cores28, cfg, scale, FIGURE_SEED);
        assert!(
            b.total_lost_percent() < 40.0,
            "swaptions should be near-linear: lost {:.1}%",
            b.total_lost_percent()
        );
    }

    #[test]
    fn facetrack_is_mispeculation_limited() {
        let machines = Machines::paper();
        let w = FaceTrack::paper();
        let cfg = tuned_config(&w, 28, Scale(0.5));
        let b = attribute(&w, &machines.cores28, cfg, Scale(0.5), FIGURE_SEED);
        let mis = b.marginal_of(LossCategory::Mispeculation);
        assert!(
            mis > 4.0,
            "facetrack's 7-chunk config should lose to mispeculation: {mis:.2} in {:?}",
            b.marginal
        );
    }

    #[test]
    fn facedet_is_sync_heavy() {
        let machines = Machines::paper();
        let w = FaceDetAndTrack::paper();
        let cfg = tuned_config(&w, 28, Scale(0.5));
        let b = attribute(&w, &machines.cores28, cfg, Scale(0.5), FIGURE_SEED);
        let sync = b.marginal_of(LossCategory::Sync);
        // Sync must be a leading overhead among the §III-B/C categories.
        for cat in [
            LossCategory::AltProducer,
            LossCategory::StateComparison,
            LossCategory::Setup,
            LossCategory::StateCopy,
        ] {
            assert!(
                sync >= b.marginal_of(cat),
                "sync ({sync:.2}) should dominate {cat} ({:.2})",
                b.marginal_of(cat)
            );
        }
    }

    #[test]
    fn streamcluster_feels_its_sequential_code() {
        let machines = Machines::paper();
        let w = StreamCluster::paper();
        let cfg = tuned_config(&w, 28, SCALE);
        let b = attribute(&w, &machines.cores28, cfg, SCALE, FIGURE_SEED);
        assert!(
            b.marginal_of(LossCategory::OutsideRegion) > 0.5,
            "outside-region loss missing: {:?}",
            b.marginal
        );
    }

    #[test]
    fn normalized_shares_sum_to_total() {
        let machines = Machines::paper();
        let w = Swaptions::paper();
        let cfg = tuned_config(&w, 28, SCALE);
        let b = attribute(&w, &machines.cores28, cfg, SCALE, FIGURE_SEED);
        let sum: f64 = b.normalized_percent().iter().map(|(_, v)| v).sum();
        if b.marginal.iter().any(|(_, v)| *v > 0.0) {
            assert!(
                (sum - b.total_lost_percent()).abs() < 1e-6,
                "shares {sum} vs total {}",
                b.total_lost_percent()
            );
        }
    }

    #[test]
    fn critical_path_composition_covers_the_makespan() {
        use stats_core::runtime::simulated::{build_task_graph, GraphOptions};
        use stats_core::speculation::run_speculative;
        use stats_core::StateDependence as _;
        let machines = Machines::paper();
        let w = Swaptions::paper();
        let scale = Scale(0.1);
        let n = scale.inputs_for(&w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let cfg = tuned_config(&w, 28, scale);
        let outcome = run_speculative(&w, &inputs, cfg, FIGURE_SEED);
        let opts = GraphOptions {
            inner: w.inner_parallelism(),
            assume_all_commit: false,
            outside_work: w.outside_region_work(),
            sync_ops_per_update: w.sync_ops_per_update(),
            lazy_replicas: false,
        };
        let graph = build_task_graph("cp", &outcome, &machines.cores28, &opts);
        let result = machines.cores28.execute(&graph).unwrap();
        let composition = critical_path_composition(&result, &graph);
        let covered: u64 = composition.iter().map(|(_, c)| c.get()).sum();
        // The binding chain is contiguous: it accounts for every cycle of
        // the makespan.
        assert_eq!(covered, result.makespan.get());
        // Useful work must appear on the critical path.
        assert!(composition
            .iter()
            .any(|(c, v)| *c == Category::ChunkCompute && v.get() > 0));
    }

    #[test]
    fn engineering_vs_evolution_partition_covers_all_categories() {
        let machines = Machines::paper();
        let w = Swaptions::paper();
        let cfg = tuned_config(&w, 28, SCALE);
        let b = attribute(&w, &machines.cores28, cfg, SCALE, FIGURE_SEED);
        let partition = b.engineering_recoverable() + b.requires_evolution();
        let total: f64 = b.marginal.iter().map(|(_, v)| v.max(0.0)).sum();
        assert!(
            (partition - total).abs() < 1e-9,
            "partition {partition} vs total {total}"
        );
    }

    #[test]
    fn facedet_losses_are_mostly_engineering() {
        // §V's headline for facedet-and-track: its dominant loss (sync) is
        // the kind "that can be optimized via engineering efforts".
        let machines = Machines::paper();
        let w = FaceDetAndTrack::paper();
        let cfg = tuned_config(&w, 28, Scale(0.5));
        let b = attribute(&w, &machines.cores28, cfg, Scale(0.5), FIGURE_SEED);
        assert!(
            b.engineering_recoverable() > 0.0,
            "no engineering-recoverable loss at all"
        );
    }

    #[test]
    fn achieved_never_exceeds_ideal() {
        let machines = Machines::paper();
        let w = Swaptions::paper();
        let cfg = tuned_config(&w, 28, SCALE);
        let b = attribute(&w, &machines.cores28, cfg, SCALE, FIGURE_SEED);
        assert!(b.achieved <= b.ideal + 1e-9);
        assert!(b.achieved > 1.0);
    }
}
