//! Table II: cache misses and branch mispredictions of the original and
//! STATS-transformed benchmarks (sequential, original TLP on 28 cores,
//! STATS on 28 cores), "computed by adding all of the per-core counters".

use crate::pipeline::Scale;
use crate::render::{billions, pct, TextTable};
use serde::{Deserialize, Serialize};
use stats_uarch::{ConfigCounters, CounterSet, HierarchyConfig, MultiCore};
use stats_workloads::{dispatch, ExecMode, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// One Table II row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Counters under the three configurations.
    pub counters: ConfigCounters,
}

struct Visit {
    scale: Scale,
}

fn replay_mode<W: Workload>(w: &W, mode: ExecMode, scale: Scale) -> CounterSet {
    let (cores, sockets) = match mode {
        ExecMode::Sequential => (1, 1),
        _ => (28, 2),
    };
    let mut mc = MultiCore::new(cores, sockets, &HierarchyConfig::haswell());
    for (i, profile) in w.uarch_profiles(mode).into_iter().enumerate() {
        let mut p = profile;
        // Scale absolute volumes (rates are unaffected).
        p.accesses = ((p.accesses as f64 * scale.0) as u64).max(10_000);
        p.branches = ((p.branches as f64 * scale.0) as u64).max(1_000);
        mc.replay(i % cores, &p, 0x7AB1E2 ^ i as u64);
    }
    mc.counters()
}

impl WorkloadVisitor for Visit {
    type Output = Row;
    fn visit<W: Workload>(self, w: &W) -> Row {
        Row {
            benchmark: w.name().to_string(),
            counters: ConfigCounters {
                sequential: replay_mode(w, ExecMode::Sequential, self.scale),
                original: replay_mode(w, ExecMode::OriginalTlp, self.scale),
                stats: replay_mode(w, ExecMode::StatsTlp, self.scale),
            },
        }
    }
}

/// Compute all rows.
pub fn compute(scale: Scale) -> Vec<Row> {
    BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, Visit { scale }))
        .collect()
}

fn cell(c: &stats_uarch::LevelCounters) -> String {
    format!("{} ({})", billions(c.misses), pct(c.miss_rate() * 100.0))
}

fn branch_cell(c: &CounterSet) -> String {
    format!(
        "{} ({})",
        billions(c.branch_misses),
        pct(c.branch_rate() * 100.0)
    )
}

/// Estimated CPI per configuration (the `stats-uarch` CPI model closing
/// the loop between Table II's counters and execution cost).
pub fn cpi_summary(scale: Scale) -> Vec<(String, f64, f64, f64)> {
    let model = stats_uarch::CpiModel::haswell();
    compute(scale)
        .into_iter()
        .map(|r| {
            (
                r.benchmark,
                model.cpi(&r.counters.sequential),
                model.cpi(&r.counters.original),
                model.cpi(&r.counters.stats),
            )
        })
        .collect()
}

/// Render the CPI view of Table II.
pub fn render_cpi(scale: Scale) -> String {
    let mut t = TextTable::new(vec!["Benchmark", "seq CPI", "orig-28 CPI", "stats-28 CPI"]);
    for (name, seq, orig, stats) in cpi_summary(scale) {
        t.row(vec![
            name,
            format!("{seq:.2}"),
            format!("{orig:.2}"),
            format!("{stats:.2}"),
        ]);
    }
    format!(
        "Table II (derived): estimated CPI from the cache/branch counters

{}",
        t.render()
    )
}

/// Render the table (misses in billions, rates in parentheses).
pub fn render(scale: Scale) -> String {
    let mut t = TextTable::new(vec!["Benchmark", "Mode", "L1D", "L2", "LLC", "BR"]);
    for r in compute(scale) {
        for (mode, c) in [
            ("sequential", &r.counters.sequential),
            ("original-28", &r.counters.original),
            ("stats-28", &r.counters.stats),
        ] {
            t.row(vec![
                r.benchmark.clone(),
                mode.to_string(),
                cell(&c.l1d),
                cell(&c.l2),
                cell(&c.llc),
                branch_cell(c),
            ]);
        }
    }
    format!(
        "Table II: cache misses and branch mispredictions, billions (rate)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: Scale = Scale(0.02);

    #[test]
    fn covers_all_benchmarks_and_modes() {
        let rows = compute(SCALE);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            for c in [
                &r.counters.sequential,
                &r.counters.original,
                &r.counters.stats,
            ] {
                assert!(c.l1d.accesses > 0, "{}: empty counters", r.benchmark);
                assert!(c.branches > 0);
            }
        }
    }

    #[test]
    fn trackers_lose_locality_under_stats() {
        // Table II: "facetrack and facedet-and-track lose some data
        // locality when STATS is used."
        let rows = compute(SCALE);
        for name in ["facetrack", "facedet-and-track"] {
            let r = rows.iter().find(|r| r.benchmark == name).unwrap();
            assert!(
                r.counters.stats.l1d.miss_rate() > r.counters.sequential.l1d.miss_rate(),
                "{name}: stats {:.4} vs seq {:.4}",
                r.counters.stats.l1d.miss_rate(),
                r.counters.sequential.l1d.miss_rate()
            );
        }
    }

    #[test]
    fn stream_benchmarks_access_less_under_stats() {
        // They converge faster, so absolute traffic drops vs original TLP.
        let rows = compute(SCALE);
        for name in ["streamcluster", "streamclassifier"] {
            let r = rows.iter().find(|r| r.benchmark == name).unwrap();
            assert!(
                r.counters.stats.l1d.accesses < r.counters.original.l1d.accesses,
                "{name}: {} vs {}",
                r.counters.stats.l1d.accesses,
                r.counters.original.l1d.accesses
            );
        }
    }

    #[test]
    fn swaptions_misses_stay_low() {
        let rows = compute(SCALE);
        let s = rows.iter().find(|r| r.benchmark == "swaptions").unwrap();
        assert!(s.counters.sequential.l1d.miss_rate() < 0.10);
        assert!(s.counters.stats.l1d.miss_rate() < 0.10);
    }

    #[test]
    fn cpi_reflects_memory_boundedness() {
        // The stream benchmarks' near-total L2/LLC miss rates make them
        // memory bound: their CPI must exceed compute-bound swaptions'.
        let rows = cpi_summary(SCALE);
        let cpi_of = |name: &str| rows.iter().find(|r| r.0 == name).unwrap().1;
        assert!(
            cpi_of("streamclassifier") > 2.0 * cpi_of("swaptions"),
            "streamclassifier {:.2} vs swaptions {:.2}",
            cpi_of("streamclassifier"),
            cpi_of("swaptions")
        );
    }

    #[test]
    fn prefetching_would_cut_streaming_miss_rates() {
        // Table II's very high L2/LLC miss rates on the streaming
        // benchmarks partly reflect our prefetcher-less default hierarchy;
        // enabling the next-line prefetcher recovers much of the gap
        // (recorded as a known deviation in EXPERIMENTS.md).
        use stats_uarch::{HierarchyConfig, MultiCore};
        use stats_workloads::streamclassifier::StreamClassifier;
        use stats_workloads::Workload as _;

        let w = StreamClassifier::paper();
        let mut profile = w.uarch_profiles(ExecMode::Sequential).remove(0);
        profile.accesses = 400_000;
        profile.branches = 40_000;

        let mut plain = MultiCore::new(1, 1, &HierarchyConfig::haswell());
        let mut fetching = MultiCore::new(1, 1, &HierarchyConfig::haswell_prefetching());
        plain.replay(0, &profile, 1);
        fetching.replay(0, &profile, 1);
        assert!(
            fetching.counters().l1d.miss_rate() < plain.counters().l1d.miss_rate(),
            "prefetch should help the streaming profile: {} vs {}",
            fetching.counters().l1d.miss_rate(),
            plain.counters().l1d.miss_rate()
        );
    }

    #[test]
    fn bodytrack_absolute_misses_grow_under_stats() {
        // "the number of absolute misses in bodytrack grows in the STATS
        // version because the number of instructions executed is greater".
        let rows = compute(SCALE);
        let b = rows.iter().find(|r| r.benchmark == "bodytrack").unwrap();
        assert!(b.counters.stats.l1d.misses > b.counters.sequential.l1d.misses);
    }
}
