//! Scaling experiments for the paper's §I headline claims:
//!
//! * "This new source of TLP increases with the size of the input and it
//!   has the potential to generate scalable performance with the number
//!   of cores."
//!
//! The paper's evaluation fixes the input scale and two core counts; this
//! module sweeps both axes, the natural extension experiment.

use crate::pipeline::{clamp_config, run_benchmark, tuned_config, Scale, FIGURE_SEED};
use crate::render::{f2, TextTable};
use serde::{Deserialize, Serialize};
use stats_core::Config;
use stats_platform::{CostModel, Machine, Topology};
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// Speedups across an axis sweep for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Benchmark name.
    pub benchmark: String,
    /// `(axis value, speedup)` samples.
    pub samples: Vec<(f64, f64)>,
}

impl ScalingRow {
    /// Whether speedup is non-decreasing along the axis (within `slack`).
    pub fn is_monotone(&self, slack: f64) -> bool {
        self.samples.windows(2).all(|w| w[1].1 >= w[0].1 - slack)
    }

    /// Ratio of the last sample's speedup to the first's.
    pub fn growth(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(&(_, a)), Some(&(_, b))) if a > 0.0 => b / a,
            _ => 1.0,
        }
    }
}

/// Sweep the input scale at 28 cores under each benchmark's tuned
/// configuration (STATS TLP only, so the effect is pure).
pub fn input_scaling(scales: &[f64]) -> Vec<ScalingRow> {
    struct V<'a> {
        scales: &'a [f64],
    }
    impl WorkloadVisitor for V<'_> {
        type Output = ScalingRow;
        fn visit<W: Workload>(self, w: &W) -> ScalingRow {
            let machine = Machine::paper_machine();
            let samples = self
                .scales
                .iter()
                .map(|&x| {
                    let scale = Scale(x);
                    let mut cfg = tuned_config(w, 28, scale);
                    cfg.combine_inner_tlp = false;
                    let report = run_benchmark(w, &machine, cfg, scale, FIGURE_SEED);
                    (x, report.speedup())
                })
                .collect();
            ScalingRow {
                benchmark: w.name().to_string(),
                samples,
            }
        }
    }
    BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, V { scales }))
        .collect()
}

/// Sweep the core count at native input scale, re-tuning the chunk count
/// to one chunk per core (the configuration STATS would generate for each
/// machine).
pub fn core_scaling(core_counts: &[usize]) -> Vec<ScalingRow> {
    struct V<'a> {
        cores: &'a [usize],
    }
    impl WorkloadVisitor for V<'_> {
        type Output = ScalingRow;
        fn visit<W: Workload>(self, w: &W) -> ScalingRow {
            let scale = Scale(1.0);
            let n = scale.inputs_for(w);
            let samples = self
                .cores
                .iter()
                .map(|&cores| {
                    // Model machines as multiples of 14-core sockets.
                    let sockets = cores.div_ceil(14).max(1);
                    let per_socket = cores / sockets;
                    let machine = Machine::new(
                        Topology::new(sockets, per_socket.max(1)),
                        CostModel::default(),
                    );
                    let tuned = tuned_config(w, cores, scale);
                    let cfg = clamp_config(
                        Config {
                            chunks: tuned.chunks.max(per_socket * sockets).min(2 * cores),
                            ..tuned
                        },
                        n,
                    );
                    let report = run_benchmark(w, &machine, cfg, scale, FIGURE_SEED);
                    (cores as f64, report.speedup())
                })
                .collect();
            ScalingRow {
                benchmark: w.name().to_string(),
                samples,
            }
        }
    }
    BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, V { cores: core_counts }))
        .collect()
}

fn render_rows(title: &str, axis: &str, rows: &[ScalingRow]) -> String {
    let mut header = vec!["Benchmark".to_string()];
    if let Some(first) = rows.first() {
        for (x, _) in &first.samples {
            header.push(format!("{axis}={x}"));
        }
    }
    header.push("growth".to_string());
    let mut t = TextTable::new(header);
    for r in rows {
        let mut cells = vec![r.benchmark.clone()];
        for (_, s) in &r.samples {
            cells.push(f2(*s));
        }
        cells.push(format!("{:.2}x", r.growth()));
        t.row(cells);
    }
    format!("{title}\n\n{}", t.render())
}

/// Render both sweeps.
pub fn render() -> String {
    format!(
        "{}\n{}",
        render_rows(
            "Scaling with input size (STATS TLP, 28 cores; §I's claim that \
             the new TLP grows with the input)",
            "scale",
            &input_scaling(&[0.125, 0.25, 0.5, 1.0]),
        ),
        render_rows(
            "Scaling with core count (native inputs, one chunk per core)",
            "cores",
            &core_scaling(&[7, 14, 28, 56]),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_input_size() {
        let rows = input_scaling(&[0.1, 0.4, 1.0]);
        let growing = rows.iter().filter(|r| r.growth() > 1.1).count();
        assert!(
            growing >= 5,
            "input-size scaling held for only {growing}/6 benchmarks: {rows:?}"
        );
    }

    #[test]
    fn speedup_grows_with_cores_for_short_memory_benchmarks() {
        let rows = core_scaling(&[7, 28]);
        for name in ["swaptions", "streamcluster", "streamclassifier"] {
            let r = rows.iter().find(|r| r.benchmark == name).unwrap();
            assert!(
                r.growth() > 1.5,
                "{name} should scale with cores: {:?}",
                r.samples
            );
        }
    }

    #[test]
    fn input_scaling_is_roughly_monotone() {
        // "Roughly": the tracking benchmarks' abort patterns are seed- and
        // size-dependent, and a mispeculation burst at one input size can
        // cost a couple of speedup points, so the slack is generous.
        let rows = input_scaling(&[0.125, 0.5, 1.0]);
        for r in &rows {
            assert!(
                r.is_monotone(2.5),
                "{}: speedup regressed along input size: {:?}",
                r.benchmark,
                r.samples
            );
        }
    }
}
