//! One-call assembly of the full experiment suite (what `--bin all`
//! prints).

use crate::pipeline::Scale;

/// Render every table and figure, in the paper's order, plus the derived
/// CPI view. `fig16_runs` controls Fig. 16's repetition count.
pub fn full_report(scale: Scale, fig16_runs: usize) -> String {
    let sections = [
        crate::table1::render(scale),
        crate::fig09::render(scale),
        crate::fig10::render(scale),
        crate::fig11::render(scale),
        crate::fig12::render(scale),
        crate::fig13::render(scale),
        crate::fig14::render(scale),
        crate::fig15::render(scale),
        crate::table2::render(scale),
        crate::table2::render_cpi(scale),
        crate::fig16::render(scale, fig16_runs),
    ];
    sections.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_report_contains_every_section() {
        let report = full_report(Scale(0.05), 3);
        for needle in [
            "Table I:",
            "Fig. 9:",
            "Fig. 10:",
            "Fig. 11:",
            "Fig. 12a:",
            "Fig. 12b:",
            "Fig. 13a:",
            "Fig. 13b:",
            "Fig. 14:",
            "Fig. 15:",
            "Table II:",
            "Table II (derived):",
            "Fig. 16:",
        ] {
            assert!(report.contains(needle), "missing section {needle}");
        }
    }
}
