//! Fig. 16: output-quality distributions over repeated runs, original
//! (sequential) program versus the STATS-parallelized binary.
//!
//! The paper runs each program two hundred times and compares output
//! qualities; "counterintuitively … STATS tends to improve the quality of
//! the outputs."

use crate::pipeline::{tuned_config, Scale};
use crate::render::{f2, TextTable};
use serde::{Deserialize, Serialize};
use stats_core::runtime::sequential::run_sequential;
use stats_core::speculation::run_speculative;
use stats_workloads::quality::QualityDistribution;
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// One benchmark's quality distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Sequential (original program) distribution.
    pub sequential: QualityDistribution,
    /// STATS-parallelized distribution.
    pub stats: QualityDistribution,
}

impl Row {
    /// Probability that a random STATS run scores above a random
    /// sequential run (0.5 = indistinguishable; the paper finds STATS
    /// "tends to improve the quality", i.e. >= 0.5).
    pub fn stats_superiority(&self) -> f64 {
        stats_workloads::quality::superiority(self.stats.samples(), self.sequential.samples())
    }
}

struct Visit {
    scale: Scale,
    runs: usize,
}

impl WorkloadVisitor for Visit {
    type Output = Row;
    fn visit<W: Workload>(self, w: &W) -> Row {
        let n = self.scale.inputs_for(w);
        let cfg = tuned_config(w, 28, self.scale);
        // A fixed input stream; nondeterminism varies per run seed, like
        // re-running the binary on the same inputs.
        let inputs = w.generate_inputs(n, 0xF16);
        let mut seq_scores = Vec::with_capacity(self.runs);
        let mut stats_scores = Vec::with_capacity(self.runs);
        for run in 0..self.runs {
            let seed = 0x9_0000 + run as u64;
            let seq = run_sequential(w, &inputs, seed);
            seq_scores.push(w.quality(&inputs, &seq.outputs));
            let spec = run_speculative(w, &inputs, cfg, seed);
            stats_scores.push(w.quality(&inputs, &spec.outputs));
        }
        Row {
            benchmark: w.name().to_string(),
            sequential: QualityDistribution::from_samples(seq_scores),
            stats: QualityDistribution::from_samples(stats_scores),
        }
    }
}

/// Compute all rows with `runs` repetitions each.
pub fn compute(scale: Scale, runs: usize) -> Vec<Row> {
    BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, Visit { scale, runs }))
        .collect()
}

/// Render summary statistics of both distributions.
pub fn render(scale: Scale, runs: usize) -> String {
    let mut t = TextTable::new(vec![
        "Benchmark",
        "Seq median",
        "Seq p25",
        "Seq p75",
        "STATS median",
        "STATS p25",
        "STATS p75",
        "P(STATS > seq)",
    ]);
    for r in compute(scale, runs) {
        let sup = r.stats_superiority();
        t.row(vec![
            r.benchmark.clone(),
            f2(r.sequential.median()),
            f2(r.sequential.percentile(25.0)),
            f2(r.sequential.percentile(75.0)),
            f2(r.stats.median()),
            f2(r.stats.percentile(25.0)),
            f2(r.stats.percentile(75.0)),
            f2(sup),
        ]);
    }
    format!(
        "Fig. 16: output-quality distributions over {runs} runs (higher is better)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_have_requested_runs() {
        let rows = compute(Scale(0.1), 8);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.sequential.len(), 8);
            assert_eq!(r.stats.len(), 8);
        }
    }

    #[test]
    fn stats_quality_is_not_degraded() {
        // The paper's headline: STATS preserves (and tends to improve)
        // output quality. Allow a small tolerance per benchmark.
        //
        // Scale(0.3) rather than smaller: with 28 chunks, a smaller input
        // stream leaves each chunk only ~10 updates — far below swaptions'
        // EWMA memory (~50 batches) — so per-chunk estimates carry
        // miniature-scale Monte-Carlo variance the native configuration
        // never sees. At 0.3 the chunk length clears the artifact.
        let rows = compute(Scale(0.3), 10);
        for r in &rows {
            assert!(
                r.stats.median() >= r.sequential.median() - 0.12,
                "{}: stats median {:.3} vs seq {:.3}",
                r.benchmark,
                r.stats.median(),
                r.sequential.median()
            );
        }
    }

    #[test]
    fn stats_distributions_are_not_meaningfully_worse() {
        // Quantitative form of the paper's Fig. 16 claim. The rank
        // statistic is sensitive to arbitrarily small consistent shifts
        // (chunk-warmup dips move the classifier's accuracy by <1%), so a
        // low P(STATS > seq) is only a failure when the practical gap is
        // non-trivial. Scale(0.3) for the same chunk-length reason as
        // `stats_quality_is_not_degraded`.
        let rows = compute(Scale(0.3), 10);
        for r in &rows {
            let sup = r.stats_superiority();
            let gap = r.sequential.median() - r.stats.median();
            assert!(
                sup >= 0.3 || gap < 0.02,
                "{}: STATS meaningfully worse (P = {sup:.2}, median gap {gap:.3})",
                r.benchmark
            );
        }
    }

    #[test]
    fn nondeterminism_produces_spread() {
        let rows = compute(Scale(0.1), 10);
        // At least half the benchmarks show run-to-run variance.
        let spread = rows.iter().filter(|r| r.sequential.std_dev() > 0.0).count();
        assert!(spread >= 3, "only {spread}/6 benchmarks vary across runs");
    }
}
