//! Native wall-clock attribution, and its comparison against the
//! simulator's virtual-time attribution.
//!
//! [`attribution`](crate::attribution) answers §V-B's question — *where
//! did the speedup go?* — for the simulated runtime, in deterministic
//! virtual time. This module answers the same question for the real
//! pooled executor: it runs a benchmark with the wall-clock profiler
//! attached ([`stats_telemetry::profiler`]), attributes the captured
//! span graph to the paper's six overhead groups, and aggregates over
//! seeds as mean ± confidence interval (Touati's methodology — a
//! wall-clock speedup claim without an interval is a coin flip).
//!
//! The two attributions run on different substrates (a cost-model
//! machine vs. the host), so their *numbers* are not comparable; their
//! *shape* must be (EXPERIMENTS.md methodology). [`ShapeComparison`]
//! pins that: normalized loss orderings must not materially invert over
//! the structurally comparable groups, and what-if projections must
//! point the same way. Four groups are excluded from the ordering by
//! construction and documented here rather than forced:
//!
//! * **synchronization** — the simulator charges modeled
//!   `sync_ops_per_update` lock traffic inside inner-parallel updates;
//!   the native executor runs `run_segment` serially per chunk and
//!   never performs those operations, so its sync cost is the (tiny)
//!   per-seal handoff.
//! * **sequential** — the native harness times the parallelized region
//!   only; outside-region work exists only in the simulator's model.
//! * **unreachability** — both sides define it as a residual, but
//!   against different ideals (28 modeled cores vs. the pool width),
//!   so only its *presence* is comparable, not its rank.
//! * **imbalance** — the simulator's imbalance is pure cost-model skew;
//!   the native number is wall-clock wait at chunk barriers, which on a
//!   time-shared CI host (often with fewer hardware threads than pool
//!   workers) is dominated by OS preemption rather than work
//!   distribution. The two only align on a dedicated host with cores ≥
//!   workers, which CI never guarantees.

use crate::attribution::{attribute, LossBreakdown, LossCategory};
use crate::pipeline::{tuned_config, Scale};
use stats_core::config::Config;
use stats_core::fault::FaultPlan;
use stats_core::report::ChunkDecision;
use stats_core::runtime::pool::WorkerPool;
use stats_core::runtime::threaded::{run_threaded_faulted_on, run_threaded_on};
use stats_platform::{CostModel, Machine, Topology};
use stats_telemetry::json::JsonObject;
use stats_telemetry::profiler::{WhatIfs, WALL_LOSSES};
use stats_telemetry::{Estimate, Profiler, TelemetrySink, WallAttribution, WallLoss, WallProfile};
use stats_workloads::Workload;

/// Materiality threshold for ordering comparisons: a loss group whose
/// normalized share is below this fraction is "small" and exempt from
/// inversion checks (shape-level agreement, not rank of noise).
pub const MATERIAL_SHARE: f64 = 0.15;

/// Fault-plane observations riding along a faulted profile (`--faults`):
/// the first seed's live fault counters, next to what the plan asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultReport {
    /// Injections the plan carries (sites may or may not execute).
    pub planned: usize,
    /// `FaultsInjected` observed on the first profiled seed.
    pub injected: u64,
    /// `RetriesScheduled` observed on the first profiled seed.
    pub retries: u64,
    /// `WorkersLost` observed on the first profiled seed.
    pub workers_lost: u64,
}

/// One benchmark profiled over several seeds on the pooled runtime.
#[derive(Debug)]
pub struct ProfileReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Pool width profiled.
    pub workers: usize,
    /// Configuration the runs used.
    pub config: Config,
    /// Seeds profiled, in run order.
    pub seeds: Vec<u64>,
    /// Per-seed attributions (same order as `seeds`).
    pub runs: Vec<WallAttribution>,
    /// The first seed's full profile, kept for trace/table rendering.
    pub profile: WallProfile,
    /// Projected (re-scheduled) speedup, mean ± CI over seeds.
    pub projected: Estimate,
    /// Measured wall-clock speedup, mean ± CI over seeds.
    pub measured: Estimate,
    /// Per-group losses, mean ± CI over seeds.
    pub losses: Vec<(WallLoss, Estimate)>,
    /// What-if projections, mean ± CI over seeds.
    pub whatif_sync_free: Estimate,
    /// See [`ProfileReport::whatif_sync_free`].
    pub whatif_copies_free: Estimate,
    /// See [`ProfileReport::whatif_sync_free`].
    pub whatif_double_workers: Estimate,
    /// See [`ProfileReport::whatif_sync_free`]: projected speedup if no
    /// chunk had mispeculated (the ceiling a breadth > 1 run chases).
    pub whatif_mispeculation_free: Estimate,
    /// Whether decisions/outputs with profiling on matched a
    /// profiling-off run bit-for-bit (first seed).
    pub parity: bool,
    /// Fault-plane observations when the runs carried a fault plan
    /// (`None` for fault-free profiles).
    pub faults: Option<FaultReport>,
}

impl ProfileReport {
    /// Mean loss for one group.
    pub fn loss_mean(&self, loss: WallLoss) -> f64 {
        self.losses
            .iter()
            .find(|(l, _)| *l == loss)
            .map_or(0.0, |(_, e)| e.mean)
    }

    /// Losses normalized to shares of their sum (all zero when no loss).
    pub fn normalized_losses(&self) -> Vec<(WallLoss, f64)> {
        let total: f64 = self.losses.iter().map(|(_, e)| e.mean).sum();
        self.losses
            .iter()
            .map(|(l, e)| (*l, if total > 0.0 { e.mean / total } else { 0.0 }))
            .collect()
    }

    /// Serialize as one JSON object (used by `--format json` and the
    /// `native_profile` bench artifact).
    pub fn to_json(&self) -> String {
        let est = |e: &Estimate| format!("{{\"mean\":{:.6},\"ci\":{:.6}}}", e.mean, e.half_width);
        let mut losses = String::from("{");
        for (i, (l, e)) in self.losses.iter().enumerate() {
            if i > 0 {
                losses.push(',');
            }
            losses.push_str(&format!("\"{}\":{}", l.name(), est(e)));
        }
        losses.push('}');
        let mut o = JsonObject::new();
        o.str("benchmark", &self.benchmark)
            .u64("workers", self.workers as u64)
            .u64("chunks", self.config.chunks as u64)
            .u64("seeds", self.seeds.len() as u64)
            .f64(
                "commit_rate",
                self.runs.first().map_or(1.0, |r| r.commit_rate),
            )
            .f64("ideal", self.runs.first().map_or(0.0, |r| r.ideal))
            .raw("projected", &est(&self.projected))
            .raw("measured", &est(&self.measured))
            .raw("losses", &losses)
            .raw(
                "whatifs",
                &format!(
                    "{{\"sync_free\":{},\"copies_free\":{},\"double_workers\":{},\"mispeculation_free\":{}}}",
                    est(&self.whatif_sync_free),
                    est(&self.whatif_copies_free),
                    est(&self.whatif_double_workers),
                    est(&self.whatif_mispeculation_free)
                ),
            )
            .bool("parity", self.parity)
            .u64("dropped", self.runs.iter().map(|r| r.dropped).sum());
        if let Some(f) = &self.faults {
            let mut fo = JsonObject::new();
            fo.u64("planned", f.planned as u64)
                .u64("injected", f.injected)
                .u64("retries", f.retries)
                .u64("workers_lost", f.workers_lost);
            o.raw("faults", &fo.finish());
        }
        o.finish()
    }
}

/// Profile `workload` on `pool` over `seeds`, attributing each run and
/// aggregating per Touati. The first seed is additionally run *without*
/// the profiler to assert decisions/outputs are unchanged by profiling.
pub fn profile_workload<W: Workload>(
    w: &W,
    pool: &WorkerPool,
    scale: Scale,
    seeds: &[u64],
) -> ProfileReport {
    profile_workload_configured(w, pool, scale, seeds, tuned_config(w, 28, scale))
}

/// [`profile_workload`] under an explicit configuration (the CLI's
/// `--snapshot` / override flags route through this).
pub fn profile_workload_configured<W: Workload>(
    w: &W,
    pool: &WorkerPool,
    scale: Scale,
    seeds: &[u64],
    cfg: Config,
) -> ProfileReport {
    profile_workload_faulted(w, pool, scale, seeds, cfg, &FaultPlan::none())
}

/// [`profile_workload_configured`] with a fault plan injected into every
/// profiled run (the CLI's `--faults`): the attribution then covers the
/// recovery path — retries, backoff, worker loss — while the parity
/// check still demands the profiler itself stays observation-only. An
/// empty plan is the exact fault-free path.
pub fn profile_workload_faulted<W: Workload>(
    w: &W,
    pool: &WorkerPool,
    scale: Scale,
    seeds: &[u64],
    cfg: Config,
    faults: &FaultPlan,
) -> ProfileReport {
    assert!(!seeds.is_empty(), "at least one seed");
    let mut runs = Vec::with_capacity(seeds.len());
    let mut first_profile: Option<WallProfile> = None;
    let mut parity = true;
    let mut fault_report = None;

    for (i, &seed) in seeds.iter().enumerate() {
        let n = scale.inputs_for(w);
        let inputs = w.generate_inputs(n, seed);
        let sink =
            TelemetrySink::new(cfg.chunks.max(1)).with_profiler(Profiler::new(pool.workers()));
        let run = run_threaded_faulted_on(pool, w, &inputs, cfg, seed, faults, Some(&sink));
        let aborted: Vec<bool> = run
            .decisions
            .iter()
            .map(|d| *d == ChunkDecision::Aborted)
            .collect();
        let elapsed_ns = u64::try_from(run.elapsed.as_nanos()).unwrap_or(u64::MAX);
        let profiler = sink.profiler().expect("profiler attached above");
        let profile = WallProfile::assemble_with_breadth(
            profiler,
            aborted,
            cfg.spec_breadth.max(1),
            elapsed_ns,
        );
        if i == 0 {
            // Profiling must be observation-only: a profiler-free run
            // with the same seed (and the same plan) must decide and
            // produce identically.
            let bare = run_threaded_faulted_on(pool, w, &inputs, cfg, seed, faults, None);
            parity = bare.decisions == run.decisions
                && bare.outputs.len() == run.outputs.len()
                && w.quality(&inputs, &bare.outputs).to_bits()
                    == w.quality(&inputs, &run.outputs).to_bits();
            first_profile = Some(profile.clone());
            if !faults.injections().is_empty() {
                let snap = sink.snapshot();
                fault_report = Some(FaultReport {
                    planned: faults.injections().len(),
                    injected: snap.get(stats_telemetry::Counter::FaultsInjected),
                    retries: snap.get(stats_telemetry::Counter::RetriesScheduled),
                    workers_lost: snap.get(stats_telemetry::Counter::WorkersLost),
                });
            }
        }
        runs.push(profile.attribute());
    }

    let collect = |f: &dyn Fn(&WallAttribution) -> f64| {
        Estimate::from_samples(&runs.iter().map(f).collect::<Vec<_>>())
    };
    let losses = WALL_LOSSES
        .iter()
        .map(|&l| (l, collect(&|r: &WallAttribution| r.loss(l))))
        .collect();

    ProfileReport {
        benchmark: w.name().to_string(),
        workers: pool.workers(),
        config: cfg,
        seeds: seeds.to_vec(),
        projected: collect(&|r| r.projected),
        measured: collect(&|r| r.measured),
        losses,
        whatif_sync_free: collect(&|r| r.whatifs.sync_free),
        whatif_copies_free: collect(&|r| r.whatifs.copies_free),
        whatif_double_workers: collect(&|r| r.whatifs.double_workers),
        whatif_mispeculation_free: collect(&|r| r.whatifs.mispeculation_free),
        profile: first_profile.expect("at least one seed profiled"),
        parity,
        faults: fault_report,
        runs,
    }
}

/// Measured profiling overhead in percent: min-over-`reps` wall time of
/// a profiled run vs. a counters-only run on the same pool. Negative
/// values mean the difference drowned in scheduler noise.
pub fn profiling_overhead_pct<W: Workload>(
    w: &W,
    pool: &WorkerPool,
    scale: Scale,
    seed: u64,
    reps: usize,
) -> f64 {
    let n = scale.inputs_for(w);
    let inputs = w.generate_inputs(n, seed);
    let cfg = tuned_config(w, 28, scale);
    let min_ns = |profiled: bool| -> f64 {
        let mut best = f64::INFINITY;
        // One warm-up plus `reps` timed runs, minimum taken — the
        // standard low-noise estimator for deterministic work.
        for r in 0..=reps {
            let sink = if profiled {
                Some(
                    TelemetrySink::new(cfg.chunks.max(1))
                        .with_profiler(Profiler::new(pool.workers())),
                )
            } else {
                Some(TelemetrySink::new(cfg.chunks.max(1)))
            };
            let run = run_threaded_on(pool, w, &inputs, cfg, seed, sink.as_ref());
            if r > 0 {
                best = best.min(run.elapsed.as_nanos() as f64);
            }
        }
        best
    };
    let bare = min_ns(false);
    let prof = min_ns(true);
    (prof - bare) / bare * 100.0
}

// ---------------------------------------------------------------------------
// Native vs. simulated shape comparison
// ---------------------------------------------------------------------------

/// Map a simulated [`LossBreakdown`] into the six coarse wall-clock
/// groups so both attributions speak the same vocabulary.
pub fn simulated_six_groups(b: &LossBreakdown) -> Vec<(WallLoss, f64)> {
    let m = |c: LossCategory| b.marginal_of(c);
    vec![
        (WallLoss::Imbalance, m(LossCategory::Imbalance)),
        (
            WallLoss::ExtraComputation,
            m(LossCategory::AltProducer)
                + m(LossCategory::OriginalStateGen)
                + m(LossCategory::StateComparison)
                + m(LossCategory::Setup)
                + m(LossCategory::StateCopy),
        ),
        (WallLoss::Synchronization, m(LossCategory::Sync)),
        (WallLoss::Sequential, m(LossCategory::OutsideRegion)),
        (WallLoss::Mispeculation, m(LossCategory::Mispeculation)),
        (WallLoss::Unreachability, m(LossCategory::Unreachability)),
    ]
}

/// The groups whose ordering is structurally comparable between the two
/// attributions (see the module docs for why the other four are not).
pub const COMPARABLE_GROUPS: [WallLoss; 2] = [WallLoss::ExtraComputation, WallLoss::Mispeculation];

/// Shape-level agreement between native and simulated attribution for
/// one benchmark.
#[derive(Debug)]
pub struct ShapeComparison {
    /// Benchmark name.
    pub benchmark: String,
    /// Native normalized loss shares over the six groups.
    pub native: Vec<(WallLoss, f64)>,
    /// Simulated normalized loss shares over the six groups.
    pub simulated: Vec<(WallLoss, f64)>,
    /// Pairs of comparable groups whose order materially inverts
    /// between the two attributions (empty = orderings agree).
    pub inversions: Vec<(WallLoss, WallLoss)>,
    /// Whether every what-if points the same way on both sides (no
    /// what-if degrades its baseline, and doubling workers helps both
    /// whenever both have headroom).
    pub whatif_directions_agree: bool,
}

impl ShapeComparison {
    /// True when orderings and what-if directions both agree.
    pub fn agrees(&self) -> bool {
        self.inversions.is_empty() && self.whatif_directions_agree
    }
}

fn normalized(groups: &[(WallLoss, f64)]) -> Vec<(WallLoss, f64)> {
    let total: f64 = groups.iter().map(|(_, v)| v).sum();
    groups
        .iter()
        .map(|(l, v)| (*l, if total > 0.0 { v / total } else { 0.0 }))
        .collect()
}

fn share(groups: &[(WallLoss, f64)], loss: WallLoss) -> f64 {
    groups
        .iter()
        .find(|(l, _)| *l == loss)
        .map_or(0.0, |(_, v)| *v)
}

/// Compare a native profile report against the simulated attribution of
/// the same workload/config. `sim_whatifs` carries the simulator-side
/// projections recomputed by the same re-scheduler contract (improvement
/// must be non-negative; more workers must not hurt).
pub fn compare_shapes(
    report: &ProfileReport,
    simulated: &LossBreakdown,
    sim_whatifs: &WhatIfs,
    sim_baseline: f64,
) -> ShapeComparison {
    let native = normalized(
        &report
            .losses
            .iter()
            .map(|(l, e)| (*l, e.mean))
            .collect::<Vec<_>>(),
    );
    let sim = normalized(&simulated_six_groups(simulated));

    // Ordering agreement over the comparable groups: a material
    // inversion needs BOTH sides to disagree by more than the
    // materiality threshold — ties and noise-level differences pass.
    let mut inversions = Vec::new();
    for (i, &a) in COMPARABLE_GROUPS.iter().enumerate() {
        for &b in &COMPARABLE_GROUPS[i + 1..] {
            let (na, nb) = (share(&native, a), share(&native, b));
            let (sa, sb) = (share(&sim, a), share(&sim, b));
            if na > nb + MATERIAL_SHARE && sb > sa + MATERIAL_SHARE {
                inversions.push((a, b));
            }
            if nb > na + MATERIAL_SHARE && sa > sb + MATERIAL_SHARE {
                inversions.push((b, a));
            }
        }
    }

    // What-if directions: removing overhead or adding workers must not
    // make either attribution slower than its own baseline.
    let eps = 1e-9;
    let native_ok = report.whatif_sync_free.mean >= report.projected.mean - eps
        && report.whatif_copies_free.mean >= report.projected.mean - eps
        && report.whatif_double_workers.mean >= report.projected.mean - eps
        && report.whatif_mispeculation_free.mean >= report.projected.mean - eps;
    let sim_ok = sim_whatifs.sync_free >= sim_baseline - eps
        && sim_whatifs.copies_free >= sim_baseline - eps
        && sim_whatifs.double_workers >= sim_baseline - eps
        && sim_whatifs.mispeculation_free >= sim_baseline - eps;

    ShapeComparison {
        benchmark: report.benchmark.clone(),
        native,
        simulated: sim,
        inversions,
        whatif_directions_agree: native_ok && sim_ok,
    }
}

/// Run the simulated attribution for `workload` on a machine whose core
/// count matches the native pool width (so both ideals line up), and
/// derive the simulator-side what-if projections from the breakdown's
/// marginals.
pub fn simulated_reference<W: Workload>(
    w: &W,
    workers: usize,
    scale: Scale,
    seed: u64,
) -> (LossBreakdown, WhatIfs, f64) {
    let machine = Machine::new(Topology::new(1, workers.max(1)), CostModel::default());
    let cfg = tuned_config(w, 28, scale);
    let b = attribute(w, &machine, cfg, scale, seed);
    let whatifs = WhatIfs {
        sync_free: b.achieved + b.marginal_of(LossCategory::Sync),
        copies_free: b.achieved
            + b.marginal_of(LossCategory::StateCopy)
            + b.marginal_of(LossCategory::OriginalStateGen),
        // The simulator's marginal for "more cores" is the unreachable
        // headroom; doubling workers recovers at most that.
        double_workers: b.achieved,
        mispeculation_free: b.achieved + b.marginal_of(LossCategory::Mispeculation),
    };
    let base = b.achieved;
    (b, whatifs, base)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// The human-readable profile table the CLI prints for
/// `stats profile <bench>`.
pub fn render_profile_table(report: &ProfileReport) -> String {
    let mut out = String::new();
    let first = report.runs.first();
    out.push_str(&format!(
        "causal profile: {} | {} workers, {} chunks, {} seed{}\n",
        report.benchmark,
        report.workers,
        report.config.chunks,
        report.seeds.len(),
        if report.seeds.len() == 1 { "" } else { "s" },
    ));
    out.push_str(&format!(
        "  ideal {:.2}x | projected {:.2}x ± {:.2} | measured {:.2}x ± {:.2} | commit rate {:.0}%\n",
        first.map_or(0.0, |r| r.ideal),
        report.projected.mean,
        report.projected.half_width,
        report.measured.mean,
        report.measured.half_width,
        first.map_or(1.0, |r| r.commit_rate) * 100.0,
    ));
    out.push_str("  speedup lost to:\n");
    let total: f64 = report.losses.iter().map(|(_, e)| e.mean).sum();
    for (loss, est) in &report.losses {
        let share = if total > 0.0 {
            est.mean / total * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {:<18} {:>6.3}x ± {:>5.3}  ({:>5.1}%)\n",
            loss.name(),
            est.mean,
            est.half_width,
            share,
        ));
    }
    out.push_str("  what-if projections:\n");
    out.push_str(&format!(
        "    sync were free     {:>6.2}x ± {:.2}\n    copies were free   {:>6.2}x ± {:.2}\n    2x workers         {:>6.2}x ± {:.2}\n    no mispeculation   {:>6.2}x ± {:.2}\n",
        report.whatif_sync_free.mean,
        report.whatif_sync_free.half_width,
        report.whatif_copies_free.mean,
        report.whatif_copies_free.half_width,
        report.whatif_double_workers.mean,
        report.whatif_double_workers.half_width,
        report.whatif_mispeculation_free.mean,
        report.whatif_mispeculation_free.half_width,
    ));
    let sketches = report.profile.category_sketches();
    if !sketches.is_empty() {
        out.push_str("  span durations (p50 / p90 / p99 ns):\n");
        for (cat, sk) in &sketches {
            out.push_str(&format!(
                "    {:<18} {:>9} / {:>9} / {:>9}  ({} spans)\n",
                cat.name(),
                sk.quantile(0.5).unwrap_or(0),
                sk.quantile(0.9).unwrap_or(0),
                sk.quantile(0.99).unwrap_or(0),
                sk.count(),
            ));
        }
    }
    if let Some(f) = &report.faults {
        out.push_str(&format!(
            "  fault plane:       {} planned | {} injected, {} retries, {} workers lost (first seed)\n",
            f.planned, f.injected, f.retries, f.workers_lost,
        ));
    }
    if !report.parity {
        out.push_str("  WARNING: profiled run diverged from unprofiled run\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FIGURE_SEED;
    use stats_workloads::swaptions::Swaptions;

    #[test]
    fn profile_report_round_trips_on_swaptions() {
        let w = Swaptions::paper();
        let pool = WorkerPool::new(2);
        let report = profile_workload(&w, &pool, Scale(0.1), &[FIGURE_SEED, FIGURE_SEED + 1]);
        assert_eq!(report.benchmark, "swaptions");
        assert_eq!(report.workers, 2);
        assert_eq!(report.runs.len(), 2);
        assert!(report.parity, "profiling must not change the run");
        assert!(report.projected.mean > 0.0);
        assert_eq!(report.losses.len(), 6);
        let json = report.to_json();
        stats_telemetry::json::validate(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        let table = render_profile_table(&report);
        assert!(table.contains("causal profile: swaptions"));
        assert!(table.contains("imbalance"));
        assert!(table.contains("what-if"));
    }

    #[test]
    fn faulted_profile_reports_the_fault_plane_and_keeps_parity() {
        let w = Swaptions::paper();
        let pool = WorkerPool::new(2);
        let scale = Scale(0.05);
        let cfg = tuned_config(&w, 28, scale);
        let plan = FaultPlan::seeded(9, 4, &cfg, scale.inputs_for(&w));
        let report = profile_workload_faulted(&w, &pool, scale, &[FIGURE_SEED], cfg, &plan);
        assert!(
            report.parity,
            "faulted profiling must stay observation-only"
        );
        let f = report
            .faults
            .expect("a seeded plan reports its fault plane");
        assert_eq!(f.planned, 4);
        let json = report.to_json();
        stats_telemetry::json::validate(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"faults\":{"));
        let table = render_profile_table(&report);
        assert!(table.contains("fault plane:"), "{table}");
        // A fault-free profile carries no fault object.
        let clean = profile_workload(&w, &pool, scale, &[FIGURE_SEED]);
        assert_eq!(clean.faults, None);
    }

    #[test]
    fn shape_comparison_has_no_self_inversions() {
        let w = Swaptions::paper();
        let pool = WorkerPool::new(2);
        let report = profile_workload(&w, &pool, Scale(0.1), &[FIGURE_SEED]);
        let (sim, whatifs, base) = simulated_reference(&w, 2, Scale(0.1), FIGURE_SEED);
        let cmp = compare_shapes(&report, &sim, &whatifs, base);
        assert!(
            cmp.agrees(),
            "swaptions shape must agree: inversions {:?}, native {:?}, simulated {:?}",
            cmp.inversions,
            cmp.native,
            cmp.simulated
        );
    }
}
