//! Table I: threads, states, and state sizes the STATS runtime creates.

use crate::pipeline::{tuned_config, Scale};
use crate::render::TextTable;
use serde::{Deserialize, Serialize};
use stats_core::runtime::simulated::effective_width;
use stats_core::ResourceAccounting;
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// One Table I row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Logical threads created on 28 cores.
    pub threads: usize,
    /// Computational states allocated.
    pub states: usize,
    /// Bytes per state.
    pub state_bytes: usize,
}

struct Visit {
    scale: Scale,
}

impl WorkloadVisitor for Visit {
    type Output = Row;
    fn visit<W: Workload>(self, w: &W) -> Row {
        let cfg = tuned_config(w, 28, self.scale);
        let width = effective_width(&cfg, &w.inner_parallelism(), 28);
        let acc = ResourceAccounting::for_config(&cfg, w.state_bytes(), width);
        Row {
            benchmark: w.name().to_string(),
            threads: acc.threads,
            states: acc.states,
            state_bytes: acc.state_bytes,
        }
    }
}

/// Compute all rows at the given input scale.
pub fn compute(scale: Scale) -> Vec<Row> {
    BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, Visit { scale }))
        .collect()
}

/// Render the table as text.
pub fn render(scale: Scale) -> String {
    let mut t = TextTable::new(vec![
        "Benchmark",
        "#Threads",
        "#States",
        "State size [Bytes]",
    ]);
    for r in compute(scale) {
        t.row(vec![
            r.benchmark,
            r.threads.to_string(),
            r.states.to_string(),
            r.state_bytes.to_string(),
        ]);
    }
    format!(
        "Table I: resources created by STATS on 28 cores\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_benchmarks() {
        let rows = compute(Scale::NATIVE);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.threads > 1, "{}: no threads", r.benchmark);
            assert!(r.states > 1);
        }
    }

    #[test]
    fn state_sizes_match_paper() {
        let rows = compute(Scale::NATIVE);
        let get = |n: &str| rows.iter().find(|r| r.benchmark == n).unwrap();
        assert_eq!(get("swaptions").state_bytes, 24);
        assert_eq!(get("streamcluster").state_bytes, 104);
        assert_eq!(get("streamclassifier").state_bytes, 104);
        assert_eq!(get("bodytrack").state_bytes, 500_000);
        assert_eq!(get("facetrack").state_bytes, 8_000);
        assert_eq!(get("facedet-and-track").state_bytes, 8_000);
    }

    #[test]
    fn thread_counts_exceed_cores_except_small_configs() {
        // The paper: "the number of threads created is greater than the
        // number of cores … the only exception is facedet-and-track"
        // (in ours, the low-chunk trackers are the exceptions).
        let rows = compute(Scale::NATIVE);
        let sc = rows
            .iter()
            .find(|r| r.benchmark == "streamcluster")
            .unwrap();
        assert!(
            sc.threads > 100,
            "streamcluster should oversubscribe: {}",
            sc.threads
        );
        let ft = rows.iter().find(|r| r.benchmark == "facetrack").unwrap();
        assert!(ft.threads < 60);
    }

    #[test]
    fn render_contains_every_benchmark() {
        let s = render(Scale(0.2));
        for name in BENCHMARK_NAMES {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
