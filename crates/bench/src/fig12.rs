//! Fig. 12: % speedup lost per overhead source when only STATS TLP is
//! used, forced to 14 and 28 chunks on 14 and 28 cores.

use crate::attribution::{attribute, LossBreakdown};
use crate::fig10::render_breakdowns;
use crate::pipeline::{clamp_config, tuned_config, Machines, Scale, FIGURE_SEED};
use stats_core::Config;
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// Results for both core counts.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Forced 14 chunks on 14 cores.
    pub cores14: Vec<LossBreakdown>,
    /// Forced 28 chunks on 28 cores.
    pub cores28: Vec<LossBreakdown>,
}

struct Visit {
    scale: Scale,
    cores: usize,
}

impl WorkloadVisitor for Visit {
    type Output = LossBreakdown;
    fn visit<W: Workload>(self, w: &W) -> LossBreakdown {
        let machines = Machines::paper();
        let machine = if self.cores == 14 {
            &machines.cores14
        } else {
            &machines.cores28
        };
        // "we run STATS forcing it to create 14 and 28 STATS-threads …
        // without using the original TLP" (§V-B).
        let tuned = tuned_config(w, self.cores, self.scale);
        let cfg = clamp_config(
            Config {
                chunks: self.cores,
                combine_inner_tlp: false,
                ..tuned
            },
            self.scale.inputs_for(w),
        );
        attribute(w, machine, cfg, self.scale, FIGURE_SEED)
    }
}

/// Compute both core counts.
pub fn compute(scale: Scale) -> Fig12 {
    let run = |cores: usize| {
        BENCHMARK_NAMES
            .iter()
            .map(|name| dispatch(name, Visit { scale, cores }))
            .collect()
    };
    Fig12 {
        cores14: run(14),
        cores28: run(28),
    }
}

/// Render both tables.
pub fn render(scale: Scale) -> String {
    let f = compute(scale);
    format!(
        "{}\n{}",
        render_breakdowns(
            "Fig. 12a: % speedup lost, STATS TLP only, 14 chunks on 14 cores",
            &f.cores14
        ),
        render_breakdowns(
            "Fig. 12b: % speedup lost, STATS TLP only, 28 chunks on 28 cores",
            &f.cores28
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_computation_grows_with_stats_only_tlp() {
        // "extracting more TLP from state dependences generates
        // significantly more extra computation" (§V-B): forcing one chunk
        // per core spends more cycles on the execution model than the
        // tuned combined configuration does.
        let scale = Scale(0.15);
        let solo: Vec<_> = stats_workloads::BENCHMARK_NAMES
            .iter()
            .map(|name| {
                stats_workloads::dispatch(
                    name,
                    crate::fig11::Visit {
                        scale,
                        combine: false,
                        cores: 28,
                    },
                )
            })
            .collect();
        let combined = crate::fig11::compute(scale);
        let mut grew = 0;
        for (s, c) in solo.iter().zip(&combined) {
            assert_eq!(s.benchmark, c.benchmark);
            if s.total_cycles >= c.total_cycles {
                grew += 1;
            }
        }
        assert!(grew >= 4, "extra computation grew for only {grew}/6");
    }

    #[test]
    fn both_core_counts_cover_all_benchmarks() {
        let f = compute(Scale(0.1));
        assert_eq!(f.cores14.len(), 6);
        assert_eq!(f.cores28.len(), 6);
        for b in f.cores14.iter().chain(&f.cores28) {
            assert!(b.achieved > 0.5, "{}: speedup {}", b.benchmark, b.achieved);
        }
    }
}
