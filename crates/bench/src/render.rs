//! Minimal fixed-width text-table rendering for experiment output.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Format a count in billions with 2 decimals (Table II's unit).
pub fn billions(x: u64) -> String {
    format!("{:.3}", x as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("longer-name"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(2.71628), "2.72");
        assert_eq!(pct(12.345), "12.3%");
        assert_eq!(billions(2_500_000_000), "2.500");
    }
}
