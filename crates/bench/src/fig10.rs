//! Fig. 10: percentage of speedup lost per overhead source, combined TLP,
//! 28 cores.

use crate::attribution::{attribute, LossBreakdown, LossCategory};
use crate::pipeline::{tuned_config, Machines, Scale, FIGURE_SEED};
use crate::render::{f2, pct, TextTable};
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

struct Visit {
    scale: Scale,
}

impl WorkloadVisitor for Visit {
    type Output = LossBreakdown;
    fn visit<W: Workload>(self, w: &W) -> LossBreakdown {
        let machines = Machines::paper();
        let cfg = tuned_config(w, 28, self.scale);
        attribute(w, &machines.cores28, cfg, self.scale, FIGURE_SEED)
    }
}

/// Compute the breakdown for every benchmark.
pub fn compute(scale: Scale) -> Vec<LossBreakdown> {
    BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, Visit { scale }))
        .collect()
}

/// Render as a per-category table (the paper's stacked bars, columnized).
pub fn render(scale: Scale) -> String {
    let breakdowns = compute(scale);
    render_breakdowns(
        "Fig. 10: % of ideal speedup lost per overhead source (Par. STATS, 28 cores)",
        &breakdowns,
    )
}

/// Shared renderer for Figs. 10 and 12.
pub fn render_breakdowns(title: &str, breakdowns: &[LossBreakdown]) -> String {
    let mut header = vec!["Benchmark".to_string()];
    header.extend(LossCategory::ALL.iter().map(|c| c.name().to_string()));
    header.push("lost speedup".to_string());
    header.push("achieved".to_string());
    let mut t = TextTable::new(header);
    for b in breakdowns {
        let shares = b.normalized_percent();
        let mut row = vec![b.benchmark.clone()];
        for cat in LossCategory::ALL {
            let v = shares
                .iter()
                .find(|(c, _)| *c == cat)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            row.push(pct(v));
        }
        row.push(f2(b.total_lost()));
        row.push(format!("{}x/{}", f2(b.achieved), b.ideal as usize));
        t.row(row);
    }
    let mut footer = String::from(
        "\nspeedup points recoverable by engineering vs requiring a deeper \
         evolution of STATS (§I):\n",
    );
    for b in breakdowns {
        footer.push_str(&format!(
            "  {:<18} engineering {:>5.2} | evolution {:>5.2}\n",
            b.benchmark,
            b.engineering_recoverable(),
            b.requires_evolution()
        ));
    }
    format!("{title}\n\n{}{footer}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_attributed() {
        let rows = compute(Scale(0.15));
        assert_eq!(rows.len(), 6);
        for b in &rows {
            assert!(b.achieved > 1.0, "{}: no speedup at all", b.benchmark);
            // Every benchmark loses something to overhead (none is ideal).
            assert!(b.total_lost() > 0.0, "{}: lossless?", b.benchmark);
        }
    }

    #[test]
    fn swaptions_among_the_most_linear() {
        // The paper: "swaptions parallelized by STATS reaches linear
        // speedup on 28 cores" — it must be among the least lossy
        // benchmarks (the stream benchmarks converge faster under STATS,
        // which also keeps their losses low).
        let rows = compute(Scale(0.5));
        let swaptions = rows.iter().find(|b| b.benchmark == "swaptions").unwrap();
        let lossier = rows
            .iter()
            .filter(|b| b.total_lost() + 1e-9 < swaptions.total_lost())
            .count();
        assert!(
            lossier <= 2,
            "swaptions should rank in the top 3: {} benchmarks lose less",
            lossier
        );
    }

    #[test]
    fn renders_all_loss_categories() {
        let s = render_breakdowns("t", &compute(Scale(0.1)));
        for cat in LossCategory::ALL {
            assert!(s.contains(cat.name()), "missing {cat}");
        }
    }
}
