//! Fig. 11: breakdown of the extra computation performed by the parallel
//! binaries (combined TLP, 28 cores), in busy cycles per §III-B category.

use crate::pipeline::{run_benchmark, tuned_config, Machines, Scale, FIGURE_SEED};
use crate::render::{pct, TextTable};
use serde::{Deserialize, Serialize};
use stats_trace::Category;
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// The §III-B extra-computation components broken out by Figs. 11/13.
pub const EXTRA_COMPONENTS: [Category; 6] = [
    Category::AltProducer,
    Category::OriginalStateGen,
    Category::StateComparison,
    Category::Setup,
    Category::StateCopy,
    Category::AbortedCompute,
];

/// One benchmark's extra-computation share per component (fractions of the
/// benchmark's total extra computation; they sum to 1 unless there is no
/// extra computation at all).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// `(component, share)` pairs in [`EXTRA_COMPONENTS`] order.
    pub shares: Vec<(Category, f64)>,
    /// Total extra-computation cycles.
    pub total_cycles: u64,
}

pub(crate) struct Visit {
    pub(crate) scale: Scale,
    pub(crate) combine: bool,
    pub(crate) cores: usize,
}

impl WorkloadVisitor for Visit {
    type Output = Row;
    fn visit<W: Workload>(self, w: &W) -> Row {
        let machines = Machines::paper();
        let machine = if self.cores == 14 {
            &machines.cores14
        } else {
            &machines.cores28
        };
        let mut cfg = tuned_config(w, self.cores, self.scale);
        cfg.combine_inner_tlp = self.combine;
        if !self.combine {
            // STATS-only runs force one chunk per core (§V-B).
            cfg = crate::pipeline::clamp_config(
                stats_core::Config {
                    chunks: self.cores,
                    ..cfg
                },
                self.scale.inputs_for(w),
            );
        }
        let report = run_benchmark(w, machine, cfg, self.scale, FIGURE_SEED);
        let cycles = report.execution.trace.cycles_by_category();
        let total: u64 = EXTRA_COMPONENTS
            .iter()
            .map(|c| cycles.get(c).map(|x| x.get()).unwrap_or(0))
            .sum();
        let shares = EXTRA_COMPONENTS
            .iter()
            .map(|c| {
                let v = cycles.get(c).map(|x| x.get()).unwrap_or(0);
                (
                    *c,
                    if total == 0 {
                        0.0
                    } else {
                        v as f64 / total as f64
                    },
                )
            })
            .collect();
        Row {
            benchmark: w.name().to_string(),
            shares,
            total_cycles: total,
        }
    }
}

/// Compute all rows (combined TLP, 28 cores).
pub fn compute(scale: Scale) -> Vec<Row> {
    BENCHMARK_NAMES
        .iter()
        .map(|name| {
            dispatch(
                name,
                Visit {
                    scale,
                    combine: true,
                    cores: 28,
                },
            )
        })
        .collect()
}

/// Shared renderer for Figs. 11 and 13.
pub fn render_rows(title: &str, rows: &[Row]) -> String {
    let mut header = vec!["Benchmark".to_string()];
    header.extend(EXTRA_COMPONENTS.iter().map(|c| c.name().to_string()));
    let mut t = TextTable::new(header);
    for r in rows {
        let mut cells = vec![r.benchmark.clone()];
        for (_, share) in &r.shares {
            cells.push(pct(share * 100.0));
        }
        t.row(cells);
    }
    format!("{title}\n\n{}", t.render())
}

/// Render the figure.
pub fn render(scale: Scale) -> String {
    render_rows(
        "Fig. 11: breakdown of extra computation (Par. STATS, 28 cores)",
        &compute(scale),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        for r in compute(Scale(0.15)) {
            let sum: f64 = r.shares.iter().map(|(_, s)| s).sum();
            if r.total_cycles > 0 {
                assert!(
                    (sum - 1.0).abs() < 1e-9,
                    "{}: shares sum {sum}",
                    r.benchmark
                );
            }
        }
    }

    #[test]
    fn speculative_state_generation_is_prominent() {
        // The paper: "The two main sources of extra computation are …
        // generating the speculative state and the multiple original
        // states." Across benchmarks their combined share dominates.
        let rows = compute(Scale(0.15));
        let mut spec_heavy = 0;
        for r in &rows {
            let spec: f64 = r
                .shares
                .iter()
                .filter(|(c, _)| matches!(c, Category::AltProducer | Category::OriginalStateGen))
                .map(|(_, s)| s)
                .sum();
            if spec > 0.4 {
                spec_heavy += 1;
            }
        }
        assert!(
            spec_heavy >= 3,
            "only {spec_heavy} benchmarks are speculation-heavy"
        );
    }
}
