//! Fig. 14: extra instructions executed by the STATS binaries versus their
//! sequential baselines, on 28 cores.

use crate::pipeline::{run_benchmark, tuned_config, Machines, Scale, FIGURE_SEED};
use crate::render::{pct, TextTable};
use serde::{Deserialize, Serialize};
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// One benchmark's instruction accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Instructions of the STATS parallel execution.
    pub stats_instructions: u64,
    /// Instructions of the sequential baseline.
    pub baseline_instructions: u64,
    /// Extra instructions as a percentage (negative = fewer than
    /// baseline, the stream benchmarks' behaviour).
    pub extra_percent: f64,
}

struct Visit {
    scale: Scale,
}

impl WorkloadVisitor for Visit {
    type Output = Row;
    fn visit<W: Workload>(self, w: &W) -> Row {
        let machines = Machines::paper();
        let cfg = tuned_config(w, 28, self.scale);
        let report = run_benchmark(w, &machines.cores28, cfg, self.scale, FIGURE_SEED);
        Row {
            benchmark: w.name().to_string(),
            stats_instructions: report.execution.trace.total_instructions(),
            baseline_instructions: report.sequential_instructions,
            extra_percent: report.extra_instruction_percent(),
        }
    }
}

/// Compute all rows.
pub fn compute(scale: Scale) -> Vec<Row> {
    BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, Visit { scale }))
        .collect()
}

/// Render the figure.
pub fn render(scale: Scale) -> String {
    let mut t = TextTable::new(vec!["Benchmark", "Extra instructions vs. baseline"]);
    for r in compute(scale) {
        t.row(vec![r.benchmark, pct(r.extra_percent)]);
    }
    format!(
        "Fig. 14: extra instructions executed by STATS binaries (28 cores)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trackers_execute_more_streams_execute_less() {
        // Native scale: the effect sizes only manifest at the paper's
        // input scaling (§IV-C).
        let rows = compute(Scale::NATIVE);
        let get = |n: &str| rows.iter().find(|r| r.benchmark == n).unwrap();
        // The paper: bodytrack +107.4%, facedet-and-track +43.8%;
        // streamclassifier and streamcluster execute *fewer* instructions.
        assert!(
            get("bodytrack").extra_percent > 25.0,
            "bodytrack: {}",
            get("bodytrack").extra_percent
        );
        assert!(
            get("facedet-and-track").extra_percent > 8.0,
            "facedet: {}",
            get("facedet-and-track").extra_percent
        );
        assert!(
            get("streamcluster").extra_percent < 0.0,
            "streamcluster should execute fewer instructions: {}",
            get("streamcluster").extra_percent
        );
        assert!(
            get("streamclassifier").extra_percent < 0.0,
            "streamclassifier should execute fewer instructions: {}",
            get("streamclassifier").extra_percent
        );
    }

    #[test]
    fn bodytrack_is_the_heaviest() {
        let rows = compute(Scale::NATIVE);
        let body = rows.iter().find(|r| r.benchmark == "bodytrack").unwrap();
        for r in &rows {
            assert!(
                body.extra_percent >= r.extra_percent - 1e-9,
                "bodytrack ({:.1}%) should top {} ({:.1}%)",
                body.extra_percent,
                r.benchmark,
                r.extra_percent
            );
        }
    }
}
