//! Minimal SVG rendering of the figures — grouped bars for Fig. 9 and
//! stacked bars for Figs. 10/12 — with no chart dependencies.
//!
//! The binaries accept `STATS_SVG_DIR=<dir>` to drop `.svg` files next to
//! their textual tables; the files open in any browser.

use crate::attribution::{LossBreakdown, LossCategory};
use crate::fig09;
use std::fmt::Write as _;

const WIDTH: f64 = 960.0;
const HEIGHT: f64 = 420.0;
const MARGIN_LEFT: f64 = 60.0;
const MARGIN_BOTTOM: f64 = 90.0;
const MARGIN_TOP: f64 = 40.0;

/// Colors for grouped series (Fig. 9's black/grey/red bars).
const SERIES_COLORS: [&str; 6] = [
    "#222222", "#888888", "#c0392b", "#2980b9", "#27ae60", "#8e44ad",
];

/// Colors for the ten loss categories, in [`LossCategory::ALL`] order.
const LOSS_COLORS: [&str; 10] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac",
];

fn svg_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn svg_header(title: &str) -> String {
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
         font-family=\"sans-serif\" font-size=\"11\">\n\
         <text x=\"{}\" y=\"20\" text-anchor=\"middle\" font-size=\"14\">{}</text>\n",
        WIDTH / 2.0,
        svg_escape(title)
    )
}

/// Render grouped bars: one group per label, one bar per series.
///
/// `data[group].1[series]` is the bar height in data units.
pub fn grouped_bars(
    title: &str,
    series_names: &[&str],
    data: &[(String, Vec<f64>)],
    y_label: &str,
) -> String {
    let mut out = svg_header(title);
    let max = data
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(1e-9, f64::max);
    let plot_w = WIDTH - MARGIN_LEFT - 20.0;
    let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    let group_w = plot_w / data.len() as f64;
    let bar_w = (group_w * 0.8) / series_names.len() as f64;

    // Y axis with 4 gridlines.
    for i in 0..=4 {
        let v = max * i as f64 / 4.0;
        let y = MARGIN_TOP + plot_h * (1.0 - i as f64 / 4.0);
        let _ = writeln!(
            out,
            "<line x1=\"{MARGIN_LEFT}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" stroke=\"#ddd\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{v:.1}</text>",
            WIDTH - 20.0,
            MARGIN_LEFT - 6.0,
            y + 4.0
        );
    }
    let _ = writeln!(
        out,
        "<text x=\"14\" y=\"{:.1}\" transform=\"rotate(-90 14 {:.1})\" text-anchor=\"middle\">{}</text>",
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0,
        svg_escape(y_label)
    );

    for (g, (label, values)) in data.iter().enumerate() {
        let gx = MARGIN_LEFT + g as f64 * group_w + group_w * 0.1;
        for (si, v) in values.iter().enumerate() {
            let h = plot_h * (v / max);
            let x = gx + si as f64 * bar_w;
            let y = MARGIN_TOP + plot_h - h;
            let color = SERIES_COLORS[si % SERIES_COLORS.len()];
            let _ = writeln!(
                out,
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.1}\" height=\"{h:.1}\" fill=\"{color}\">\
                 <title>{}: {} = {v:.2}</title></rect>",
                bar_w * 0.92,
                svg_escape(label),
                svg_escape(series_names[si]),
            );
        }
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" \
             transform=\"rotate(-35 {:.1} {:.1})\">{}</text>",
            gx + group_w * 0.4,
            HEIGHT - MARGIN_BOTTOM + 16.0,
            gx + group_w * 0.4,
            HEIGHT - MARGIN_BOTTOM + 16.0,
            svg_escape(label)
        );
    }

    // Legend.
    for (si, name) in series_names.iter().enumerate() {
        let x = MARGIN_LEFT + si as f64 * 140.0;
        let y = HEIGHT - 16.0;
        let color = SERIES_COLORS[si % SERIES_COLORS.len()];
        let _ = writeln!(
            out,
            "<rect x=\"{x:.1}\" y=\"{:.1}\" width=\"12\" height=\"12\" fill=\"{color}\"/>\
             <text x=\"{:.1}\" y=\"{y:.1}\">{}</text>",
            y - 10.0,
            x + 16.0,
            svg_escape(name)
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Render Fig. 9 as grouped bars.
pub fn fig09_svg(rows: &[fig09::Row]) -> String {
    let series = [
        "Original 14",
        "Original 28",
        "Seq.STATS 14",
        "Seq.STATS 28",
        "Par.STATS 14",
        "Par.STATS 28",
    ];
    let data: Vec<(String, Vec<f64>)> = rows
        .iter()
        .map(|r| {
            (
                r.benchmark.clone(),
                vec![
                    r.original_14,
                    r.original_28,
                    r.seq_stats_14,
                    r.seq_stats_28,
                    r.par_stats_14,
                    r.par_stats_28,
                ],
            )
        })
        .collect();
    grouped_bars(
        "Fig. 9: speedup over sequential execution per TLP source",
        &series,
        &data,
        "speedup (x)",
    )
}

/// Render Fig. 10/12-style loss breakdowns as stacked bars (percent of
/// ideal speedup lost, stacked by category).
pub fn losses_svg(title: &str, breakdowns: &[LossBreakdown]) -> String {
    let mut out = svg_header(title);
    let plot_w = WIDTH - MARGIN_LEFT - 20.0;
    let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    let max = breakdowns
        .iter()
        .map(|b| b.total_lost_percent())
        .fold(1e-9, f64::max)
        .max(10.0);
    let group_w = plot_w / breakdowns.len() as f64;

    for (g, b) in breakdowns.iter().enumerate() {
        let x = MARGIN_LEFT + g as f64 * group_w + group_w * 0.18;
        let bar_w = group_w * 0.55;
        let mut y = MARGIN_TOP + plot_h;
        for (ci, cat) in LossCategory::ALL.iter().enumerate() {
            let pct = b
                .normalized_percent()
                .iter()
                .find(|(c, _)| c == cat)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            let h = plot_h * (pct / max);
            if h <= 0.0 {
                continue;
            }
            y -= h;
            let _ = writeln!(
                out,
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar_w:.1}\" height=\"{h:.1}\" \
                 fill=\"{}\"><title>{}: {} = {pct:.1}%</title></rect>",
                LOSS_COLORS[ci],
                svg_escape(&b.benchmark),
                cat.name(),
            );
        }
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{:.1}</text>",
            x + bar_w / 2.0,
            y - 4.0,
            b.total_lost()
        );
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" \
             transform=\"rotate(-35 {:.1} {:.1})\">{}</text>",
            x + bar_w / 2.0,
            HEIGHT - MARGIN_BOTTOM + 16.0,
            x + bar_w / 2.0,
            HEIGHT - MARGIN_BOTTOM + 16.0,
            svg_escape(&b.benchmark)
        );
    }
    // Legend, two rows.
    for (ci, cat) in LossCategory::ALL.iter().enumerate() {
        let x = MARGIN_LEFT + (ci % 5) as f64 * 170.0;
        let y = HEIGHT - 30.0 + (ci / 5) as f64 * 16.0;
        let _ = writeln!(
            out,
            "<rect x=\"{x:.1}\" y=\"{:.1}\" width=\"10\" height=\"10\" fill=\"{}\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\">{}</text>",
            y - 9.0,
            LOSS_COLORS[ci],
            x + 14.0,
            y,
            cat.name()
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Write an SVG to `$STATS_SVG_DIR/<name>.svg` if the env var is set;
/// returns the path written.
pub fn write_if_configured(name: &str, svg: &str) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("STATS_SVG_DIR")?;
    let path = std::path::Path::new(&dir).join(format!("{name}.svg"));
    std::fs::write(&path, svg).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scale;

    #[test]
    fn grouped_bars_emit_one_rect_per_value() {
        let data = vec![
            ("a".to_string(), vec![1.0, 2.0]),
            ("b".to_string(), vec![3.0, 4.0]),
        ];
        let svg = grouped_bars("t", &["s1", "s2"], &data, "y");
        // 4 data rects + 2 legend rects.
        assert_eq!(svg.matches("<rect").count(), 6);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn fig09_svg_covers_all_benchmarks() {
        let rows = crate::fig09::compute(Scale(0.08));
        let svg = fig09_svg(&rows);
        for r in &rows {
            assert!(svg.contains(&r.benchmark), "missing {}", r.benchmark);
        }
        // 7 groups x 6 series data rects + 6 legend rects.
        assert_eq!(svg.matches("<rect").count(), 7 * 6 + 6);
    }

    #[test]
    fn losses_svg_is_well_formed() {
        let breakdowns = crate::fig10::compute(Scale(0.08));
        let svg = losses_svg("test", &breakdowns);
        assert!(svg.contains("</svg>"));
        let opens = svg.matches("<rect").count();
        let closes = svg.matches("</rect>").count() + svg.matches("/>").count();
        assert!(opens <= closes, "unclosed rects");
        for b in &breakdowns {
            assert!(svg.contains(&b.benchmark));
        }
    }

    #[test]
    fn escaping_prevents_markup_injection() {
        let data = vec![("<evil> & co".to_string(), vec![1.0])];
        let svg = grouped_bars("a <b> title", &["s"], &data, "y");
        assert!(!svg.contains("<evil>"));
        assert!(svg.contains("&lt;evil&gt;"));
        assert!(svg.contains("&amp; co"));
    }
}
