//! Shared experiment plumbing: scales, machines, and standard runs.

use stats_core::runtime::sequential::run_sequential;
use stats_core::runtime::simulated::{build_task_graph, GraphOptions, SimulatedRuntime};
use stats_core::speculation::{run_speculative, SpeculationOutcome};
use stats_core::{Config, RunReport};
use stats_platform::{CostModel, Machine, Topology};
use stats_workloads::Workload;

/// Input-scale knob: figures run at native scale (1.0); integration tests
/// use a fraction to stay fast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Full paper scale.
    pub const NATIVE: Scale = Scale(1.0);

    /// Number of inputs for a workload at this scale (at least 64 so every
    /// tuned configuration stays valid).
    pub fn inputs_for<W: Workload>(&self, workload: &W) -> usize {
        ((workload.native_input_count() as f64 * self.0) as usize).max(64)
    }

    /// Parse from a CLI argument / env var (`STATS_SCALE`), defaulting to
    /// native.
    pub fn from_env() -> Scale {
        std::env::var("STATS_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|s| *s > 0.0 && *s <= 1.0)
            .map(Scale)
            .unwrap_or(Scale::NATIVE)
    }
}

/// The machines every experiment runs on.
#[derive(Debug, Clone)]
pub struct Machines {
    /// The paper's full machine: 2 × 14 cores.
    pub cores28: Machine,
    /// One socket: 14 cores.
    pub cores14: Machine,
}

impl Machines {
    /// The paper's platform with default costs.
    pub fn paper() -> Self {
        Machines {
            cores28: Machine::new(Topology::paper_machine(), CostModel::default()),
            cores14: Machine::new(Topology::paper_single_socket(), CostModel::default()),
        }
    }
}

/// Master seed used by all figures (reruns reproduce identical tables).
pub const FIGURE_SEED: u64 = 0x5747_5175;

/// Run one benchmark under its tuned configuration (optionally overridden)
/// on the given machine and return the full report.
pub fn run_benchmark<W: Workload>(
    workload: &W,
    machine: &Machine,
    config: Config,
    scale: Scale,
    seed: u64,
) -> RunReport<W::Output> {
    let n = scale.inputs_for(workload);
    let inputs = workload.generate_inputs(n, seed);
    let rt = SimulatedRuntime::new(machine.clone());
    rt.run(
        workload.name(),
        workload,
        &inputs,
        config,
        workload.inner_parallelism(),
        seed,
    )
    .expect("generated graphs are acyclic")
}

/// Clamp a configuration's chunk count so it stays valid for `inputs`
/// inputs (small test scales shrink the stream below some tuned chunk
/// counts).
pub fn clamp_config(mut config: Config, inputs: usize) -> Config {
    while config.validate(inputs).is_err() && config.chunks > 1 {
        config.chunks -= 1;
        if config.chunks > 1 && config.lookback > inputs / config.chunks {
            config.lookback = (inputs / config.chunks).max(1);
        }
    }
    if config.chunks == 1 {
        config.lookback = 0;
        config.extra_states = 0;
    }
    config
}

/// The tuned configuration of a workload at a scale (clamped to validity).
pub fn tuned_config<W: Workload>(workload: &W, cores: usize, scale: Scale) -> Config {
    let n = scale.inputs_for(workload);
    clamp_config(workload.tuned_config(cores), n)
}

/// Produce the `(outcome, graph options, sequential cycles, sequential
/// instructions)` bundle the attribution analysis consumes.
pub fn semantic_run<W: Workload>(
    workload: &W,
    machine: &Machine,
    config: Config,
    scale: Scale,
    seed: u64,
) -> (
    SpeculationOutcome<W::Output>,
    GraphOptions,
    stats_trace::Cycles,
    u64,
) {
    let n = scale.inputs_for(workload);
    let inputs = workload.generate_inputs(n, seed);
    let outcome = run_speculative(workload, &inputs, config, seed);
    let opts = GraphOptions {
        inner: workload.inner_parallelism(),
        assume_all_commit: false,
        outside_work: workload.outside_region_work(),
        sync_ops_per_update: workload.sync_ops_per_update(),
        lazy_replicas: false,
    };
    let seq = run_sequential(workload, &inputs, seed);
    let outside = opts.outside_work.0 + opts.outside_work.1;
    let seq_cycles = machine.cost_model().work(seq.cost.work + outside);
    let seq_instr = seq.cost.instructions + outside * 2;
    (outcome, opts, seq_cycles, seq_instr)
}

/// Execute an outcome's graph and return its speedup over the sequential
/// baseline.
pub fn speedup_of<O>(
    name: &str,
    outcome: &SpeculationOutcome<O>,
    machine: &Machine,
    opts: &GraphOptions,
    seq_cycles: stats_trace::Cycles,
) -> f64 {
    let graph = build_task_graph(name, outcome, machine, opts);
    let result = machine.execute(&graph).expect("acyclic");
    result.speedup_vs(seq_cycles)
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_floors_input_count() {
        struct Fake;
        // Minimal workload stub is overkill; use a real one.
        let w = stats_workloads::swaptions::Swaptions::paper();
        let _ = Fake;
        assert_eq!(Scale(1.0).inputs_for(&w), 2_000);
        assert_eq!(Scale(0.1).inputs_for(&w), 200);
        assert_eq!(Scale(0.0001).inputs_for(&w), 64);
    }

    #[test]
    fn clamp_keeps_configs_valid() {
        let cfg = Config::stats_only(56, 8, 2);
        let clamped = clamp_config(cfg, 70);
        assert!(clamped.validate(70).is_ok());
        assert!(clamped.chunks <= 56);
        // Already-valid configs are untouched.
        let ok = Config::stats_only(4, 8, 2);
        assert_eq!(clamp_config(ok, 560), ok);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn run_benchmark_produces_speedup() {
        let w = stats_workloads::swaptions::Swaptions::paper();
        let machines = Machines::paper();
        let scale = Scale(0.15);
        let cfg = tuned_config(&w, 28, scale);
        let report = run_benchmark(&w, &machines.cores28, cfg, scale, FIGURE_SEED);
        assert!(report.speedup() > 2.0, "speedup {}", report.speedup());
    }
}
