//! Fig. 13: breakdown of extra computation when only STATS TLP is used,
//! at 14 and 28 chunks.

use crate::fig11::{render_rows, Row, Visit};
use crate::pipeline::Scale;
use stats_workloads::{dispatch, BENCHMARK_NAMES};

/// Results at both chunk counts.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// 14 chunks on 14 cores.
    pub chunks14: Vec<Row>,
    /// 28 chunks on 28 cores.
    pub chunks28: Vec<Row>,
}

/// Compute both chunk counts.
pub fn compute(scale: Scale) -> Fig13 {
    let run = |cores: usize| {
        BENCHMARK_NAMES
            .iter()
            .map(|name| {
                dispatch(
                    name,
                    Visit {
                        scale,
                        combine: false,
                        cores,
                    },
                )
            })
            .collect()
    };
    Fig13 {
        chunks14: run(14),
        chunks28: run(28),
    }
}

/// Render both tables.
pub fn render(scale: Scale) -> String {
    let f = compute(scale);
    format!(
        "{}\n{}",
        render_rows(
            "Fig. 13a: extra-computation breakdown, STATS only, 14 chunks",
            &f.chunks14
        ),
        render_rows(
            "Fig. 13b: extra-computation breakdown, STATS only, 28 chunks",
            &f.chunks28
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_chunks_more_extra_cycles() {
        let f = compute(Scale(0.15));
        let mut grew = 0;
        for (a, b) in f.chunks14.iter().zip(&f.chunks28) {
            assert_eq!(a.benchmark, b.benchmark);
            if b.total_cycles >= a.total_cycles {
                grew += 1;
            }
        }
        // 28 chunks need more alt producers/replicas than 14 chunks.
        assert!(grew >= 4, "extra computation grew for only {grew}/6");
    }

    #[test]
    fn rows_cover_every_benchmark() {
        let f = compute(Scale(0.1));
        assert_eq!(f.chunks14.len(), 6);
        assert_eq!(f.chunks28.len(), 6);
    }
}
