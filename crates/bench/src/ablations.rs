//! Ablation studies for the design choices the paper motivates:
//! synchronization costs (§III-C), state-copy acceleration (§V-C's
//! proposed evolution), and the speculation parameters k / m / chunk
//! count whose trade-offs drive the autotuner (§II-B, §III-E).

use crate::pipeline::{clamp_config, tuned_config, Scale, FIGURE_SEED};
use crate::render::{f2, pct, TextTable};
use serde::{Deserialize, Serialize};
use stats_core::plan_weighted;
use stats_core::runtime::sequential::run_sequential;
use stats_core::runtime::simulated::{GraphOptions, SimulatedRuntime};
use stats_core::speculation::{run_speculative, run_speculative_planned};
use stats_core::Config;
use stats_platform::{CostModel, Machine, Topology};
use stats_trace::Cycles;
use stats_workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

/// One `(x, speedup)` sample of a parameter sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The swept parameter value (cost factor, k, m, or chunk count).
    pub x: f64,
    /// Achieved speedup on 28 cores.
    pub speedup: f64,
    /// Commit rate of the run.
    pub commit_rate: f64,
}

/// A named sweep for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sweep {
    /// Benchmark name.
    pub benchmark: String,
    /// Samples in sweep order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Relative speedup change from the first to the last point.
    pub fn relative_change(&self) -> f64 {
        let first = self.points.first().map(|p| p.speedup).unwrap_or(0.0);
        let last = self.points.last().map(|p| p.speedup).unwrap_or(0.0);
        if first == 0.0 {
            0.0
        } else {
            (last - first) / first
        }
    }

    /// The x value with the best speedup.
    pub fn best_x(&self) -> f64 {
        self.points
            .iter()
            .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("no NaN"))
            .map(|p| p.x)
            .unwrap_or(0.0)
    }
}

/// A machine whose synchronization-related costs are scaled by `factor`.
fn machine_with_sync_factor(factor: f64) -> Machine {
    let mut cm = CostModel::default();
    let scale = |c: Cycles| Cycles((c.get() as f64 * factor).round() as u64);
    cm.sync_wakeup = scale(cm.sync_wakeup);
    cm.sync_block = scale(cm.sync_block);
    cm.dispatch = scale(cm.dispatch);
    cm.context_switch = scale(cm.context_switch);
    Machine::new(Topology::paper_machine(), cm)
}

/// A machine whose state-copy operator is `factor`× faster (the §V-C
/// "hardware accelerator" evolution).
fn machine_with_copy_acceleration(factor: u64) -> Machine {
    let mut cm = CostModel::default();
    cm.copy_bytes_per_cycle_intra *= factor;
    cm.copy_bytes_per_cycle_inter *= factor;
    Machine::new(Topology::paper_machine(), cm)
}

fn run_speedup<W: Workload>(w: &W, machine: &Machine, config: Config, scale: Scale) -> SweepPoint {
    let rt = SimulatedRuntime::new(machine.clone());
    let n = scale.inputs_for(w);
    let inputs = w.generate_inputs(n, FIGURE_SEED);
    let report = rt
        .run(
            w.name(),
            w,
            &inputs,
            config,
            w.inner_parallelism(),
            FIGURE_SEED,
        )
        .expect("valid config");
    let outcome = run_speculative(w, &inputs, config, FIGURE_SEED);
    SweepPoint {
        x: 0.0,
        speedup: report.speedup(),
        commit_rate: outcome.commit_rate(),
    }
}

/// Sweep the machine's synchronization costs (0× … 4× the defaults) under
/// each benchmark's tuned configuration.
pub fn sync_cost_sweep(scale: Scale) -> Vec<Sweep> {
    struct V {
        scale: Scale,
    }
    impl WorkloadVisitor for V {
        type Output = Sweep;
        fn visit<W: Workload>(self, w: &W) -> Sweep {
            let cfg = tuned_config(w, 28, self.scale);
            let points = [0.0, 0.5, 1.0, 2.0, 4.0]
                .into_iter()
                .map(|factor| {
                    let machine = machine_with_sync_factor(factor);
                    SweepPoint {
                        x: factor,
                        ..run_speedup(w, &machine, cfg, self.scale)
                    }
                })
                .collect();
            Sweep {
                benchmark: w.name().to_string(),
                points,
            }
        }
    }
    BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, V { scale }))
        .collect()
}

/// Sweep the state-copy operator speed (1× … 16× faster).
pub fn copy_acceleration_sweep(scale: Scale) -> Vec<Sweep> {
    struct V {
        scale: Scale,
    }
    impl WorkloadVisitor for V {
        type Output = Sweep;
        fn visit<W: Workload>(self, w: &W) -> Sweep {
            let cfg = tuned_config(w, 28, self.scale);
            let points = [1u64, 4, 8, 16]
                .into_iter()
                .map(|factor| {
                    let machine = machine_with_copy_acceleration(factor);
                    SweepPoint {
                        x: factor as f64,
                        ..run_speedup(w, &machine, cfg, self.scale)
                    }
                })
                .collect();
            Sweep {
                benchmark: w.name().to_string(),
                points,
            }
        }
    }
    BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, V { scale }))
        .collect()
}

/// Sweep the alternative producers' lookback `k` for one benchmark.
pub fn lookback_sweep(name: &str, scale: Scale) -> Sweep {
    struct V {
        scale: Scale,
    }
    impl WorkloadVisitor for V {
        type Output = Sweep;
        fn visit<W: Workload>(self, w: &W) -> Sweep {
            let machine = Machine::paper_machine();
            let base = tuned_config(w, 28, self.scale);
            let n = self.scale.inputs_for(w);
            let points = [1usize, 2, 4, 8, 16]
                .into_iter()
                .filter_map(|k| {
                    let cfg = clamp_config(
                        Config {
                            lookback: k,
                            ..base
                        },
                        n,
                    );
                    (cfg.lookback == k).then(|| SweepPoint {
                        x: k as f64,
                        ..run_speedup(w, &machine, cfg, self.scale)
                    })
                })
                .collect();
            Sweep {
                benchmark: w.name().to_string(),
                points,
            }
        }
    }
    dispatch(name, V { scale })
}

/// Sweep the number of extra original states `m` for one benchmark.
pub fn extra_states_sweep(name: &str, scale: Scale) -> Sweep {
    struct V {
        scale: Scale,
    }
    impl WorkloadVisitor for V {
        type Output = Sweep;
        fn visit<W: Workload>(self, w: &W) -> Sweep {
            let machine = Machine::paper_machine();
            let base = tuned_config(w, 28, self.scale);
            let points = (0usize..=6)
                .map(|m| {
                    let cfg = Config {
                        extra_states: m,
                        ..base
                    };
                    SweepPoint {
                        x: m as f64,
                        ..run_speedup(w, &machine, cfg, self.scale)
                    }
                })
                .collect();
            Sweep {
                benchmark: w.name().to_string(),
                points,
            }
        }
    }
    dispatch(name, V { scale })
}

/// Sweep the chunk count for one benchmark (the unreachability vs
/// mispeculation trade-off of §III-E).
pub fn chunk_sweep(name: &str, scale: Scale) -> Sweep {
    struct V {
        scale: Scale,
    }
    impl WorkloadVisitor for V {
        type Output = Sweep;
        fn visit<W: Workload>(self, w: &W) -> Sweep {
            let machine = Machine::paper_machine();
            let base = tuned_config(w, 28, self.scale);
            let n = self.scale.inputs_for(w);
            let points = [4usize, 7, 14, 28, 56]
                .into_iter()
                .filter_map(|chunks| {
                    let cfg = clamp_config(Config { chunks, ..base }, n);
                    (cfg.chunks == chunks).then(|| SweepPoint {
                        x: chunks as f64,
                        ..run_speedup(w, &machine, cfg, self.scale)
                    })
                })
                .collect();
            Sweep {
                benchmark: w.name().to_string(),
                points,
            }
        }
    }
    dispatch(name, V { scale })
}

/// Statistics of one chunk-planning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Achieved speedup on 28 cores.
    pub speedup: f64,
    /// Commit rate of the run.
    pub commit_rate: f64,
    /// Spread of per-chunk useful work: (max − min) / mean.
    pub work_imbalance: f64,
}

fn plan_stats<O>(outcome: &stats_core::SpeculationOutcome<O>, speedup: f64) -> PlanStats {
    let works: Vec<f64> = outcome
        .chunks
        .iter()
        .map(|c| c.realized_cost().work as f64)
        .collect();
    let mean = works.iter().sum::<f64>() / works.len() as f64;
    let max = works.iter().fold(0.0f64, |a, b| a.max(*b));
    let min = works.iter().fold(f64::INFINITY, |a, b| a.min(*b));
    PlanStats {
        speedup,
        commit_rate: outcome.commit_rate(),
        work_imbalance: if mean > 0.0 { (max - min) / mean } else { 0.0 },
    }
}

/// Compare balanced (by input count) and profile-weighted (by expected
/// per-input cost) chunk plans for one benchmark — the "length of each
/// computation chunk" axis of the design space (§II-B).
///
/// The measured interaction is subtle and real: weighting by expected
/// work *reduces per-chunk imbalance* but also *moves chunk boundaries*,
/// and for `facedet-and-track` the cheap regions are the low-clutter ones,
/// so work-balanced boundaries migrate into speculation-hostile
/// high-clutter frames and commit less often. The autotuner therefore has
/// to trade §III-A imbalance against §III-E mispeculation when choosing
/// chunk lengths — one reason the paper's design space includes them
/// jointly.
pub fn plan_ablation(name: &str, scale: Scale) -> (PlanStats, PlanStats) {
    struct V {
        scale: Scale,
    }
    impl WorkloadVisitor for V {
        type Output = (PlanStats, PlanStats);
        fn visit<W: Workload>(self, w: &W) -> (PlanStats, PlanStats) {
            let machine = Machine::paper_machine();
            let cfg = tuned_config(w, 28, self.scale);
            let n = self.scale.inputs_for(w);
            let inputs = w.generate_inputs(n, FIGURE_SEED);
            let rt = SimulatedRuntime::new(machine.clone());
            let opts = GraphOptions {
                inner: w.inner_parallelism(),
                assume_all_commit: false,
                outside_work: w.outside_region_work(),
                sync_ops_per_update: w.sync_ops_per_update(),
                lazy_replicas: false,
            };

            // Balanced plan (the default).
            let balanced_outcome = run_speculative(w, &inputs, cfg, FIGURE_SEED);
            let balanced_run = rt
                .run_from_outcome(
                    w.name(),
                    w,
                    &inputs,
                    run_speculative(w, &inputs, cfg, FIGURE_SEED),
                    opts,
                    FIGURE_SEED,
                )
                .expect("valid");
            let balanced = plan_stats(&balanced_outcome, balanced_run.speedup());

            // Weighted plan: the autotuner's profiler pass measures
            // per-input costs. The costs are nondeterministic (facedet's
            // detector failures are random), so the profiler averages
            // several runs to estimate each input's *expected* cost.
            let mut costs = vec![0u64; n];
            let profile_runs = 5;
            for r in 0..profile_runs {
                let profile = run_sequential(w, &inputs, FIGURE_SEED ^ (0x7EA1 + r));
                for (c, p) in costs.iter_mut().zip(&profile.per_input_costs) {
                    *c += p.work / profile_runs;
                }
            }
            let mut plan = plan_weighted(n, cfg.chunks, |i| costs[i]);
            // A weighted plan can make a chunk shorter than the lookback;
            // fall back to balanced in that degenerate case.
            if plan
                .ranges()
                .iter()
                .take(plan.len() - 1)
                .any(|r| r.len() < cfg.lookback)
            {
                plan = stats_core::plan_balanced(n, cfg.chunks);
            }
            let weighted_outcome =
                run_speculative_planned(w, &inputs, cfg, plan.clone(), FIGURE_SEED);
            let weighted_run = rt
                .run_from_outcome(
                    w.name(),
                    w,
                    &inputs,
                    run_speculative_planned(w, &inputs, cfg, plan, FIGURE_SEED),
                    opts,
                    FIGURE_SEED,
                )
                .expect("valid");
            let weighted = plan_stats(&weighted_outcome, weighted_run.speedup());

            (balanced, weighted)
        }
    }
    dispatch(name, V { scale })
}

/// Compare eager (paper Fig. 5: all `m` replicas in parallel) and lazy
/// (stop at the first matching state) original-state replication — an
/// execution-model evolution in the spirit of the paper's conclusion
/// ("the STATS execution model needs to evolve to remove the remaining
/// performance roadblocks").
pub fn replication_ablation(name: &str, scale: Scale) -> (SweepPoint, SweepPoint) {
    struct V {
        scale: Scale,
    }
    impl WorkloadVisitor for V {
        type Output = (SweepPoint, SweepPoint);
        fn visit<W: Workload>(self, w: &W) -> (SweepPoint, SweepPoint) {
            let machine = Machine::paper_machine();
            let cfg = tuned_config(w, 28, self.scale);
            let n = self.scale.inputs_for(w);
            let inputs = w.generate_inputs(n, FIGURE_SEED);
            let rt = SimulatedRuntime::new(machine.clone());
            let run = |lazy: bool| {
                let opts = GraphOptions {
                    inner: w.inner_parallelism(),
                    assume_all_commit: false,
                    outside_work: w.outside_region_work(),
                    sync_ops_per_update: w.sync_ops_per_update(),
                    lazy_replicas: lazy,
                };
                let outcome = run_speculative(w, &inputs, cfg, FIGURE_SEED);
                let commit = outcome.commit_rate();
                let report = rt
                    .run_from_outcome(w.name(), w, &inputs, outcome, opts, FIGURE_SEED)
                    .expect("valid");
                SweepPoint {
                    x: if lazy { 1.0 } else { 0.0 },
                    speedup: report.speedup(),
                    commit_rate: commit,
                }
            };
            (run(false), run(true))
        }
    }
    dispatch(name, V { scale })
}

fn render_sweeps(title: &str, xlabel: &str, sweeps: &[Sweep]) -> String {
    let mut t = TextTable::new(vec![
        "Benchmark".to_string(),
        xlabel.to_string(),
        "speedup".to_string(),
        "commit rate".to_string(),
    ]);
    for sweep in sweeps {
        for p in &sweep.points {
            t.row(vec![
                sweep.benchmark.clone(),
                format!("{}", p.x),
                f2(p.speedup),
                pct(p.commit_rate * 100.0),
            ]);
        }
    }
    format!("{title}\n\n{}", t.render())
}

/// Render every ablation.
pub fn render(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&render_sweeps(
        "Ablation: synchronization cost factor (§III-C)",
        "sync cost x",
        &sync_cost_sweep(scale),
    ));
    out.push('\n');
    out.push_str(&render_sweeps(
        "Ablation: state-copy acceleration (§V-C's proposed evolution)",
        "copy speed x",
        &copy_acceleration_sweep(scale),
    ));
    out.push('\n');
    out.push_str(&render_sweeps(
        "Ablation: alternative-producer lookback k (facetrack)",
        "k",
        &[lookback_sweep("facetrack", scale)],
    ));
    out.push('\n');
    out.push_str(&render_sweeps(
        "Ablation: extra original states m (facetrack)",
        "m",
        &[extra_states_sweep("facetrack", scale)],
    ));
    out.push('\n');
    out.push_str(&render_sweeps(
        "Ablation: chunk count (facetrack)",
        "chunks",
        &[chunk_sweep("facetrack", scale)],
    ));
    out.push('\n');
    let (balanced, weighted) = plan_ablation("facedet-and-track", scale);
    out.push_str(&format!(
        "Ablation: chunk planning for facedet-and-track (bimodal frame costs)\n\n\
         balanced-by-count plan:  {:.2}x, commit rate {:.0}%, work spread {:.2}\n\
         profile-weighted plan:   {:.2}x, commit rate {:.0}%, work spread {:.2}\n\
         (weighted planning trades imbalance for boundary mispeculation)\n",
        balanced.speedup,
        balanced.commit_rate * 100.0,
        balanced.work_imbalance,
        weighted.speedup,
        weighted.commit_rate * 100.0,
        weighted.work_imbalance,
    ));
    out.push('\n');
    let (eager, lazy) = replication_ablation("bodytrack", scale);
    out.push_str(&format!(
        "Ablation: original-state replication strategy for bodytrack (m=4, 500 KB states)\n\n\
         eager (paper, all replicas in parallel): {:.2}x\n\
         lazy (stop at first matching state):     {:.2}x\n\
         (lazy saves replica work but serializes mismatch handling: it wins\n\
          only when the producer's own state usually matches)\n",
        eager.speedup, lazy.speedup,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: Scale = Scale(0.15);

    #[test]
    fn facedet_is_most_sync_elastic() {
        // Fig. 10's sync attribution, verified causally: scaling sync
        // costs hurts facedet-and-track relatively more than swaptions.
        let sweeps = sync_cost_sweep(SCALE);
        let rel = |name: &str| {
            sweeps
                .iter()
                .find(|s| s.benchmark == name)
                .unwrap()
                .relative_change()
        };
        // relative_change is (4x-sync minus no-sync)/no-sync: negative,
        // and most negative for the sync-bound benchmark.
        assert!(
            rel("facedet-and-track") < rel("swaptions"),
            "facedet {} should lose more than swaptions {}",
            rel("facedet-and-track"),
            rel("swaptions")
        );
    }

    #[test]
    fn sync_sweep_is_monotone() {
        // The simulated schedule is not perfectly monotone in the sync
        // costs: changing wakeup/dispatch latencies can shift task
        // placement enough to win back a fraction of a speedup point, so
        // allow a small scheduling-noise margin.
        for sweep in sync_cost_sweep(SCALE) {
            for pair in sweep.points.windows(2) {
                assert!(
                    pair[1].speedup <= pair[0].speedup + 0.15,
                    "{}: more sync cost should not speed things up",
                    sweep.benchmark
                );
            }
        }
    }

    #[test]
    fn copy_acceleration_helps_bodytrack_most() {
        // §V-C: "improving STATS by accelerating the state copy operator
        // is still valuable" — most so for the 500 KB-state benchmark.
        let sweeps = copy_acceleration_sweep(SCALE);
        let gain = |name: &str| {
            sweeps
                .iter()
                .find(|s| s.benchmark == name)
                .unwrap()
                .relative_change()
        };
        for other in ["swaptions", "streamclassifier", "facetrack"] {
            assert!(
                gain("bodytrack") >= gain(other) - 1e-9,
                "bodytrack gain {} vs {other} {}",
                gain("bodytrack"),
                gain(other)
            );
        }
    }

    #[test]
    fn more_extra_states_never_reduce_commit_rate() {
        let sweep = extra_states_sweep("facetrack", Scale(0.3));
        for pair in sweep.points.windows(2) {
            assert!(
                pair[1].commit_rate >= pair[0].commit_rate - 1e-9,
                "m={} rate {} < m={} rate {}",
                pair[1].x,
                pair[1].commit_rate,
                pair[0].x,
                pair[0].commit_rate
            );
        }
    }

    #[test]
    fn deep_chunking_mispeculates_facetrack() {
        // Each boundary carries a roughly constant abort probability, so
        // the *number* of aborts grows with the chunk count — the reason
        // facetrack's autotuner stops at 7 chunks (§V-B).
        let sweep = chunk_sweep("facetrack", Scale(0.5));
        let aborts = |p: &SweepPoint| (1.0 - p.commit_rate) * (p.x - 1.0);
        let shallow: f64 = sweep.points.iter().filter(|p| p.x <= 7.0).map(aborts).sum();
        let deep: f64 = sweep
            .points
            .iter()
            .filter(|p| p.x >= 28.0)
            .map(aborts)
            .sum();
        assert!(
            deep > shallow,
            "deep chunking should abort more: {deep:.1} vs {shallow:.1}"
        );
    }

    #[test]
    fn weighted_plans_trade_imbalance_for_mispeculation() {
        // facedet-and-track's per-frame costs are bimodal (§III-A):
        // weighting chunks by expected work measurably evens the
        // per-chunk work out…
        let (balanced, weighted) = plan_ablation("facedet-and-track", Scale(0.4));
        assert!(
            weighted.work_imbalance < balanced.work_imbalance,
            "weighted plan should even out chunk work: {:.2} vs {:.2}",
            weighted.work_imbalance,
            balanced.work_imbalance
        );
        // …while moving the chunk boundaries. Depending on where the
        // boundaries land relative to speculation-hostile regions the
        // commit rate can shift in either direction (the §III-A vs §III-E
        // trade-off the autotuner navigates); what the re-planning must
        // not do is collapse it.
        assert!(
            weighted.commit_rate >= balanced.commit_rate - 0.2,
            "boundary moves should not collapse the commit rate: {:.2} vs {:.2}",
            weighted.commit_rate,
            balanced.commit_rate
        );
    }

    #[test]
    fn lazy_replication_saves_work_when_speculation_is_clean() {
        // When the producer's own state matches (swaptions commits ~100%
        // with the first original state), lazy replication skips the
        // replica work entirely and cannot regress the speedup.
        let (eager, lazy) = replication_ablation("swaptions", Scale(0.3));
        assert!(
            lazy.speedup >= eager.speedup * 0.98,
            "lazy replication regressed on a clean committer: {:.2} vs {:.2}",
            lazy.speedup,
            eager.speedup
        );
    }

    #[test]
    fn lazy_replication_reduces_original_state_cycles() {
        // The work reduction is unconditional: the lazy graph never
        // contains more OriginalStateGen cycles than the eager one.
        use stats_core::runtime::simulated::{build_task_graph, GraphOptions};
        use stats_core::StateDependence as _;
        use stats_trace::Category;
        use stats_workloads::bodytrack::BodyTrack;
        let w = BodyTrack::paper();
        let scale = Scale(0.4);
        let cfg = tuned_config(&w, 28, scale);
        let n = scale.inputs_for(&w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let machine = Machine::paper_machine();
        let outcome = run_speculative(&w, &inputs, cfg, FIGURE_SEED);
        let cycles_of = |lazy: bool| {
            let opts = GraphOptions {
                inner: w.inner_parallelism(),
                assume_all_commit: false,
                outside_work: w.outside_region_work(),
                sync_ops_per_update: w.sync_ops_per_update(),
                lazy_replicas: lazy,
            };
            let g = build_task_graph("rep", &outcome, &machine, &opts);
            g.tasks()
                .iter()
                .filter(|t| t.category == Category::OriginalStateGen)
                .map(|t| t.duration.get())
                .sum::<u64>()
        };
        let eager = cycles_of(false);
        let lazy = cycles_of(true);
        assert!(lazy <= eager, "lazy {lazy} vs eager {eager}");
        assert!(eager > 0);
    }

    #[test]
    fn lookback_sweep_has_a_knee() {
        // k=1 mispeculates or wastes little; very large k pays alt-
        // producer overhead: the best k is interior or at least not the
        // extreme maximum for facetrack.
        let sweep = lookback_sweep("facetrack", Scale(0.5));
        assert!(sweep.points.len() >= 3);
        let best = sweep.best_x();
        assert!(best >= 2.0, "best k {best} suspiciously small");
    }
}
