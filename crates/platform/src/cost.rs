//! Cycle-cost model for abstract runtime operations.

use crate::{SocketId, Topology};
use serde::{Deserialize, Serialize};
use stats_trace::{Cycles, ThreadId};

/// Converts abstract operation quantities into virtual cycles.
///
/// The defaults are calibrated to the qualitative facts the paper states:
/// synchronization wakeups cost "several hundreds of clock cycles"
/// (§III-C); cross-socket transfers ride the QPI link and are slower than
/// intra-socket ones; state copies are bandwidth-bound.
///
/// All costs are deterministic functions of their inputs; the simulator is
/// reproducible bit-for-bit across hosts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles per abstract work unit reported by workloads (1 by default;
    /// workloads express their compute directly in cycle-equivalents).
    pub cycles_per_work_unit: u64,
    /// Cycles per byte for a state copy within one socket (cache-to-cache
    /// or through DRAM; ~0.25 cy/B models ~35 GB/s effective per-core copy
    /// bandwidth at 2.3 GHz, rounded to integer math as 1 cy / 4 B).
    pub copy_bytes_per_cycle_intra: u64,
    /// Bytes per cycle for a state copy that crosses the QPI interconnect
    /// (slower: the paper's 9.6 GT/s QPI).
    pub copy_bytes_per_cycle_inter: u64,
    /// Fixed cost of a kernel-level thread wakeup (futex/condvar signal).
    pub sync_wakeup: Cycles,
    /// Fixed cost of blocking on a synchronization object (entering the
    /// kernel on the waiter side).
    pub sync_block: Cycles,
    /// Cost of spawning a thread (inflates the paper's setup overhead for
    /// benchmarks that create hundreds of threads, Table I).
    pub thread_spawn: Cycles,
    /// Per-byte cost of comparing two states.
    pub compare_bytes_per_cycle: u64,
    /// Fixed per-state-buffer allocation/initialization cost during setup.
    pub state_alloc: Cycles,
    /// Cost of one uncontended pass through the STATS runtime's
    /// synchronized input/output lists (mutex + queue op).
    pub dispatch: Cycles,
    /// Scheduler/context-switch latency charged when logical threads
    /// oversubscribe the cores (Table I: up to 280 threads on 28 cores).
    pub context_switch: Cycles,
}

impl CostModel {
    /// Cycles for `work` abstract work units.
    pub fn work(&self, work_units: u64) -> Cycles {
        Cycles(work_units * self.cycles_per_work_unit)
    }

    /// Cycles to copy a state of `bytes` between the home sockets of two
    /// logical threads (see [`CostModel::home_socket`]).
    pub fn state_copy(
        &self,
        topology: &Topology,
        bytes: usize,
        from: ThreadId,
        to: ThreadId,
    ) -> Cycles {
        let cross = self.home_socket(topology, from) != self.home_socket(topology, to);
        let bpc = if cross {
            self.copy_bytes_per_cycle_inter
        } else {
            self.copy_bytes_per_cycle_intra
        };
        // Fixed latency floor plus bandwidth term.
        let latency = if cross { 300 } else { 80 };
        Cycles(latency + (bytes as u64).div_ceil(bpc))
    }

    /// Cycles to compare two states of `bytes` each.
    pub fn state_compare(&self, bytes: usize) -> Cycles {
        Cycles(40 + (bytes as u64).div_ceil(self.compare_bytes_per_cycle))
    }

    /// The socket a logical thread is considered "at home" on.
    ///
    /// The simulator does not migrate memory with threads; instead, logical
    /// threads are statically striped across sockets round-robin by id,
    /// which is how the STATS runtime pins its worker pool. Copy costs are
    /// computed from home sockets.
    pub fn home_socket(&self, topology: &Topology, thread: ThreadId) -> SocketId {
        SocketId(thread.0 % topology.sockets())
    }

    /// Setup cost for allocating `states` state buffers of `bytes` each and
    /// spawning `threads` threads (§III-B "Setup").
    pub fn setup(&self, threads: usize, states: usize, bytes: usize) -> Cycles {
        let alloc = self.state_alloc.get() * states as u64;
        let touch = (states as u64) * (bytes as u64).div_ceil(self.copy_bytes_per_cycle_intra);
        let spawn = self.thread_spawn.get() * threads as u64;
        Cycles(alloc + touch + spawn)
    }

    /// Instruction estimate for copying `bytes` (roughly one vector
    /// instruction per 16 bytes plus loop overhead).
    pub fn copy_instructions(&self, bytes: usize) -> u64 {
        20 + (bytes as u64).div_ceil(16)
    }

    /// Instruction estimate for comparing states of `bytes`.
    pub fn compare_instructions(&self, bytes: usize) -> u64 {
        10 + (bytes as u64).div_ceil(16)
    }

    /// Per-update synchronization cost of the STATS runtime: every input
    /// flows through synchronized lists, and signaling blocked threads
    /// pays scheduler latency that grows once logical threads
    /// oversubscribe the cores (§III-C).
    ///
    /// ```
    /// use stats_platform::CostModel;
    /// let cm = CostModel::default();
    /// // Table I's streamcluster: 280 threads on 28 cores pay ~10x more
    /// // per handoff than a balanced configuration.
    /// assert!(cm.per_update_sync(280, 28) > cm.per_update_sync(28, 28));
    /// ```
    pub fn per_update_sync(&self, threads: usize, cores: usize) -> Cycles {
        let base = self.dispatch.get();
        if threads <= cores || cores == 0 {
            return Cycles(base);
        }
        let oversub = (threads - cores) as u64;
        Cycles(base + self.context_switch.get() * oversub / cores as u64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cycles_per_work_unit: 1,
            copy_bytes_per_cycle_intra: 4,
            copy_bytes_per_cycle_inter: 2,
            sync_wakeup: Cycles(600),
            sync_block: Cycles(250),
            thread_spawn: Cycles(9_000),
            compare_bytes_per_cycle: 8,
            state_alloc: Cycles(400),
            dispatch: Cycles(150),
            context_switch: Cycles(3_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_units_scale_linearly() {
        let m = CostModel::default();
        assert_eq!(m.work(0), Cycles::ZERO);
        assert_eq!(m.work(1_000), Cycles(1_000));
    }

    #[test]
    fn cross_socket_copy_costs_more() {
        let m = CostModel::default();
        let t = Topology::paper_machine();
        // Threads 0 and 2 share home socket 0; threads 0 and 1 do not.
        let intra = m.state_copy(&t, 8_000, ThreadId(0), ThreadId(2));
        let inter = m.state_copy(&t, 8_000, ThreadId(0), ThreadId(1));
        assert!(inter > intra, "{inter} should exceed {intra}");
    }

    #[test]
    fn single_socket_never_crosses() {
        let m = CostModel::default();
        let t = Topology::paper_single_socket();
        let a = m.state_copy(&t, 1_000, ThreadId(0), ThreadId(1));
        let b = m.state_copy(&t, 1_000, ThreadId(0), ThreadId(2));
        assert_eq!(a, b);
    }

    #[test]
    fn copy_cost_grows_with_bytes() {
        let m = CostModel::default();
        let t = Topology::paper_machine();
        let small = m.state_copy(&t, 24, ThreadId(0), ThreadId(2));
        let big = m.state_copy(&t, 500_000, ThreadId(0), ThreadId(2));
        // bodytrack's 500 KB states must dominate swaptions' 24 B states.
        assert!(big.get() > 100 * small.get());
    }

    #[test]
    fn sync_is_hundreds_of_cycles() {
        let m = CostModel::default();
        assert!(m.sync_wakeup.get() >= 100 && m.sync_wakeup.get() <= 2_000);
    }

    #[test]
    fn setup_scales_with_threads_and_states() {
        let m = CostModel::default();
        let small = m.setup(2, 2, 100);
        let big = m.setup(280, 280, 100);
        assert!(big.get() > 100 * small.get() / 2);
    }

    #[test]
    fn home_sockets_stripe_round_robin() {
        let m = CostModel::default();
        let t = Topology::paper_machine();
        assert_eq!(m.home_socket(&t, ThreadId(0)), SocketId(0));
        assert_eq!(m.home_socket(&t, ThreadId(1)), SocketId(1));
        assert_eq!(m.home_socket(&t, ThreadId(2)), SocketId(0));
    }

    #[test]
    fn per_update_sync_grows_with_oversubscription() {
        let m = CostModel::default();
        let balanced = m.per_update_sync(28, 28);
        let oversub = m.per_update_sync(280, 28);
        assert_eq!(balanced, m.dispatch);
        assert!(oversub.get() > 10 * balanced.get());
        // No penalty when undersubscribed.
        assert_eq!(m.per_update_sync(4, 28), m.dispatch);
    }

    #[test]
    fn instruction_estimates_monotone() {
        let m = CostModel::default();
        assert!(m.copy_instructions(1_000) > m.copy_instructions(10));
        assert!(m.compare_instructions(1_000) > m.compare_instructions(10));
    }
}
