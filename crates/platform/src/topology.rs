//! Machine topology: sockets and cores.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a hardware core, dense in `0..topology.total_cores()`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Identifier of a CPU socket.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SocketId(pub usize);

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SKT{}", self.0)
    }
}

/// Physical layout of the simulated machine.
///
/// Cores are numbered socket-major: cores `0..cores_per_socket` are on
/// socket 0, the next `cores_per_socket` on socket 1, and so on (matching
/// how the paper's dual-socket Xeon enumerates cores with Hyper-Threading
/// off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    sockets: usize,
    cores_per_socket: usize,
}

impl Topology {
    /// Create a topology.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(sockets: usize, cores_per_socket: usize) -> Self {
        assert!(sockets > 0, "need at least one socket");
        assert!(cores_per_socket > 0, "need at least one core per socket");
        Topology {
            sockets,
            cores_per_socket,
        }
    }

    /// The paper's machine: two Xeon E5-2695 v3 sockets, 14 cores each,
    /// Hyper-Threading and Turbo Boost disabled (§IV-A).
    pub fn paper_machine() -> Self {
        Topology::new(2, 14)
    }

    /// A single socket of the paper's machine (the 14-core configurations
    /// of Figs. 9 and 12).
    pub fn paper_single_socket() -> Self {
        Topology::new(1, 14)
    }

    /// Number of sockets.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Cores on each socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Socket that hosts `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        assert!(core.0 < self.total_cores(), "core {core} out of range");
        SocketId(core.0 / self.cores_per_socket)
    }

    /// Whether two cores live on different sockets (communication between
    /// them crosses the QPI interconnect).
    pub fn cross_socket(&self, a: CoreId, b: CoreId) -> bool {
        self.socket_of(a) != self.socket_of(b)
    }

    /// All cores, in id order.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.total_cores()).map(CoreId)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::paper_machine()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} socket(s) x {} cores = {} cores",
            self.sockets,
            self.cores_per_socket,
            self.total_cores()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_is_28_cores() {
        let t = Topology::paper_machine();
        assert_eq!(t.total_cores(), 28);
        assert_eq!(t.sockets(), 2);
        assert_eq!(Topology::paper_single_socket().total_cores(), 14);
    }

    #[test]
    fn socket_mapping_is_socket_major() {
        let t = Topology::paper_machine();
        assert_eq!(t.socket_of(CoreId(0)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(13)), SocketId(0));
        assert_eq!(t.socket_of(CoreId(14)), SocketId(1));
        assert_eq!(t.socket_of(CoreId(27)), SocketId(1));
    }

    #[test]
    fn cross_socket_detection() {
        let t = Topology::paper_machine();
        assert!(!t.cross_socket(CoreId(0), CoreId(13)));
        assert!(t.cross_socket(CoreId(13), CoreId(14)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn socket_of_rejects_out_of_range() {
        Topology::paper_machine().socket_of(CoreId(28));
    }

    #[test]
    #[should_panic(expected = "at least one socket")]
    fn zero_sockets_rejected() {
        Topology::new(0, 4);
    }

    #[test]
    fn cores_iterator_is_dense() {
        let t = Topology::new(2, 3);
        let cores: Vec<_> = t.cores().collect();
        assert_eq!(cores.len(), 6);
        assert_eq!(cores[0], CoreId(0));
        assert_eq!(cores[5], CoreId(5));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            Topology::paper_machine().to_string(),
            "2 socket(s) x 14 cores = 28 cores"
        );
    }
}
