//! Task graphs: the unit of work the machine schedules.

use serde::{Deserialize, Serialize};
use stats_trace::{Category, Cycles, ThreadId};
use std::fmt;

/// Identifier of a task within one [`TaskGraph`], dense in insertion order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K{}", self.0)
    }
}

/// One schedulable unit: a run-to-completion activity on a logical thread.
///
/// Tasks on the same logical thread execute in insertion order (program
/// order); cross-thread ordering is expressed with explicit dependencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Identity within the graph.
    pub id: TaskId,
    /// Logical thread the task belongs to.
    pub thread: ThreadId,
    /// Activity category (drives overhead attribution).
    pub category: Category,
    /// Duration in virtual cycles.
    pub duration: Cycles,
    /// Committed instructions attributed to this task.
    pub instructions: u64,
    /// Cross-thread dependencies: tasks that must finish before this one
    /// starts. Same-thread predecessors are implicit.
    pub deps: Vec<TaskId>,
    /// Optional label propagated to the trace (e.g. `"chunk 3"`).
    pub label: Option<String>,
}

/// A dependency graph of [`Task`]s plus implicit per-thread program order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Create an empty graph for the named scenario.
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraph {
            name: name.into(),
            tasks: Vec::new(),
        }
    }

    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a task with no instruction count and no label.
    pub fn task(&mut self, thread: ThreadId, category: Category, duration: Cycles) -> TaskId {
        self.task_full(thread, category, duration, 0, Vec::new(), None)
    }

    /// Append a task with an instruction count.
    pub fn task_instr(
        &mut self,
        thread: ThreadId,
        category: Category,
        duration: Cycles,
        instructions: u64,
    ) -> TaskId {
        self.task_full(thread, category, duration, instructions, Vec::new(), None)
    }

    /// Append a fully specified task.
    pub fn task_full(
        &mut self,
        thread: ThreadId,
        category: Category,
        duration: Cycles,
        instructions: u64,
        deps: Vec<TaskId>,
        label: Option<String>,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            id,
            thread,
            category,
            duration,
            instructions,
            deps,
            label,
        });
        id
    }

    /// Add a dependency: `to` waits for `from`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn depend(&mut self, from: TaskId, to: TaskId) {
        assert!(from.0 < self.tasks.len(), "unknown task {from}");
        assert!(to.0 < self.tasks.len(), "unknown task {to}");
        self.tasks[to.0].deps.push(from);
    }

    /// All tasks, in id order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Look up one task.
    pub fn get(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of distinct logical threads used.
    pub fn thread_count(&self) -> usize {
        let mut ids: Vec<_> = self.tasks.iter().map(|t| t.thread).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Sum of all task durations: the single-core lower bound.
    pub fn total_work(&self) -> Cycles {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// A copy of this graph with every task in `category` shrunk to zero
    /// duration and zero instructions.
    ///
    /// This is the paper's what-if emulation (§V-B): "we emulate the
    /// parallel execution removing only the part of the overhead targeted".
    /// Dependencies are preserved so ordering semantics are unchanged; only
    /// time is removed.
    pub fn without_category(&self, category: Category) -> TaskGraph {
        let mut g = self.clone();
        g.name = format!("{} (without {category})", self.name);
        for t in &mut g.tasks {
            if t.category == category {
                t.duration = Cycles::ZERO;
                t.instructions = 0;
            }
        }
        g
    }

    /// A copy with the durations of tasks selected by `predicate` replaced
    /// by `f(old)`. Used for balance what-ifs and cost-model ablations.
    pub fn map_durations(
        &self,
        predicate: impl Fn(&Task) -> bool,
        f: impl Fn(Cycles) -> Cycles,
    ) -> TaskGraph {
        let mut g = self.clone();
        for t in &mut g.tasks {
            if predicate(t) {
                t.duration = f(t.duration);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut g = TaskGraph::new("t");
        let a = g.task(ThreadId(0), Category::Setup, Cycles(5));
        let b = g.task_instr(ThreadId(1), Category::ChunkCompute, Cycles(10), 7);
        g.depend(a, b);
        assert_eq!(g.len(), 2);
        assert_eq!(g.thread_count(), 2);
        assert_eq!(g.total_work(), Cycles(15));
        assert_eq!(g.get(b).deps, vec![a]);
        assert_eq!(g.get(b).instructions, 7);
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn depend_rejects_unknown() {
        let mut g = TaskGraph::new("t");
        let a = g.task(ThreadId(0), Category::Setup, Cycles(5));
        g.depend(a, TaskId(7));
    }

    #[test]
    fn without_category_zeroes_durations() {
        let mut g = TaskGraph::new("t");
        g.task_instr(ThreadId(0), Category::Sync, Cycles(100), 5);
        g.task_instr(ThreadId(0), Category::ChunkCompute, Cycles(10), 9);
        let g2 = g.without_category(Category::Sync);
        assert_eq!(g2.tasks()[0].duration, Cycles::ZERO);
        assert_eq!(g2.tasks()[0].instructions, 0);
        assert_eq!(g2.tasks()[1].duration, Cycles(10));
        // Original untouched.
        assert_eq!(g.tasks()[0].duration, Cycles(100));
    }

    #[test]
    fn map_durations_is_selective() {
        let mut g = TaskGraph::new("t");
        g.task(ThreadId(0), Category::ChunkCompute, Cycles(100));
        g.task(ThreadId(1), Category::ChunkCompute, Cycles(50));
        let g2 = g.map_durations(|t| t.thread == ThreadId(1), |d| Cycles(d.get() * 2));
        assert_eq!(g2.tasks()[0].duration, Cycles(100));
        assert_eq!(g2.tasks()[1].duration, Cycles(100));
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new("e");
        assert!(g.is_empty());
        assert_eq!(g.total_work(), Cycles::ZERO);
        assert_eq!(g.thread_count(), 0);
    }
}
