//! # stats-platform
//!
//! A deterministic discrete-event multicore platform simulator.
//!
//! The paper characterizes STATS binaries on a dual-socket, 28-core Intel
//! Haswell server (§IV-A). That hardware is not available to a library
//! reproduction, and wall-clock measurements would not be deterministic, so
//! this crate models the machine instead:
//!
//! * [`Topology`] — sockets × cores (default 2 × 14, the paper's machine).
//! * [`CostModel`] — cycle costs for abstract operations: work units, state
//!   copies (intra- vs. inter-socket), kernel-level synchronization wakeups
//!   ("several hundreds of clock cycles", §III-C), thread spawns.
//! * [`TaskGraph`] — the unit of execution: tasks with durations,
//!   cross-thread dependencies, and implicit per-thread program order.
//! * [`Machine`] — an event-driven list scheduler that maps logical threads
//!   onto cores (time-multiplexing when threads outnumber cores, as in the
//!   paper's Table I where e.g. `streamcluster` creates 280 threads on 28
//!   cores) and produces a fully instrumented [`stats_trace::Trace`].
//!
//! The scheduler also records, for every task, *which* earlier task bound
//! its start time (a dependency, its thread predecessor, or the task that
//! freed its core). This is the raw material for the post-mortem
//! critical-path analysis the paper performs "similar to what proposed in
//! \[26\]" (§V-B).
//!
//! ```
//! use stats_platform::{Machine, TaskGraph, Topology, CostModel};
//! use stats_trace::{Category, Cycles, ThreadId};
//!
//! let mut g = TaskGraph::new("two-thread demo");
//! let a = g.task(ThreadId(0), Category::ChunkCompute, Cycles(1_000));
//! let b = g.task(ThreadId(1), Category::ChunkCompute, Cycles(1_000));
//! let join = g.task(ThreadId(0), Category::Sync, Cycles(10));
//! g.depend(b, join);
//!
//! let machine = Machine::new(Topology::paper_machine(), CostModel::default());
//! let run = machine.execute(&g).expect("acyclic graph");
//! // Both 1000-cycle tasks ran in parallel; the join adds 10 cycles.
//! assert_eq!(run.makespan, Cycles(1_010));
//! ```

mod cost;
pub mod energy;
mod machine;
mod task;
mod topology;

pub use cost::CostModel;
pub use energy::EnergyModel;
pub use machine::{ExecutionResult, Machine, ScheduleEntry, SimError, StartBinding};
pub use task::{Task, TaskGraph, TaskId};
pub use topology::{CoreId, SocketId, Topology};
