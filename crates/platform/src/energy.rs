//! Energy modeling for simulated executions.
//!
//! The STATS profiler "collects profiling information such as execution
//! time and energy consumption of the program" (§II-C), and the paper's
//! processors have "a peak power consumption of 120W" per 14-core socket
//! (§IV-A). This module estimates energy from a trace: busy cycles burn
//! active power, the remaining core-cycles burn idle power, and the
//! package pays a constant uncore power for the duration of the run.

use crate::Topology;
use serde::{Deserialize, Serialize};
use stats_trace::Trace;

/// A simple CMP power model.
///
/// ```
/// use stats_platform::{EnergyModel, Topology};
/// use stats_trace::{Category, Cycles, ThreadId, TraceBuilder};
///
/// let mut b = TraceBuilder::new("demo");
/// b.push(ThreadId(0), Category::ChunkCompute, Cycles(0), Cycles(2_300_000), 0);
/// let trace = b.finish().unwrap();
/// let model = EnergyModel::paper_machine();
/// // One core busy for 1 ms on the paper machine burns well under a joule.
/// let joules = model.energy_joules(&trace, &Topology::paper_machine());
/// assert!(joules > 0.0 && joules < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Core clock in Hz (the paper's machine: 2.3 GHz).
    pub frequency_hz: f64,
    /// Active power per busy core, in watts.
    pub active_watts_per_core: f64,
    /// Idle power per core, in watts.
    pub idle_watts_per_core: f64,
    /// Constant package/uncore power per socket, in watts.
    pub uncore_watts_per_socket: f64,
}

impl EnergyModel {
    /// The paper machine: 120 W peak per 14-core socket at 2.3 GHz,
    /// split as ~6 W active per core, ~1 W idle, ~22 W uncore.
    pub fn paper_machine() -> Self {
        EnergyModel {
            frequency_hz: 2.3e9,
            active_watts_per_core: 6.0,
            idle_watts_per_core: 1.0,
            uncore_watts_per_socket: 22.0,
        }
    }

    /// Peak power of a machine under this model, in watts.
    pub fn peak_watts(&self, topology: &Topology) -> f64 {
        topology.total_cores() as f64 * self.active_watts_per_core
            + topology.sockets() as f64 * self.uncore_watts_per_socket
    }

    /// Estimated energy of a trace executed on `topology`, in joules.
    ///
    /// Busy core-cycles come from the trace's spans; every remaining
    /// core-cycle up to `cores × makespan` idles.
    pub fn energy_joules(&self, trace: &Trace, topology: &Topology) -> f64 {
        let makespan = trace.makespan().get() as f64;
        if makespan == 0.0 {
            return 0.0;
        }
        let busy: f64 = trace
            .spans()
            .iter()
            .map(|s| s.duration().get() as f64)
            .sum();
        let cores = topology.total_cores() as f64;
        let busy = busy.min(cores * makespan);
        let idle = cores * makespan - busy;
        let seconds_per_cycle = 1.0 / self.frequency_hz;
        let core_energy = (busy * self.active_watts_per_core + idle * self.idle_watts_per_core)
            * seconds_per_cycle;
        let uncore_energy =
            topology.sockets() as f64 * self.uncore_watts_per_socket * makespan * seconds_per_cycle;
        core_energy + uncore_energy
    }

    /// [`EnergyModel::energy_joules`] for a machine described by counts
    /// instead of a [`Topology`] value (convenience for report consumers
    /// that only carry a core count).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not divisible by `sockets` or either is zero.
    pub fn energy_joules_for(&self, trace: &Trace, cores: usize, sockets: usize) -> f64 {
        assert!(
            sockets > 0 && cores.is_multiple_of(sockets),
            "invalid machine shape"
        );
        self.energy_joules(trace, &Topology::new(sockets, cores / sockets))
    }

    /// Energy–delay product in joule-seconds (a common autotuner
    /// objective alongside plain runtime).
    pub fn energy_delay(&self, trace: &Trace, topology: &Topology) -> f64 {
        let seconds = trace.makespan().get() as f64 / self.frequency_hz;
        self.energy_joules(trace, topology) * seconds
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats_trace::{Category, Cycles, ThreadId, TraceBuilder};

    fn trace(busy_threads: usize, cycles: u64) -> Trace {
        let mut b = TraceBuilder::new("energy");
        for i in 0..busy_threads {
            b.push(
                ThreadId(i),
                Category::ChunkCompute,
                Cycles(0),
                Cycles(cycles),
                0,
            );
        }
        b.finish().unwrap()
    }

    #[test]
    fn peak_power_is_paper_scale() {
        let m = EnergyModel::paper_machine();
        let peak = m.peak_watts(&Topology::paper_machine());
        // Two 120 W sockets.
        assert!(peak > 180.0 && peak < 260.0, "peak {peak}");
    }

    #[test]
    fn busier_machines_burn_more_energy() {
        let m = EnergyModel::paper_machine();
        let topo = Topology::paper_machine();
        let light = m.energy_joules(&trace(1, 1_000_000), &topo);
        let heavy = m.energy_joules(&trace(28, 1_000_000), &topo);
        assert!(heavy > light, "{heavy} vs {light}");
        // Same makespan: difference is purely active-vs-idle core power.
        let per_core = (heavy - light) / 27.0 / (1_000_000.0 / m.frequency_hz);
        assert!((per_core - (m.active_watts_per_core - m.idle_watts_per_core)).abs() < 1e-6);
    }

    #[test]
    fn faster_runs_use_less_energy_at_equal_work() {
        // The same busy cycles spread over half the makespan: idle and
        // uncore energy shrink.
        let m = EnergyModel::paper_machine();
        let topo = Topology::paper_machine();
        let serial = m.energy_joules(&trace(1, 2_000_000), &topo);
        let parallel = m.energy_joules(&trace(2, 1_000_000), &topo);
        assert!(parallel < serial, "{parallel} vs {serial}");
    }

    #[test]
    fn empty_trace_costs_nothing() {
        let m = EnergyModel::paper_machine();
        let t = TraceBuilder::new("empty").finish().unwrap();
        assert_eq!(m.energy_joules(&t, &Topology::paper_machine()), 0.0);
    }

    #[test]
    fn energy_delay_scales_with_time_squared() {
        let m = EnergyModel::paper_machine();
        let topo = Topology::paper_single_socket();
        let short = m.energy_delay(&trace(14, 1_000_000), &topo);
        let long = m.energy_delay(&trace(14, 2_000_000), &topo);
        assert!((long / short - 4.0).abs() < 0.01, "ratio {}", long / short);
    }
}
