//! The event-driven scheduler that executes task graphs on modeled cores.

use crate::{CoreId, CostModel, TaskGraph, TaskId, Topology};
use serde::{Deserialize, Serialize};
use stats_trace::{Cycles, ThreadId, Trace, TraceBuilder};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

/// Why a task started when it did: the raw material for critical-path
/// decomposition (\[26\]-style, §V-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StartBinding {
    /// The task was ready at program start and a core was free.
    ProgramStart,
    /// Start time was bound by the completion of a dependency or the
    /// thread's preceding task (the last enabler to finish).
    Enabler(TaskId),
    /// The task was ready earlier but had to wait for a core; it started
    /// the moment this task released the core it runs on.
    CoreFreedBy(TaskId),
}

/// Placement and timing of one task in a realized schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// The task.
    pub task: TaskId,
    /// Core it ran on.
    pub core: CoreId,
    /// Realized start time.
    pub start: Cycles,
    /// Realized end time.
    pub end: Cycles,
    /// Time at which the task became eligible to run.
    pub ready: Cycles,
    /// What bound the start time.
    pub binding: StartBinding,
}

/// Errors from executing a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The dependency graph contains a cycle; the named tasks never became
    /// eligible.
    DependencyCycle { stuck_tasks: usize },
    /// The produced trace failed validation (indicates a scheduler bug).
    InvalidTrace(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DependencyCycle { stuck_tasks } => {
                write!(
                    f,
                    "dependency cycle: {stuck_tasks} task(s) never became ready"
                )
            }
            SimError::InvalidTrace(e) => write!(f, "scheduler produced an invalid trace: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of executing a [`TaskGraph`] on a [`Machine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionResult {
    /// Total virtual execution time.
    pub makespan: Cycles,
    /// Per-task placement and timing, indexed by [`TaskId`].
    pub schedule: Vec<ScheduleEntry>,
    /// The instrumented trace (one span per task, dependency edges
    /// preserved).
    pub trace: Trace,
    /// Number of cores of the executing machine.
    pub cores: usize,
}

impl ExecutionResult {
    /// Speedup relative to a sequential duration.
    pub fn speedup_vs(&self, sequential: Cycles) -> f64 {
        if self.makespan == Cycles::ZERO {
            return 1.0;
        }
        sequential.get() as f64 / self.makespan.get() as f64
    }

    /// Average core utilization in `[0, 1]`: busy core-cycles over
    /// `cores * makespan`.
    pub fn utilization(&self) -> f64 {
        if self.makespan == Cycles::ZERO || self.cores == 0 {
            return 0.0;
        }
        let busy: u64 = self.schedule.iter().map(|e| (e.end - e.start).get()).sum();
        busy as f64 / (self.makespan.get() as f64 * self.cores as f64)
    }

    /// The schedule entry of a task.
    pub fn entry(&self, task: TaskId) -> &ScheduleEntry {
        &self.schedule[task.0]
    }

    /// Walk the binding chain backwards from the task that ends at the
    /// makespan, yielding the critical path (latest-finishing first).
    pub fn critical_path(&self) -> Vec<TaskId> {
        let Some(last) = self
            .schedule
            .iter()
            .max_by_key(|e| (e.end, Reverse(e.task)))
            .map(|e| e.task)
        else {
            return Vec::new();
        };
        let mut path = vec![last];
        let mut cur = last;
        loop {
            match self.schedule[cur.0].binding {
                StartBinding::ProgramStart => break,
                StartBinding::Enabler(prev) | StartBinding::CoreFreedBy(prev) => {
                    path.push(prev);
                    cur = prev;
                }
            }
        }
        path
    }
}

/// A simulated multicore machine: a topology plus a cost model.
///
/// `Machine::execute` runs a [`TaskGraph`] with deterministic event-driven
/// list scheduling: a task becomes *ready* once its cross-thread
/// dependencies and its same-thread predecessor have finished; ready tasks
/// are placed on free cores in `(ready_time, thread, id)` order, preferring
/// each thread's previous core (sticky affinity). Logical threads may
/// outnumber cores, in which case they time-multiplex — exactly the regime
/// of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    topology: Topology,
    cost: CostModel,
}

impl Machine {
    /// Create a machine.
    pub fn new(topology: Topology, cost: CostModel) -> Self {
        Machine { topology, cost }
    }

    /// The paper's 28-core dual-socket machine with default costs.
    pub fn paper_machine() -> Self {
        Machine::new(Topology::paper_machine(), CostModel::default())
    }

    /// The machine's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The machine's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Execute a task graph to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DependencyCycle`] if some tasks can never become
    /// ready, or [`SimError::InvalidTrace`] if internal invariants are
    /// violated (a bug).
    pub fn execute(&self, graph: &TaskGraph) -> Result<ExecutionResult, SimError> {
        let n = graph.len();
        let tasks = graph.tasks();

        // Per-thread program order.
        let mut thread_order: BTreeMap<ThreadId, Vec<TaskId>> = BTreeMap::new();
        for t in tasks {
            thread_order.entry(t.thread).or_default().push(t.id);
        }
        // thread_pred[t] = same-thread predecessor of t.
        let mut thread_pred: Vec<Option<TaskId>> = vec![None; n];
        for order in thread_order.values() {
            for pair in order.windows(2) {
                thread_pred[pair[1].0] = Some(pair[0]);
            }
        }

        //

        // Reverse adjacency + blocker counts.
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut blockers: Vec<usize> = vec![0; n];
        for t in tasks {
            let mut uniq: BTreeSet<TaskId> = t.deps.iter().copied().collect();
            if let Some(p) = thread_pred[t.id.0] {
                uniq.insert(p);
            }
            blockers[t.id.0] = uniq.len();
            for d in uniq {
                dependents[d.0].push(t.id);
            }
        }

        let mut finish: Vec<Option<Cycles>> = vec![None; n];
        // Ready heap: min by (ready_time, thread, id).
        let mut ready: BinaryHeap<Reverse<(Cycles, usize, TaskId)>> = BinaryHeap::new();
        // Enabler (last-finishing blocker) per task.
        let mut enabler: Vec<Option<TaskId>> = vec![None; n];
        for t in tasks {
            if blockers[t.id.0] == 0 {
                ready.push(Reverse((Cycles::ZERO, t.thread.0, t.id)));
            }
        }

        // Running heap: min by (end, task id).
        let mut running: BinaryHeap<Reverse<(Cycles, TaskId)>> = BinaryHeap::new();
        let mut free_cores: BTreeSet<CoreId> = self.topology.cores().collect();
        let mut last_core_of_thread: BTreeMap<ThreadId, CoreId> = BTreeMap::new();
        let mut last_task_on_core: BTreeMap<CoreId, TaskId> = BTreeMap::new();
        let mut core_of_task: Vec<Option<CoreId>> = vec![None; n];

        let mut schedule: Vec<Option<ScheduleEntry>> = vec![None; n];
        let mut ready_time: Vec<Cycles> = vec![Cycles::ZERO; n];
        let mut started = 0usize;
        let mut now = Cycles::ZERO;

        // Completion handler: mark finished, release blockers.
        #[allow(clippy::too_many_arguments)]
        fn complete(
            tid: TaskId,
            end: Cycles,
            tasks: &[crate::Task],
            dependents: &[Vec<TaskId>],
            finish: &mut [Option<Cycles>],
            blockers: &mut [usize],
            enabler: &mut [Option<TaskId>],
            ready: &mut BinaryHeap<Reverse<(Cycles, usize, TaskId)>>,
            ready_time: &mut [Cycles],
            free_cores: &mut BTreeSet<CoreId>,
            core_of_task: &[Option<CoreId>],
            last_task_on_core: &mut BTreeMap<CoreId, TaskId>,
        ) {
            finish[tid.0] = Some(end);
            if let Some(core) = core_of_task[tid.0] {
                free_cores.insert(core);
                last_task_on_core.insert(core, tid);
            }
            for &d in &dependents[tid.0] {
                blockers[d.0] -= 1;
                // Track the last-finishing blocker as the enabler.
                match enabler[d.0] {
                    Some(e) if finish[e.0].unwrap() >= end => {}
                    _ => enabler[d.0] = Some(tid),
                }
                if blockers[d.0] == 0 {
                    ready_time[d.0] = finish[enabler[d.0].unwrap().0].unwrap();
                    ready.push(Reverse((ready_time[d.0], tasks[d.0].thread.0, d)));
                }
            }
        }

        loop {
            // 1. Retire tasks that have completed by `now`.
            while let Some(&Reverse((end, tid))) = running.peek() {
                if end <= now {
                    running.pop();
                    complete(
                        tid,
                        end,
                        tasks,
                        &dependents,
                        &mut finish,
                        &mut blockers,
                        &mut enabler,
                        &mut ready,
                        &mut ready_time,
                        &mut free_cores,
                        &core_of_task,
                        &mut last_task_on_core,
                    );
                } else {
                    break;
                }
            }

            // 2. Place ready tasks on free cores.
            while !free_cores.is_empty() {
                let Some(&Reverse((rt, _, tid))) = ready.peek() else {
                    break;
                };
                if rt > now {
                    break;
                }
                ready.pop();
                let thread = tasks[tid.0].thread;
                let core = match last_core_of_thread.get(&thread) {
                    Some(c) if free_cores.contains(c) => *c,
                    _ => *free_cores.iter().next().expect("checked non-empty"),
                };
                free_cores.remove(&core);
                last_core_of_thread.insert(thread, core);
                core_of_task[tid.0] = Some(core);

                let start = now;
                let end = start + tasks[tid.0].duration;
                let binding = if start > ready_time[tid.0] {
                    // Waited for a core: bound by whatever last freed it.
                    match last_task_on_core.get(&core) {
                        Some(&freer) => StartBinding::CoreFreedBy(freer),
                        None => match enabler[tid.0] {
                            Some(e) => StartBinding::Enabler(e),
                            None => StartBinding::ProgramStart,
                        },
                    }
                } else {
                    match enabler[tid.0] {
                        Some(e) => StartBinding::Enabler(e),
                        None => StartBinding::ProgramStart,
                    }
                };
                schedule[tid.0] = Some(ScheduleEntry {
                    task: tid,
                    core,
                    start,
                    end,
                    ready: ready_time[tid.0],
                    binding,
                });
                running.push(Reverse((end, tid)));
                started += 1;
            }

            // 3. Advance virtual time to the next event.
            let next_completion = running.peek().map(|&Reverse((end, _))| end);
            let next_ready = if free_cores.is_empty() {
                None
            } else {
                ready.peek().map(|&Reverse((rt, _, _))| rt)
            };
            now = match (next_completion, next_ready) {
                (Some(c), Some(r)) => c.min(r).max(now),
                (Some(c), None) => c.max(now),
                (None, Some(r)) => r.max(now),
                (None, None) => break,
            };
        }

        if started != n {
            return Err(SimError::DependencyCycle {
                stuck_tasks: n - started,
            });
        }

        // Build the trace: one span per task (span id == task id).
        let mut builder = TraceBuilder::new(graph.name());
        builder.cores(self.topology.total_cores());
        for t in tasks {
            let e = schedule[t.id.0].as_ref().expect("all tasks scheduled");
            let sid = match &t.label {
                Some(l) => builder.push_labeled(
                    t.thread,
                    t.category,
                    e.start,
                    e.end,
                    t.instructions,
                    l.clone(),
                ),
                None => builder.push(t.thread, t.category, e.start, e.end, t.instructions),
            };
            debug_assert_eq!(sid.0, t.id.0);
        }
        for t in tasks {
            for &d in &t.deps {
                builder.depend(stats_trace::SpanId(d.0), stats_trace::SpanId(t.id.0));
            }
        }
        let trace = builder
            .finish()
            .map_err(|e| SimError::InvalidTrace(e.to_string()))?;

        let schedule: Vec<ScheduleEntry> = schedule
            .into_iter()
            .map(|e| e.expect("scheduled"))
            .collect();
        let makespan = trace.makespan();
        Ok(ExecutionResult {
            makespan,
            schedule,
            trace,
            cores: self.topology.total_cores(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats_trace::Category;

    fn machine(cores: usize) -> Machine {
        Machine::new(Topology::new(1, cores), CostModel::default())
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let mut g = TaskGraph::new("par");
        for i in 0..4 {
            g.task(ThreadId(i), Category::ChunkCompute, Cycles(100));
        }
        let r = machine(4).execute(&g).unwrap();
        assert_eq!(r.makespan, Cycles(100));
        assert!((r.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dependency_serializes() {
        let mut g = TaskGraph::new("dep");
        let a = g.task(ThreadId(0), Category::ChunkCompute, Cycles(100));
        let b = g.task(ThreadId(1), Category::ChunkCompute, Cycles(100));
        g.depend(a, b);
        let r = machine(4).execute(&g).unwrap();
        assert_eq!(r.makespan, Cycles(200));
        assert_eq!(r.entry(b).binding, StartBinding::Enabler(a));
    }

    #[test]
    fn same_thread_tasks_are_ordered() {
        let mut g = TaskGraph::new("order");
        let a = g.task(ThreadId(0), Category::ChunkCompute, Cycles(50));
        let b = g.task(ThreadId(0), Category::ChunkCompute, Cycles(50));
        let r = machine(4).execute(&g).unwrap();
        assert_eq!(r.makespan, Cycles(100));
        assert_eq!(r.entry(b).start, Cycles(50));
        assert_eq!(r.entry(b).binding, StartBinding::Enabler(a));
    }

    #[test]
    fn more_threads_than_cores_multiplex() {
        let mut g = TaskGraph::new("mux");
        for i in 0..8 {
            g.task(ThreadId(i), Category::ChunkCompute, Cycles(100));
        }
        let r = machine(2).execute(&g).unwrap();
        // 8 tasks of 100 cycles on 2 cores = 400 cycles.
        assert_eq!(r.makespan, Cycles(400));
        // Some task must report a core wait.
        assert!(r
            .schedule
            .iter()
            .any(|e| matches!(e.binding, StartBinding::CoreFreedBy(_))));
    }

    #[test]
    fn single_core_serializes_everything() {
        let mut g = TaskGraph::new("1core");
        for i in 0..5 {
            g.task(ThreadId(i), Category::ChunkCompute, Cycles(10));
        }
        let r = machine(1).execute(&g).unwrap();
        assert_eq!(r.makespan, Cycles(50));
    }

    #[test]
    fn cycle_is_reported() {
        let mut g = TaskGraph::new("cycle");
        let a = g.task(ThreadId(0), Category::ChunkCompute, Cycles(10));
        let b = g.task(ThreadId(1), Category::ChunkCompute, Cycles(10));
        g.depend(a, b);
        g.depend(b, a);
        assert!(matches!(
            machine(2).execute(&g),
            Err(SimError::DependencyCycle { stuck_tasks: 2 })
        ));
    }

    #[test]
    fn zero_duration_tasks_complete() {
        let mut g = TaskGraph::new("zero");
        let a = g.task(ThreadId(0), Category::Sync, Cycles::ZERO);
        let b = g.task(ThreadId(1), Category::ChunkCompute, Cycles(10));
        g.depend(a, b);
        let r = machine(2).execute(&g).unwrap();
        assert_eq!(r.makespan, Cycles(10));
    }

    #[test]
    fn empty_graph_executes() {
        let g = TaskGraph::new("empty");
        let r = machine(2).execute(&g).unwrap();
        assert_eq!(r.makespan, Cycles::ZERO);
        assert!(r.critical_path().is_empty());
    }

    #[test]
    fn critical_path_follows_bindings() {
        let mut g = TaskGraph::new("cp");
        let a = g.task(ThreadId(0), Category::ChunkCompute, Cycles(100));
        let b = g.task(ThreadId(1), Category::ChunkCompute, Cycles(10));
        let c = g.task(ThreadId(1), Category::ChunkCompute, Cycles(10));
        g.depend(a, c);
        let _ = b;
        let r = machine(4).execute(&g).unwrap();
        let cp = r.critical_path();
        // Path: c (ends at 110) <- a (ends at 100) <- start.
        assert_eq!(cp, vec![c, a]);
    }

    #[test]
    fn determinism_across_runs() {
        let mut g = TaskGraph::new("det");
        for i in 0..50 {
            let t = g.task(
                ThreadId(i % 7),
                Category::ChunkCompute,
                Cycles(10 + i as u64),
            );
            if i >= 7 {
                g.depend(TaskId(i - 7), t);
            }
        }
        let m = machine(3);
        let r1 = m.execute(&g).unwrap();
        let r2 = m.execute(&g).unwrap();
        assert_eq!(r1.schedule, r2.schedule);
        assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn makespan_bounds() {
        // makespan >= total_work / cores and >= longest chain.
        let mut g = TaskGraph::new("bounds");
        let mut prev = None;
        for i in 0..10 {
            let t = g.task(ThreadId(i % 4), Category::ChunkCompute, Cycles(100));
            if let Some(p) = prev {
                if i % 2 == 0 {
                    g.depend(p, t);
                }
            }
            prev = Some(t);
        }
        let r = machine(4).execute(&g).unwrap();
        let total = g.total_work().get();
        assert!(r.makespan.get() * 4 >= total);
    }

    #[test]
    fn trace_preserves_labels_and_edges() {
        let mut g = TaskGraph::new("meta");
        let a = g.task_full(
            ThreadId(0),
            Category::Setup,
            Cycles(10),
            7,
            Vec::new(),
            Some("the setup".into()),
        );
        let b = g.task(ThreadId(1), Category::ChunkCompute, Cycles(10));
        g.depend(a, b);
        let r = machine(2).execute(&g).unwrap();
        let trace = &r.trace;
        assert_eq!(trace.spans().len(), 2);
        assert_eq!(trace.edges().len(), 1);
        assert_eq!(
            trace.span(stats_trace::SpanId(0)).label.as_deref(),
            Some("the setup")
        );
        assert_eq!(trace.span(stats_trace::SpanId(0)).instructions, 7);
        assert_eq!(trace.meta().scenario, "meta");
    }

    #[test]
    fn duplicate_deps_are_tolerated() {
        let mut g = TaskGraph::new("dup");
        let a = g.task(ThreadId(0), Category::ChunkCompute, Cycles(10));
        let b = g.task(ThreadId(1), Category::ChunkCompute, Cycles(10));
        g.depend(a, b);
        g.depend(a, b); // duplicate edge must not double-count blockers
        let r = machine(2).execute(&g).unwrap();
        assert_eq!(r.makespan, Cycles(20));
    }

    #[test]
    fn sticky_affinity_reuses_cores() {
        let mut g = TaskGraph::new("affinity");
        let a = g.task(ThreadId(5), Category::ChunkCompute, Cycles(10));
        let b = g.task(ThreadId(5), Category::ChunkCompute, Cycles(10));
        let r = machine(4).execute(&g).unwrap();
        assert_eq!(r.entry(a).core, r.entry(b).core);
    }
}
