//! Property tests of the discrete-event scheduler: for arbitrary acyclic
//! task graphs, the realized schedule must respect program order,
//! dependencies, core capacity, and classic makespan bounds.

use proptest::prelude::*;
use stats_platform::{CostModel, Machine, TaskGraph, TaskId, Topology};
use stats_trace::{Category, Cycles, ThreadId};

/// A generated task: thread, duration, and backwards-only dependencies
/// (guaranteeing acyclicity).
#[derive(Debug, Clone)]
struct GenTask {
    thread: usize,
    duration: u64,
    deps: Vec<usize>,
}

fn graph_strategy(max_tasks: usize) -> impl Strategy<Value = (Vec<GenTask>, usize)> {
    let task = (
        0usize..8,
        0u64..500,
        proptest::collection::vec(any::<prop::sample::Index>(), 0..3),
    );
    (proptest::collection::vec(task, 1..max_tasks), 1usize..6).prop_map(|(raw, cores)| {
        let tasks = raw
            .into_iter()
            .enumerate()
            .map(|(i, (thread, duration, dep_idx))| GenTask {
                thread,
                duration,
                deps: dep_idx
                    .into_iter()
                    .filter(|_| i > 0)
                    .map(|ix| ix.index(i.max(1)))
                    .collect(),
            })
            .collect();
        (tasks, cores)
    })
}

fn build(tasks: &[GenTask]) -> TaskGraph {
    let mut g = TaskGraph::new("prop");
    let mut ids = Vec::new();
    for t in tasks {
        let id = g.task(
            ThreadId(t.thread),
            Category::ChunkCompute,
            Cycles(t.duration),
        );
        for &d in &t.deps {
            g.depend(ids[d], id);
        }
        ids.push(id);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedules_respect_all_constraints((tasks, cores) in graph_strategy(40)) {
        let machine = Machine::new(Topology::new(1, cores), CostModel::default());
        let g = build(&tasks);
        let result = machine.execute(&g).expect("acyclic by construction");

        // 1. Dependencies: no task starts before its deps end.
        for (i, t) in tasks.iter().enumerate() {
            let e = result.entry(TaskId(i));
            for &d in &t.deps {
                let dep = result.entry(TaskId(d));
                prop_assert!(e.start >= dep.end, "task {i} started before dep {d}");
            }
        }

        // 2. Program order per logical thread.
        for thread in 0..8 {
            let mut prev_end = Cycles::ZERO;
            for (i, t) in tasks.iter().enumerate() {
                if t.thread == thread {
                    let e = result.entry(TaskId(i));
                    prop_assert!(e.start >= prev_end, "thread {thread} overlapped at task {i}");
                    prev_end = e.end;
                }
            }
        }

        // 3. Core capacity: at every task-start instant, at most `cores`
        //    positive-duration tasks are simultaneously in flight
        //    (concurrency only changes at start events, so sampling the
        //    starts covers every instant).
        for e in &result.schedule {
            if e.start == e.end { continue; }
            let concurrent = result
                .schedule
                .iter()
                .filter(|o| o.start <= e.start && e.start < o.end)
                .count();
            prop_assert!(
                concurrent <= cores,
                "{concurrent} tasks in flight at {} on {cores} cores",
                e.start
            );
        }

        // 4. Durations preserved.
        for (i, t) in tasks.iter().enumerate() {
            let e = result.entry(TaskId(i));
            prop_assert_eq!((e.end - e.start).get(), t.duration);
        }

        // 5. Makespan bounds: max(total/cores, longest chain) <= makespan
        //    <= total (list scheduling is never worse than serial).
        let total: u64 = tasks.iter().map(|t| t.duration).sum();
        prop_assert!(result.makespan.get() <= total.max(1) + 1);
        prop_assert!(result.makespan.get() * cores as u64 >= total);
    }

    #[test]
    fn schedules_are_deterministic((tasks, cores) in graph_strategy(30)) {
        let machine = Machine::new(Topology::new(1, cores), CostModel::default());
        let g = build(&tasks);
        let a = machine.execute(&g).unwrap();
        let b = machine.execute(&g).unwrap();
        prop_assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn more_cores_never_hurt((tasks, cores) in graph_strategy(30)) {
        let g = build(&tasks);
        let small = Machine::new(Topology::new(1, cores), CostModel::default());
        let big = Machine::new(Topology::new(1, cores + 4), CostModel::default());
        let a = small.execute(&g).unwrap();
        let b = big.execute(&g).unwrap();
        // Greedy list scheduling on identical machines with more cores can
        // only start tasks earlier in this event model.
        prop_assert!(b.makespan <= a.makespan, "{} vs {}", b.makespan, a.makespan);
    }

    #[test]
    fn critical_path_is_time_contiguous((tasks, cores) in graph_strategy(30)) {
        let machine = Machine::new(Topology::new(1, cores), CostModel::default());
        let g = build(&tasks);
        let result = machine.execute(&g).unwrap();
        let path = result.critical_path();
        // Walking the binding chain backwards, every predecessor ends
        // exactly when (or before) its successor starts, covering the
        // makespan without gaps.
        for pair in path.windows(2) {
            let later = result.entry(pair[0]);
            let earlier = result.entry(pair[1]);
            prop_assert!(earlier.end <= later.start || earlier.end == later.start,
                "binding chain out of order");
            prop_assert_eq!(later.start, earlier.end, "gap in the critical path");
        }
        if let Some(&first) = path.last() {
            prop_assert_eq!(result.entry(first).start, Cycles::ZERO);
        }
        if let Some(&last) = path.first() {
            prop_assert_eq!(result.entry(last).end, result.makespan);
        }
    }
}
