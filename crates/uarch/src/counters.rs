//! Aggregated microarchitectural counters in Table II's shape.

use crate::LevelCounters;
use serde::{Deserialize, Serialize};

/// One Table II cell group: cache miss counters for three levels plus
/// branch misprediction counters, aggregated across all cores (§V-D).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CounterSet {
    /// Per-core L1 data caches, summed.
    pub l1d: LevelCounters,
    /// Per-core L2 caches, summed.
    pub l2: LevelCounters,
    /// Shared last-level caches, summed.
    pub llc: LevelCounters,
    /// Conditional branches retired.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_misses: u64,
}

impl CounterSet {
    /// Branch misprediction rate in `[0, 1]`.
    pub fn branch_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_misses as f64 / self.branches as f64
        }
    }

    /// Merge absolute counters from another set.
    pub fn merge(&mut self, other: &CounterSet) {
        self.l1d.merge(other.l1d);
        self.l2.merge(other.l2);
        self.llc.merge(other.llc);
        self.branches += other.branches;
        self.branch_misses += other.branch_misses;
    }

    /// Accumulate `(after - before) * scale` into `self`; used by sampled
    /// replays to extrapolate counters to the full stream length.
    pub fn accumulate_scaled(&mut self, before: &CounterSet, after: &CounterSet, scale: f64) {
        fn scaled(a: u64, b: u64, s: f64) -> u64 {
            ((b.saturating_sub(a)) as f64 * s).round() as u64
        }
        self.l1d.accesses += scaled(before.l1d.accesses, after.l1d.accesses, scale);
        self.l1d.misses += scaled(before.l1d.misses, after.l1d.misses, scale);
        self.l2.accesses += scaled(before.l2.accesses, after.l2.accesses, scale);
        self.l2.misses += scaled(before.l2.misses, after.l2.misses, scale);
        self.llc.accesses += scaled(before.llc.accesses, after.llc.accesses, scale);
        self.llc.misses += scaled(before.llc.misses, after.llc.misses, scale);
        self.branches += scaled(before.branches, after.branches, scale);
        self.branch_misses += scaled(before.branch_misses, after.branch_misses, scale);
    }

    /// Misses in billions (the unit Table II prints).
    pub fn billions(x: u64) -> f64 {
        x as f64 / 1e9
    }
}

/// Table II row for one benchmark: counters under the three execution
/// configurations the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ConfigCounters {
    /// Sequential baseline (no TLP).
    pub sequential: CounterSet,
    /// Original (developer-expressed) TLP on all cores.
    pub original: CounterSet,
    /// STATS TLP on all cores.
    pub stats: CounterSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(acc: u64, miss: u64, br: u64, brm: u64) -> CounterSet {
        CounterSet {
            l1d: LevelCounters {
                accesses: acc,
                misses: miss,
            },
            l2: LevelCounters {
                accesses: acc / 2,
                misses: miss / 2,
            },
            llc: LevelCounters {
                accesses: acc / 4,
                misses: miss / 4,
            },
            branches: br,
            branch_misses: brm,
        }
    }

    #[test]
    fn branch_rate_handles_zero() {
        assert_eq!(CounterSet::default().branch_rate(), 0.0);
        let c = cs(100, 10, 50, 5);
        assert!((c.branch_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = cs(100, 10, 50, 5);
        a.merge(&cs(100, 30, 50, 15));
        assert_eq!(a.l1d.accesses, 200);
        assert_eq!(a.l1d.misses, 40);
        assert_eq!(a.branches, 100);
        assert_eq!(a.branch_misses, 20);
    }

    #[test]
    fn accumulate_scaled_extrapolates() {
        let before = cs(100, 10, 50, 5);
        let after = cs(200, 30, 100, 15);
        let mut agg = CounterSet::default();
        agg.accumulate_scaled(&before, &after, 10.0);
        assert_eq!(agg.l1d.accesses, 1_000);
        assert_eq!(agg.l1d.misses, 200);
        assert_eq!(agg.branches, 500);
        assert_eq!(agg.branch_misses, 100);
    }

    #[test]
    fn billions_unit() {
        assert!((CounterSet::billions(2_500_000_000) - 2.5).abs() < 1e-12);
    }
}
