//! Branch predictor models: bimodal and gshare.

/// A branch-direction predictor fed one `(pc, taken)` outcome at a time.
pub trait BranchPredictor {
    /// Predict and train on one branch; returns `true` if the prediction
    /// was correct.
    fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool;

    /// Number of branches observed.
    fn branches(&self) -> u64;

    /// Number of mispredictions.
    fn mispredictions(&self) -> u64;

    /// Misprediction rate in `[0, 1]`.
    fn misprediction_rate(&self) -> f64 {
        if self.branches() == 0 {
            0.0
        } else {
            self.mispredictions() as f64 / self.branches() as f64
        }
    }
}

/// Saturating 2-bit counter (0–1 predict not-taken, 2–3 predict taken).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TwoBit(u8);

impl TwoBit {
    fn predict(self) -> bool {
        self.0 >= 2
    }
    fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// A classic bimodal predictor: a table of 2-bit counters indexed by PC.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: Vec<TwoBit>,
    branches: u64,
    mispredictions: u64,
}

impl BimodalPredictor {
    /// Create a predictor with `entries` counters (rounded up to a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "need at least one entry");
        let entries = entries.next_power_of_two();
        BimodalPredictor {
            table: vec![TwoBit(1); entries],
            branches: 0,
            mispredictions: 0,
        }
    }
}

impl BranchPredictor for BimodalPredictor {
    fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        let idx = (pc as usize >> 2) & (self.table.len() - 1);
        let correct = self.table[idx].predict() == taken;
        self.table[idx].train(taken);
        self.branches += 1;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    fn branches(&self) -> u64 {
        self.branches
    }

    fn mispredictions(&self) -> u64 {
        self.mispredictions
    }
}

/// A gshare predictor: 2-bit counters indexed by `PC xor global history`.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<TwoBit>,
    history: u64,
    history_bits: u32,
    branches: u64,
    mispredictions: u64,
}

impl GsharePredictor {
    /// Create a gshare predictor with `entries` counters (rounded up to a
    /// power of two) and `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `history_bits` exceeds 32.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries > 0, "need at least one entry");
        assert!(history_bits <= 32, "history too long");
        GsharePredictor {
            table: vec![TwoBit(1); entries.next_power_of_two()],
            history: 0,
            history_bits,
            branches: 0,
            mispredictions: 0,
        }
    }
}

impl BranchPredictor for GsharePredictor {
    fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        let mask = self.table.len() as u64 - 1;
        let hist = self.history & ((1u64 << self.history_bits) - 1).max(1);
        let idx = (((pc >> 2) ^ hist) & mask) as usize;
        let correct = self.table[idx].predict() == taken;
        self.table[idx].train(taken);
        self.history = (self.history << 1) | u64::from(taken);
        self.branches += 1;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    fn branches(&self) -> u64 {
        self.branches
    }

    fn mispredictions(&self) -> u64 {
        self.mispredictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_saturates() {
        let mut c = TwoBit(0);
        c.train(false);
        assert_eq!(c.0, 0);
        c.train(true);
        c.train(true);
        c.train(true);
        c.train(true);
        assert_eq!(c.0, 3);
        assert!(c.predict());
    }

    #[test]
    fn bimodal_learns_a_constant_branch() {
        let mut p = BimodalPredictor::new(256);
        for _ in 0..100 {
            p.predict_and_train(0x400000, true);
        }
        // After warm-up, the branch is always predicted correctly.
        assert!(p.misprediction_rate() < 0.05, "{}", p.misprediction_rate());
    }

    #[test]
    fn bimodal_struggles_with_alternating_branch() {
        let mut p = BimodalPredictor::new(256);
        let mut taken = false;
        for _ in 0..1000 {
            taken = !taken;
            p.predict_and_train(0x400000, taken);
        }
        // An alternating branch defeats a 2-bit counter about half the time.
        assert!(p.misprediction_rate() > 0.4);
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut p = GsharePredictor::new(1024, 8);
        let mut taken = false;
        for _ in 0..2000 {
            taken = !taken;
            p.predict_and_train(0x400000, taken);
        }
        // History correlation lets gshare nail the pattern.
        assert!(
            p.misprediction_rate() < 0.1,
            "rate = {}",
            p.misprediction_rate()
        );
    }

    #[test]
    fn distinct_pcs_use_distinct_entries() {
        let mut p = BimodalPredictor::new(1024);
        for _ in 0..50 {
            p.predict_and_train(0x1000, true);
            p.predict_and_train(0x1004, false);
        }
        assert!(p.misprediction_rate() < 0.1);
    }

    #[test]
    fn counters_start_at_zero() {
        let p = BimodalPredictor::new(16);
        assert_eq!(p.branches(), 0);
        assert_eq!(p.mispredictions(), 0);
        assert_eq!(p.misprediction_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        BimodalPredictor::new(0);
    }
}
