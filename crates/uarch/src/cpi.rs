//! CPI modeling: turn cache/branch counters into a cycles-per-instruction
//! estimate.
//!
//! The platform's cost model and the microarchitecture simulators are
//! deliberately decoupled (DESIGN.md §2): workloads declare cycle costs,
//! and Table II's counters are produced separately. This module closes the
//! loop when desired: given a [`CounterSet`], it estimates the CPI a core
//! would sustain, so memory-bound phases (the stream benchmarks' 97–99%
//! L2/LLC miss rates) can be priced more expensively than cache-resident
//! ones.

use crate::CounterSet;
use serde::{Deserialize, Serialize};

/// A simple additive miss-penalty CPI model.
///
/// `CPI = base + (L2 hits × l2_latency + LLC hits × llc_latency +
/// LLC misses × memory_latency + branch misses × branch_penalty) /
/// instructions`, with each level's hits inferred from the counter
/// deltas. Instructions are approximated as `accesses / loads_per_instr`.
/// ```
/// use stats_uarch::{CpiModel, CounterSet};
/// let model = CpiModel::haswell();
/// // No memory stalls: CPI is the base CPI.
/// assert_eq!(model.cpi(&CounterSet::default()), model.base_cpi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpiModel {
    /// Cycles per instruction with a perfect memory system.
    pub base_cpi: f64,
    /// L2 hit latency in cycles (Haswell: ~12).
    pub l2_latency: f64,
    /// LLC hit latency in cycles (Haswell: ~34).
    pub llc_latency: f64,
    /// Memory latency in cycles (Haswell + DDR4-2133: ~200).
    pub memory_latency: f64,
    /// Branch misprediction penalty in cycles (~16).
    pub branch_penalty: f64,
    /// Data accesses per instruction (~0.4 on SPEC-like code).
    pub loads_per_instr: f64,
    /// Fraction of a miss's latency hidden by out-of-order overlap.
    pub mlp_overlap: f64,
}

impl CpiModel {
    /// Parameters approximating the paper's Xeon E5-2695 v3.
    pub fn haswell() -> Self {
        CpiModel {
            base_cpi: 0.5,
            l2_latency: 12.0,
            llc_latency: 34.0,
            memory_latency: 200.0,
            branch_penalty: 16.0,
            loads_per_instr: 0.4,
            mlp_overlap: 0.6,
        }
    }

    /// Estimated CPI for an execution with these counters.
    ///
    /// Returns `base_cpi` when the counter set is empty.
    pub fn cpi(&self, counters: &CounterSet) -> f64 {
        if counters.l1d.accesses == 0 {
            return self.base_cpi;
        }
        let instructions = counters.l1d.accesses as f64 / self.loads_per_instr;
        // Misses at each level that hit in the next.
        let l2_hits = counters.l1d.misses.saturating_sub(counters.l2.misses) as f64;
        let llc_hits = counters.l2.misses.saturating_sub(counters.llc.misses) as f64;
        let mem = counters.llc.misses as f64;
        let exposed = 1.0 - self.mlp_overlap;
        let stall_cycles = exposed
            * (l2_hits * self.l2_latency + llc_hits * self.llc_latency + mem * self.memory_latency)
            + counters.branch_misses as f64 * self.branch_penalty;
        self.base_cpi + stall_cycles / instructions
    }

    /// CPI ratio of one counter set relative to another (how much slower
    /// per instruction configuration `a` runs than `b`).
    pub fn slowdown(&self, a: &CounterSet, b: &CounterSet) -> f64 {
        self.cpi(a) / self.cpi(b)
    }
}

impl Default for CpiModel {
    fn default() -> Self {
        CpiModel::haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LevelCounters;

    fn counters(accesses: u64, l1m: u64, l2m: u64, llcm: u64, br: u64, brm: u64) -> CounterSet {
        CounterSet {
            l1d: LevelCounters {
                accesses,
                misses: l1m,
            },
            l2: LevelCounters {
                accesses: l1m,
                misses: l2m,
            },
            llc: LevelCounters {
                accesses: l2m,
                misses: llcm,
            },
            branches: br,
            branch_misses: brm,
        }
    }

    #[test]
    fn perfect_cache_gives_base_cpi() {
        let m = CpiModel::haswell();
        let c = counters(1_000_000, 0, 0, 0, 100_000, 0);
        assert!((m.cpi(&c) - m.base_cpi).abs() < 1e-12);
        assert_eq!(m.cpi(&CounterSet::default()), m.base_cpi);
    }

    #[test]
    fn memory_bound_code_has_much_higher_cpi() {
        let m = CpiModel::haswell();
        // Streaming: every access misses all the way to memory.
        let streaming = counters(1_000_000, 125_000, 125_000, 125_000, 100_000, 1_000);
        // Resident: everything hits in L1.
        let resident = counters(1_000_000, 100, 50, 10, 100_000, 1_000);
        let s = m.cpi(&streaming);
        let r = m.cpi(&resident);
        assert!(s > 3.0 * r, "streaming CPI {s:.2} vs resident {r:.2}");
    }

    #[test]
    fn branch_misses_raise_cpi() {
        let m = CpiModel::haswell();
        let good = counters(1_000_000, 1_000, 500, 100, 200_000, 1_000);
        let bad = counters(1_000_000, 1_000, 500, 100, 200_000, 50_000);
        assert!(m.cpi(&bad) > m.cpi(&good));
    }

    #[test]
    fn slowdown_is_a_ratio() {
        let m = CpiModel::haswell();
        let a = counters(1_000_000, 125_000, 125_000, 125_000, 0, 0);
        let b = counters(1_000_000, 0, 0, 0, 0, 0);
        let s = m.slowdown(&a, &b);
        assert!((s - m.cpi(&a) / m.cpi(&b)).abs() < 1e-12);
        assert!(s > 1.0);
    }

    #[test]
    fn mlp_overlap_hides_latency() {
        let mut serial = CpiModel::haswell();
        serial.mlp_overlap = 0.0;
        let mut overlapped = CpiModel::haswell();
        overlapped.mlp_overlap = 0.9;
        let c = counters(1_000_000, 125_000, 125_000, 125_000, 0, 0);
        assert!(overlapped.cpi(&c) < serial.cpi(&c));
    }

    #[test]
    fn table2_shapes_translate_to_cpi() {
        // streamclassifier-like counters (97% L2/LLC miss rates) vs
        // swaptions-like (everything resident): the CPI gap explains why
        // the stream benchmarks are memory-bound.
        let m = CpiModel::haswell();
        let stream = counters(
            10_000_000, 1_500_000, 1_455_000, 1_450_000, 1_100_000, 200_000,
        );
        let compute = counters(10_000_000, 270_000, 210_000, 2_000, 1_600_000, 45_000);
        assert!(m.cpi(&stream) > 2.0 * m.cpi(&compute));
    }
}
