//! Set-associative cache and three-level hierarchy simulation.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
}

impl CacheConfig {
    /// Create a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent: zero sizes, a non-power-of-
    /// two line, or a capacity not divisible by `ways * line`.
    pub fn new(capacity: usize, ways: usize, line: usize) -> Self {
        assert!(capacity > 0 && ways > 0 && line > 0, "zero-sized cache");
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(
            capacity.is_multiple_of(ways * line),
            "capacity must be divisible by ways * line"
        );
        CacheConfig {
            capacity,
            ways,
            line,
        }
    }

    /// The paper machine's per-core L1D: 32 KiB, 8-way, 64 B lines.
    pub fn haswell_l1d() -> Self {
        CacheConfig::new(32 * 1024, 8, 64)
    }

    /// The paper machine's per-core L2: 256 KiB, 8-way, 64 B lines.
    pub fn haswell_l2() -> Self {
        CacheConfig::new(256 * 1024, 8, 64)
    }

    /// The paper machine's shared LLC: 35 MB per socket, 20-way.
    /// (Scaled geometry; the simulator works on line granularity.)
    pub fn haswell_llc() -> Self {
        // 35 MB is not a power-of-two-friendly capacity; collapse the
        // real sliced structure (2048 sets x 20 ways x 64 B per slice,
        // 14 slices) into one array rounded to a consistent geometry.
        CacheConfig::new(35 * 1024 * 1024 / (20 * 64) * (20 * 64), 20, 64)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / (self.ways * self.line)
    }
}

/// Hit/miss counters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LevelCounters {
    /// Number of accesses that reached this level.
    pub accesses: u64,
    /// Number of accesses that missed at this level.
    pub misses: u64,
}

impl LevelCounters {
    /// Miss rate in `[0, 1]`; zero when no accesses reached the level.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Accumulate another counter set (per-core aggregation, §V-D).
    pub fn merge(&mut self, other: LevelCounters) {
        self.accesses += other.accesses;
        self.misses += other.misses;
    }
}

/// One set-associative, LRU cache level.
///
/// Tags are stored per set in recency order (index 0 = MRU); lookups are
/// linear within a set, which is exact LRU and fast for realistic
/// associativities.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<u64>>,
    counters: LevelCounters,
}

impl Cache {
    /// Create an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        Cache {
            sets: vec![Vec::with_capacity(config.ways); config.sets()],
            config,
            counters: LevelCounters::default(),
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access the byte address `addr`; returns `true` on hit. On miss the
    /// line is allocated (write-allocate, no distinction between loads and
    /// stores at this fidelity).
    pub fn access(&mut self, addr: u64) -> bool {
        self.counters.accesses += 1;
        let line_addr = addr / self.config.line as u64;
        let set_idx = (line_addr % self.config.sets() as u64) as usize;
        let tag = line_addr / self.config.sets() as u64;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Hit: move to MRU.
            let t = set.remove(pos);
            set.insert(0, t);
            true
        } else {
            self.counters.misses += 1;
            if set.len() == self.config.ways {
                set.pop(); // evict LRU
            }
            set.insert(0, tag);
            false
        }
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> LevelCounters {
        self.counters
    }

    /// Install `addr`'s line without touching the demand counters
    /// (hardware prefetch fills).
    pub fn install(&mut self, addr: u64) {
        let line_addr = addr / self.config.line as u64;
        let set_idx = (line_addr % self.config.sets() as u64) as usize;
        let tag = line_addr / self.config.sets() as u64;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            let t = set.remove(pos);
            set.insert(0, t);
        } else {
            if set.len() == self.config.ways {
                set.pop();
            }
            set.insert(0, tag);
        }
    }

    /// Drop all cached lines but keep counters (e.g. to model a context
    /// switch wiping a core's cache).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

/// A data TLB modeled as a small set-associative cache of page numbers.
///
/// Instrumentation beyond the paper's Table II (the PMU rows it reports
/// stop at the LLC), useful when studying the trackers' locality loss:
/// chunked processing touches more pages per interval, and the TLB sees it
/// before the caches do.
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: Cache,
    page: usize,
}

impl Tlb {
    /// A TLB with `entries` entries of 4 KiB pages at associativity 4
    /// (Haswell's DTLB is 64-entry, 4-way).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of 4.
    pub fn new(entries: usize) -> Self {
        Tlb::with_geometry(entries, 4, 4096)
    }

    /// A TLB with explicit associativity and page size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::new`]).
    pub fn with_geometry(entries: usize, ways: usize, page: usize) -> Self {
        // Reuse the cache machinery: one "line" per page translation.
        Tlb {
            inner: Cache::new(CacheConfig::new(entries * page, ways, page)),
            page,
        }
    }

    /// Touch the page containing `addr`; returns `true` on a TLB hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.inner.access(addr)
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page
    }

    /// Hit/miss counters.
    pub fn counters(&self) -> LevelCounters {
        self.inner.counters()
    }
}

/// Geometry of a three-level hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Per-core unified L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// Whether each core runs a next-line prefetcher: an L1D miss also
    /// installs the following line. Off by default — Table II is
    /// reproduced without it; the `prefetch` ablation quantifies its
    /// effect on the streaming benchmarks.
    pub next_line_prefetch: bool,
}

impl HierarchyConfig {
    /// The paper machine's hierarchy (per core, one LLC per socket).
    pub fn haswell() -> Self {
        HierarchyConfig {
            l1d: CacheConfig::haswell_l1d(),
            l2: CacheConfig::haswell_l2(),
            llc: CacheConfig::haswell_llc(),
            next_line_prefetch: false,
        }
    }

    /// The paper machine's hierarchy with the next-line prefetcher on.
    pub fn haswell_prefetching() -> Self {
        HierarchyConfig {
            next_line_prefetch: true,
            ..Self::haswell()
        }
    }

    /// A small hierarchy for fast tests.
    pub fn tiny() -> Self {
        HierarchyConfig {
            l1d: CacheConfig::new(1024, 2, 64),
            l2: CacheConfig::new(4 * 1024, 4, 64),
            llc: CacheConfig::new(16 * 1024, 4, 64),
            next_line_prefetch: false,
        }
    }
}

/// One core's view of the memory hierarchy: private L1D and L2 backed by a
/// shared LLC (owned elsewhere; accesses are forwarded by the caller, see
/// [`MultiCore`](crate::MultiCore)).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1d: Cache,
    l2: Cache,
    prefetch: bool,
}

impl CacheHierarchy {
    /// Create private levels from a hierarchy configuration.
    pub fn new(config: &HierarchyConfig) -> Self {
        CacheHierarchy {
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            prefetch: config.next_line_prefetch,
        }
    }

    /// Access `addr` through L1D then L2; returns `true` if the access was
    /// satisfied privately, `false` if it must continue to the shared LLC.
    pub fn access(&mut self, addr: u64) -> bool {
        if self.l1d.access(addr) {
            return true;
        }
        if self.prefetch {
            // Next-line prefetch: install the following line quietly
            // (no counter traffic — hardware prefetches are not demand
            // accesses).
            self.l1d.install(addr + self.l1d.config().line as u64);
        }
        self.l2.access(addr)
    }

    /// L1D counters.
    pub fn l1d_counters(&self) -> LevelCounters {
        self.l1d.counters()
    }

    /// L2 counters.
    pub fn l2_counters(&self) -> LevelCounters {
        self.l2.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.counters().accesses, 4);
        assert_eq!(c.counters().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, line 64, capacity 128 => 1 set.
        let mut c = Cache::new(CacheConfig::new(128, 2, 64));
        assert_eq!(c.config().sets(), 1);
        c.access(0); // A
        c.access(64); // B
        c.access(0); // touch A => B is LRU
        c.access(128); // C evicts B
        assert!(c.access(0), "A should still be resident");
        assert!(!c.access(64), "B was evicted");
    }

    #[test]
    fn set_indexing_separates_conflicts() {
        // 2 sets: lines alternate sets.
        let mut c = Cache::new(CacheConfig::new(256, 2, 64));
        assert_eq!(c.config().sets(), 2);
        c.access(0); // set 0
        c.access(64); // set 1
        assert!(c.access(0));
        assert!(c.access(64));
    }

    #[test]
    fn flush_clears_lines_keeps_counters() {
        let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
        c.access(0);
        c.flush();
        assert!(!c.access(0));
        assert_eq!(c.counters().accesses, 2);
        assert_eq!(c.counters().misses, 2);
    }

    #[test]
    fn miss_rate_math() {
        let mut lc = LevelCounters {
            accesses: 10,
            misses: 3,
        };
        assert!((lc.miss_rate() - 0.3).abs() < 1e-12);
        lc.merge(LevelCounters {
            accesses: 10,
            misses: 7,
        });
        assert!((lc.miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(LevelCounters::default().miss_rate(), 0.0);
    }

    #[test]
    fn hierarchy_filters_accesses() {
        let cfg = HierarchyConfig::tiny();
        let mut h = CacheHierarchy::new(&cfg);
        assert!(!h.access(0)); // cold: misses L1 and L2
        assert!(h.access(0)); // L1 hit
        assert_eq!(h.l1d_counters().accesses, 2);
        assert_eq!(h.l1d_counters().misses, 1);
        // Only the L1 miss reached L2.
        assert_eq!(h.l2_counters().accesses, 1);
        assert_eq!(h.l2_counters().misses, 1);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let cfg = CacheConfig::new(1024, 2, 64); // 16 lines
        let mut c = Cache::new(cfg);
        // Stream over 64 lines repeatedly: virtually everything misses.
        for _round in 0..4 {
            for i in 0..64u64 {
                c.access(i * 64);
            }
        }
        let rate = c.counters().miss_rate();
        assert!(rate > 0.9, "expected thrashing, got miss rate {rate}");
    }

    #[test]
    fn small_working_set_fits() {
        let cfg = CacheConfig::new(4096, 4, 64); // 64 lines
        let mut c = Cache::new(cfg);
        for _round in 0..16 {
            for i in 0..8u64 {
                c.access(i * 64);
            }
        }
        // Only the 8 cold misses.
        assert_eq!(c.counters().misses, 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_line() {
        CacheConfig::new(1024, 2, 48);
    }

    #[test]
    fn prefetcher_cuts_streaming_misses() {
        let base = HierarchyConfig::tiny();
        let pref = HierarchyConfig {
            next_line_prefetch: true,
            ..base
        };
        let mut plain = CacheHierarchy::new(&base);
        let mut fetching = CacheHierarchy::new(&pref);
        // Pure streaming at 8-byte stride over a large region.
        for i in 0..40_000u64 {
            plain.access(i * 8);
            fetching.access(i * 8);
        }
        let a = plain.l1d_counters().miss_rate();
        let b = fetching.l1d_counters().miss_rate();
        assert!(b < a / 1.5, "prefetch should cut misses: {b} vs {a}");
    }

    #[test]
    fn install_is_not_a_demand_access() {
        let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
        c.install(0);
        assert_eq!(c.counters().accesses, 0);
        // But the line is now resident.
        assert!(c.access(0));
    }

    #[test]
    fn tlb_hits_within_a_page() {
        let mut tlb = Tlb::new(64);
        assert!(!tlb.access(0x1000));
        assert!(tlb.access(0x1fff), "same page must hit");
        assert!(!tlb.access(0x2000), "next page is a new translation");
        assert_eq!(tlb.page_size(), 4096);
    }

    #[test]
    fn tlb_capacity_bounds_reach() {
        let mut tlb = Tlb::new(64);
        // Touch 256 distinct pages cyclically: thrashing.
        for round in 0..3u64 {
            let _ = round;
            for p in 0..256u64 {
                tlb.access(p * 4096);
            }
        }
        assert!(tlb.counters().miss_rate() > 0.9);
        // A 64-page working set fits exactly.
        let mut small = Tlb::new(64);
        for _ in 0..4 {
            for p in 0..64u64 {
                small.access(p * 4096);
            }
        }
        assert_eq!(small.counters().misses, 64, "only cold misses");
    }

    #[test]
    fn haswell_configs_have_paper_capacities() {
        assert_eq!(CacheConfig::haswell_l1d().capacity, 32 * 1024);
        assert_eq!(CacheConfig::haswell_l2().capacity, 256 * 1024);
        // 35 MB LLC (±rounding to geometry).
        let llc = CacheConfig::haswell_llc().capacity;
        assert!((34 * 1024 * 1024..=36 * 1024 * 1024).contains(&llc));
    }
}
