//! Abstract access streams and their replay on a simulated multicore.

use crate::{
    BimodalPredictor, BranchPredictor, Cache, CacheHierarchy, CounterSet, GsharePredictor,
    HierarchyConfig,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One abstract microarchitectural event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryEvent {
    /// A data access to a byte address.
    Access(u64),
    /// A conditional branch at `pc` with its outcome.
    Branch { pc: u64, taken: bool },
}

/// A statistical description of one program phase's memory/branch
/// behaviour, emitted by workloads instead of full address traces.
///
/// The generator interleaves three access flavours over a private region:
/// sequential streaming (stride 64), hot-set reuse, and uniform-random
/// accesses over the working set; branches mix loop-like (always-taken)
/// and data-dependent (biased random) branches. All draws are seeded, so a
/// profile expands to the same event stream every time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamProfile {
    /// Base address of the phase's data region (keeps phases from aliasing
    /// each other's lines unless they share state on purpose).
    pub region_base: u64,
    /// Touched bytes.
    pub working_set: u64,
    /// Total data accesses the phase performs.
    pub accesses: u64,
    /// Fraction of accesses that are sequential streaming (`[0, 1]`).
    pub streaming: f64,
    /// Fraction of accesses that hit a small hot set (`[0, 1]`,
    /// `streaming + hot <= 1`; the rest are uniform random).
    pub hot: f64,
    /// Total conditional branches the phase executes.
    pub branches: u64,
    /// Fraction of branches that are data-dependent (unpredictable);
    /// the rest are loop-like and almost always taken.
    pub irregular_branches: f64,
    /// Taken-probability of the data-dependent branches.
    pub irregular_bias: f64,
}

impl StreamProfile {
    /// A convenient all-streaming profile (for tests).
    pub fn streaming(region_base: u64, working_set: u64, accesses: u64) -> Self {
        StreamProfile {
            region_base,
            working_set,
            accesses,
            streaming: 1.0,
            hot: 0.0,
            branches: accesses / 8,
            irregular_branches: 0.02,
            irregular_bias: 0.5,
        }
    }

    /// Validate field ranges.
    ///
    /// # Panics
    ///
    /// Panics if fractions are out of `[0, 1]` or `streaming + hot > 1`.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.streaming), "streaming fraction");
        assert!((0.0..=1.0).contains(&self.hot), "hot fraction");
        assert!(
            self.streaming + self.hot <= 1.0 + 1e-9,
            "fractions exceed 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.irregular_branches),
            "irregular fraction"
        );
        assert!((0.0..=1.0).contains(&self.irregular_bias), "branch bias");
        assert!(self.working_set > 0, "empty working set");
    }
}

/// Deterministic event generator expanding a [`StreamProfile`].
#[derive(Debug, Clone)]
pub struct AccessStream {
    profile: StreamProfile,
    rng: ChaCha8Rng,
    emitted_accesses: u64,
    emitted_branches: u64,
    stream_cursor: u64,
}

impl AccessStream {
    /// Create a generator for `profile` with the given seed.
    pub fn new(profile: StreamProfile, seed: u64) -> Self {
        profile.validate();
        AccessStream {
            profile,
            rng: ChaCha8Rng::seed_from_u64(seed),
            emitted_accesses: 0,
            emitted_branches: 0,
            stream_cursor: 0,
        }
    }

    fn next_access(&mut self) -> u64 {
        let p = &self.profile;
        let r: f64 = self.rng.gen();
        let offset = if r < p.streaming {
            // Element-granularity streaming: one line miss per 8 touches.
            let o = self.stream_cursor % p.working_set;
            self.stream_cursor += 8;
            o
        } else if r < p.streaming + p.hot {
            // 4 KiB hot set at the start of the region.
            self.rng.gen_range(0..p.working_set.min(4096))
        } else {
            self.rng.gen_range(0..p.working_set)
        };
        p.region_base + offset
    }

    fn next_branch(&mut self) -> (u64, bool) {
        let p = &self.profile;
        if self.rng.gen::<f64>() < p.irregular_branches {
            // A handful of hard, data-dependent branch sites.
            let site = self.rng.gen_range(0..8u64);
            let taken = self.rng.gen::<f64>() < p.irregular_bias;
            (p.region_base ^ (0xB000 + site * 4), taken)
        } else {
            // Loop-like branches: taken except at iteration boundaries.
            let taken = self.rng.gen::<f64>() < 0.98;
            (p.region_base ^ 0xA000, taken)
        }
    }
}

impl Iterator for AccessStream {
    type Item = MemoryEvent;

    fn next(&mut self) -> Option<MemoryEvent> {
        let p = self.profile;
        let total = p.accesses + p.branches;
        let done = self.emitted_accesses + self.emitted_branches;
        if done >= total {
            return None;
        }
        // Interleave proportionally.
        let want_branch = p.branches > 0
            && (self.emitted_branches * p.accesses <= self.emitted_accesses * p.branches);
        if want_branch && self.emitted_branches < p.branches {
            self.emitted_branches += 1;
            let (pc, taken) = self.next_branch();
            Some(MemoryEvent::Branch { pc, taken })
        } else if self.emitted_accesses < p.accesses {
            self.emitted_accesses += 1;
            Some(MemoryEvent::Access(self.next_access()))
        } else {
            self.emitted_branches += 1;
            let (pc, taken) = self.next_branch();
            Some(MemoryEvent::Branch { pc, taken })
        }
    }
}

/// Which branch predictor each simulated core runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// Per-PC 2-bit counters (the default).
    #[default]
    Bimodal,
    /// Global-history-xor-PC 2-bit counters.
    Gshare,
}

/// A per-core predictor instance.
#[derive(Debug)]
enum CorePredictor {
    Bimodal(BimodalPredictor),
    Gshare(GsharePredictor),
}

impl CorePredictor {
    fn new(kind: PredictorKind) -> Self {
        match kind {
            PredictorKind::Bimodal => CorePredictor::Bimodal(BimodalPredictor::new(4096)),
            PredictorKind::Gshare => CorePredictor::Gshare(GsharePredictor::new(4096, 12)),
        }
    }
    fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        match self {
            CorePredictor::Bimodal(p) => p.predict_and_train(pc, taken),
            CorePredictor::Gshare(p) => p.predict_and_train(pc, taken),
        }
    }
    fn branches(&self) -> u64 {
        match self {
            CorePredictor::Bimodal(p) => p.branches(),
            CorePredictor::Gshare(p) => p.branches(),
        }
    }
    fn mispredictions(&self) -> u64 {
        match self {
            CorePredictor::Bimodal(p) => p.mispredictions(),
            CorePredictor::Gshare(p) => p.mispredictions(),
        }
    }
}

/// A multicore cache/branch simulator: per-core private hierarchies and
/// predictors over per-socket shared LLCs.
///
/// Replays are *sampled*: a profile with billions of accesses is replayed
/// for at most [`MultiCore::SAMPLE_CAP`] events and its counter deltas are
/// scaled up, which preserves rates while keeping simulation fast. The
/// scaling is recorded in the aggregate counters.
#[derive(Debug)]
pub struct MultiCore {
    cores: Vec<CacheHierarchy>,
    predictors: Vec<CorePredictor>,
    llcs: Vec<Cache>,
    cores_per_socket: usize,
    aggregate: CounterSet,
}

impl MultiCore {
    /// Maximum events actually simulated per replay; the remainder is
    /// accounted for by linear scaling.
    pub const SAMPLE_CAP: u64 = 1 << 17;

    /// Create a machine with `cores` cores evenly spread over `sockets`
    /// sockets (one shared LLC per socket).
    ///
    /// ```
    /// use stats_uarch::{HierarchyConfig, MultiCore, StreamProfile};
    /// let mut mc = MultiCore::new(28, 2, &HierarchyConfig::haswell());
    /// mc.replay(0, &StreamProfile::streaming(0x1000, 1 << 20, 100_000), 7);
    /// assert!(mc.counters().l1d.accesses > 0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not divisible by `sockets` or either is zero.
    pub fn new(cores: usize, sockets: usize, config: &HierarchyConfig) -> Self {
        Self::with_predictor(cores, sockets, config, PredictorKind::Bimodal)
    }

    /// Create a machine with an explicit branch-predictor design.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not divisible by `sockets` or either is zero.
    pub fn with_predictor(
        cores: usize,
        sockets: usize,
        config: &HierarchyConfig,
        predictor: PredictorKind,
    ) -> Self {
        assert!(cores > 0 && sockets > 0, "need cores and sockets");
        assert!(
            cores.is_multiple_of(sockets),
            "cores must divide evenly into sockets"
        );
        MultiCore {
            cores: (0..cores).map(|_| CacheHierarchy::new(config)).collect(),
            predictors: (0..cores).map(|_| CorePredictor::new(predictor)).collect(),
            llcs: (0..sockets).map(|_| Cache::new(config.llc)).collect(),
            cores_per_socket: cores / sockets,
            aggregate: CounterSet::default(),
        }
    }

    /// Number of simulated cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Replay a phase profile on `core`, accumulating scaled counters.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn replay(&mut self, core: usize, profile: &StreamProfile, seed: u64) {
        assert!(core < self.cores.len(), "core out of range");
        let total_events = profile.accesses + profile.branches;
        if total_events == 0 {
            return;
        }
        let sampled = total_events.min(Self::SAMPLE_CAP);
        // Scale the profile down to the sample, preserving the mix.
        let ratio = sampled as f64 / total_events as f64;
        let sample_profile = StreamProfile {
            accesses: (profile.accesses as f64 * ratio).round() as u64,
            branches: (profile.branches as f64 * ratio).round() as u64,
            ..*profile
        };
        let scale =
            total_events as f64 / (sample_profile.accesses + sample_profile.branches).max(1) as f64;

        let socket = core / self.cores_per_socket;
        let before = self.snapshot(core, socket);
        for ev in AccessStream::new(sample_profile, seed) {
            match ev {
                MemoryEvent::Access(addr) => {
                    if !self.cores[core].access(addr) {
                        self.llcs[socket].access(addr);
                    }
                }
                MemoryEvent::Branch { pc, taken } => {
                    self.predictors[core].predict_and_train(pc, taken);
                }
            }
        }
        let after = self.snapshot(core, socket);
        self.aggregate.accumulate_scaled(&before, &after, scale);
    }

    fn snapshot(&self, core: usize, socket: usize) -> CounterSet {
        CounterSet {
            l1d: self.cores[core].l1d_counters(),
            l2: self.cores[core].l2_counters(),
            llc: self.llcs[socket].counters(),
            branches: self.predictors[core].branches(),
            branch_misses: self.predictors[core].mispredictions(),
        }
    }

    /// Aggregated (scaled) counters across all cores, Table II-style.
    pub fn counters(&self) -> CounterSet {
        self.aggregate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(accesses: u64) -> StreamProfile {
        StreamProfile {
            region_base: 0x1000_0000,
            working_set: 256 * 1024,
            accesses,
            streaming: 0.3,
            hot: 0.4,
            branches: accesses / 4,
            irregular_branches: 0.1,
            irregular_bias: 0.5,
        }
    }

    #[test]
    fn stream_emits_exact_event_counts() {
        let p = profile(1_000);
        let events: Vec<_> = AccessStream::new(p, 7).collect();
        let accesses = events
            .iter()
            .filter(|e| matches!(e, MemoryEvent::Access(_)))
            .count() as u64;
        let branches = events.len() as u64 - accesses;
        assert_eq!(accesses, p.accesses);
        assert_eq!(branches, p.branches);
    }

    #[test]
    fn stream_is_deterministic() {
        let p = profile(500);
        let a: Vec<_> = AccessStream::new(p, 42).collect();
        let b: Vec<_> = AccessStream::new(p, 42).collect();
        assert_eq!(a, b);
        let c: Vec<_> = AccessStream::new(p, 43).collect();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn accesses_stay_in_region() {
        let p = profile(2_000);
        for ev in AccessStream::new(p, 1) {
            if let MemoryEvent::Access(addr) = ev {
                assert!(addr >= p.region_base);
                assert!(addr < p.region_base + p.working_set);
            }
        }
    }

    #[test]
    fn replay_accumulates_counters() {
        let mut mc = MultiCore::new(4, 2, &HierarchyConfig::tiny());
        mc.replay(0, &profile(10_000), 3);
        let c = mc.counters();
        assert!(c.l1d.accesses > 0);
        assert!(c.branches > 0);
        assert!(c.l1d.miss_rate() > 0.0);
    }

    #[test]
    fn sampling_scales_counts() {
        // 10x the events should give ~10x the scaled counters.
        let mut a = MultiCore::new(1, 1, &HierarchyConfig::tiny());
        let mut b = MultiCore::new(1, 1, &HierarchyConfig::tiny());
        let base = 400_000; // beyond SAMPLE_CAP when x10
        a.replay(0, &profile(base), 3);
        b.replay(0, &profile(base * 10), 3);
        let ra = a.counters().l1d.accesses as f64;
        let rb = b.counters().l1d.accesses as f64;
        let ratio = rb / ra;
        assert!((ratio - 10.0).abs() < 1.5, "scaled ratio = {ratio}");
    }

    #[test]
    fn larger_working_set_misses_more() {
        let cfg = HierarchyConfig::tiny();
        let mut small = MultiCore::new(1, 1, &cfg);
        let mut large = MultiCore::new(1, 1, &cfg);
        let mut p_small = profile(50_000);
        p_small.working_set = 2 * 1024; // fits in L2
        p_small.streaming = 0.0;
        p_small.hot = 0.0;
        let mut p_large = p_small;
        p_large.working_set = 1024 * 1024; // blows out the LLC
        small.replay(0, &p_small, 9);
        large.replay(0, &p_large, 9);
        assert!(
            large.counters().l1d.miss_rate() > small.counters().l1d.miss_rate(),
            "large {} vs small {}",
            large.counters().l1d.miss_rate(),
            small.counters().l1d.miss_rate()
        );
    }

    #[test]
    fn irregular_branches_mispredict_more() {
        let cfg = HierarchyConfig::tiny();
        let mut reg = MultiCore::new(1, 1, &cfg);
        let mut irr = MultiCore::new(1, 1, &cfg);
        let mut p_reg = profile(50_000);
        p_reg.irregular_branches = 0.0;
        let mut p_irr = profile(50_000);
        p_irr.irregular_branches = 0.9;
        reg.replay(0, &p_reg, 9);
        irr.replay(0, &p_irr, 9);
        assert!(irr.counters().branch_rate() > reg.counters().branch_rate());
    }

    #[test]
    #[should_panic(expected = "core out of range")]
    fn replay_rejects_bad_core() {
        let mut mc = MultiCore::new(2, 1, &HierarchyConfig::tiny());
        mc.replay(5, &profile(10), 0);
    }

    #[test]
    fn cores_share_socket_llc() {
        let cfg = HierarchyConfig::tiny();
        let mut mc = MultiCore::new(2, 1, &cfg);
        // Same region on both cores: the second core's LLC accesses can hit
        // lines brought in by the first.
        let mut p = profile(30_000);
        p.streaming = 0.0;
        p.hot = 1.0;
        mc.replay(0, &p, 1);
        let after_first = mc.counters().llc;
        mc.replay(1, &p, 2);
        let after_second = mc.counters().llc;
        // Second replay added accesses but relatively fewer misses.
        let first_rate = after_first.miss_rate();
        let second_delta_miss = after_second.misses - after_first.misses;
        let second_delta_acc = after_second.accesses - after_first.accesses;
        if second_delta_acc > 0 {
            let second_rate = second_delta_miss as f64 / second_delta_acc as f64;
            assert!(second_rate <= first_rate + 1e-9);
        }
    }
}

#[cfg(test)]
mod predictor_tests {
    use super::*;

    #[test]
    fn gshare_machines_track_history_patterns() {
        // A strongly patterned branch stream: gshare beats bimodal.
        let cfg = HierarchyConfig::tiny();
        let mut p = StreamProfile::streaming(0x1000, 64 * 1024, 60_000);
        p.irregular_branches = 0.0; // loop-like, highly regular branches
        let mut bimodal = MultiCore::with_predictor(1, 1, &cfg, PredictorKind::Bimodal);
        let mut gshare = MultiCore::with_predictor(1, 1, &cfg, PredictorKind::Gshare);
        bimodal.replay(0, &p, 5);
        gshare.replay(0, &p, 5);
        // Both predict the regular stream well; gshare is at least as good.
        assert!(gshare.counters().branch_rate() <= bimodal.counters().branch_rate() + 0.02);
    }

    #[test]
    fn default_predictor_is_bimodal() {
        let cfg = HierarchyConfig::tiny();
        let a = MultiCore::new(2, 1, &cfg);
        let b = MultiCore::with_predictor(2, 1, &cfg, PredictorKind::Bimodal);
        assert_eq!(a.cores(), b.cores());
    }
}
