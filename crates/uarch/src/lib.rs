//! # stats-uarch
//!
//! Microarchitecture simulators standing in for hardware performance
//! counters.
//!
//! The paper's Table II reports L1D/L2/LLC cache misses and branch
//! mispredictions for three configurations of each benchmark (sequential,
//! original TLP on 28 cores, STATS TLP on 28 cores), "computed by adding
//! all of the per-core counters" (§V-D). We cannot read a Haswell PMU, so
//! this crate simulates the relevant structures:
//!
//! * [`Cache`] — a set-associative, LRU, write-allocate cache;
//!   [`CacheHierarchy`] stacks per-core L1D/L2 under a shared LLC.
//! * [`BranchPredictor`] — bimodal (2-bit counters) and gshare predictors.
//! * [`MemoryEvent`]/[`AccessStream`] — the abstract event streams
//!   workloads emit (deterministic, seeded), replayed through the
//!   simulators by [`MultiCore`].
//! * [`CounterSet`] — aggregated counters in Table II's shape (totals plus
//!   miss rates).
//!
//! ```
//! use stats_uarch::{Cache, CacheConfig};
//!
//! // An 8 KiB, 2-way, 64 B-line cache.
//! let mut c = Cache::new(CacheConfig::new(8 * 1024, 2, 64));
//! assert!(!c.access(0x1000));        // cold miss
//! assert!(c.access(0x1000));         // hit
//! assert!(c.access(0x1010));         // same line: hit
//! ```

mod branch;
mod cache;
mod counters;
pub mod cpi;
mod stream;

pub use branch::{BimodalPredictor, BranchPredictor, GsharePredictor};
pub use cache::{Cache, CacheConfig, CacheHierarchy, HierarchyConfig, LevelCounters, Tlb};
pub use counters::{ConfigCounters, CounterSet};
pub use cpi::CpiModel;
pub use stream::{AccessStream, MemoryEvent, MultiCore, PredictorKind, StreamProfile};
