//! Property tests of the cache and branch-predictor simulators.

use proptest::prelude::*;
use stats_uarch::{
    AccessStream, BimodalPredictor, BranchPredictor, Cache, CacheConfig, GsharePredictor,
    MemoryEvent, StreamProfile,
};

fn cache_config_strategy() -> impl Strategy<Value = CacheConfig> {
    (1usize..6, 0usize..4, 6u32..8).prop_map(|(sets_pow, ways_pow, line_pow)| {
        let ways = 1 << ways_pow;
        let line = 1usize << line_pow;
        let sets = 1 << sets_pow;
        CacheConfig::new(sets * ways * line, ways, line)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Re-accessing an address immediately after touching it always hits
    /// (temporal locality is never lost instantaneously).
    #[test]
    fn immediate_reuse_hits(cfg in cache_config_strategy(), addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.access(a), "immediate reuse of {a:#x} missed");
        }
    }

    /// Counters are consistent: misses never exceed accesses, and a
    /// working set that fits in the cache converges to zero misses.
    #[test]
    fn counters_are_consistent(cfg in cache_config_strategy(), seed in 0u64..100) {
        let mut c = Cache::new(cfg);
        let lines = cfg.capacity / cfg.line;
        // Touch at most half the cache's lines repeatedly.
        let footprint = (lines / 2).max(1);
        let mut x = seed;
        let mut addrs = Vec::new();
        for _ in 0..footprint {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            addrs.push((x as usize % footprint) as u64 * cfg.line as u64);
        }
        for _round in 0..4 {
            for &a in &addrs {
                c.access(a);
            }
        }
        let counters = c.counters();
        prop_assert!(counters.misses <= counters.accesses);
        // Cold misses only: bounded by the distinct lines touched.
        prop_assert!(counters.misses <= footprint as u64);
    }

    /// The cache never holds more lines than its capacity allows: after
    /// filling with a huge stream, re-touching more-than-capacity distinct
    /// lines in LRU order must miss again.
    #[test]
    fn capacity_is_respected(cfg in cache_config_strategy()) {
        let mut c = Cache::new(cfg);
        let lines = (cfg.capacity / cfg.line) as u64;
        // Stream over 2x capacity in a cyclic pattern: steady-state LRU
        // must miss on every access (each line evicted before reuse).
        for round in 0..3u64 {
            for i in 0..(2 * lines) {
                let _ = round;
                c.access(i * cfg.line as u64);
            }
        }
        let rate = c.counters().miss_rate();
        prop_assert!(rate > 0.99, "cyclic over-capacity stream must thrash, rate {rate}");
    }

    /// Predictors never report more mispredictions than branches, and a
    /// constant branch converges to perfect prediction for both designs.
    #[test]
    fn predictors_learn_constants(pc in 0u64..1_000_000, taken in any::<bool>()) {
        let mut bimodal = BimodalPredictor::new(1024);
        let mut gshare = GsharePredictor::new(1024, 8);
        for _ in 0..256 {
            bimodal.predict_and_train(pc, taken);
            gshare.predict_and_train(pc, taken);
        }
        prop_assert!(bimodal.mispredictions() <= bimodal.branches());
        prop_assert!(bimodal.misprediction_rate() < 0.05);
        prop_assert!(gshare.misprediction_rate() < 0.1);
    }

    /// Access streams emit exactly the profiled number of events, stay in
    /// their region, and reproduce bit-for-bit per seed.
    #[test]
    fn streams_match_their_profile(
        accesses in 1u64..3_000,
        branch_div in 1u64..16,
        streaming in 0.0f64..1.0,
        seed in 0u64..1_000,
    ) {
        let profile = StreamProfile {
            region_base: 0x10_0000,
            working_set: 64 * 1024,
            accesses,
            streaming,
            hot: (1.0 - streaming) / 2.0,
            branches: accesses / branch_div,
            irregular_branches: 0.2,
            irregular_bias: 0.5,
        };
        let events: Vec<_> = AccessStream::new(profile, seed).collect();
        let n_access = events.iter().filter(|e| matches!(e, MemoryEvent::Access(_))).count() as u64;
        prop_assert_eq!(n_access, accesses);
        prop_assert_eq!(events.len() as u64, accesses + profile.branches);
        for e in &events {
            if let MemoryEvent::Access(a) = e {
                prop_assert!(*a >= profile.region_base);
                prop_assert!(*a < profile.region_base + profile.working_set);
            }
        }
        let again: Vec<_> = AccessStream::new(profile, seed).collect();
        prop_assert_eq!(events, again);
    }
}
