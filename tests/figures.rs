//! Stability and sanity of the figure harnesses at reduced scale: every
//! experiment renders, covers all benchmarks, and reproduces bit-for-bit.

use stats_workbench::bench::pipeline::Scale;
use stats_workbench::bench::{fig09, fig10, fig14, fig16, table1, table2};
use stats_workbench::workloads::BENCHMARK_NAMES;

const SCALE: Scale = Scale(0.08);

#[test]
fn fig09_is_deterministic() {
    let a = fig09::compute(SCALE);
    let b = fig09::compute(SCALE);
    assert_eq!(a, b);
    assert_eq!(a.len(), 7, "six benchmarks + geomean");
}

#[test]
fn every_render_names_every_benchmark() {
    let renders = [
        table1::render(SCALE),
        fig09::render(SCALE),
        fig14::render(SCALE),
        table2::render(Scale(0.01)),
        fig16::render(SCALE, 3),
    ];
    for (i, r) in renders.iter().enumerate() {
        for name in BENCHMARK_NAMES {
            assert!(r.contains(name), "render {i} missing {name}:\n{r}");
        }
    }
}

#[test]
fn fig10_breakdowns_are_internally_consistent() {
    for b in fig10::compute(SCALE) {
        let shares = b.normalized_percent();
        let sum: f64 = shares.iter().map(|(_, v)| v).sum();
        // Shares sum to the total loss percentage (within float noise)
        // whenever any loss was attributed.
        if b.marginal.iter().any(|(_, v)| *v > 0.0) {
            assert!(
                (sum - b.total_lost_percent()).abs() < 1e-6,
                "{}: {sum} vs {}",
                b.benchmark,
                b.total_lost_percent()
            );
        }
        assert!(b.commit_rate >= 0.0 && b.commit_rate <= 1.0);
    }
}

#[test]
fn table2_modes_have_consistent_counters() {
    for row in table2::compute(Scale(0.01)) {
        for c in [
            &row.counters.sequential,
            &row.counters.original,
            &row.counters.stats,
        ] {
            assert!(c.l1d.misses <= c.l1d.accesses, "{}", row.benchmark);
            assert!(
                c.l2.accesses <= c.l1d.accesses,
                "{}: L2 filtered by L1",
                row.benchmark
            );
            assert!(
                c.llc.accesses <= c.l2.accesses,
                "{}: LLC filtered by L2",
                row.benchmark
            );
            assert!(c.branch_misses <= c.branches);
        }
    }
}

#[test]
fn fig16_quality_distributions_are_sane() {
    for row in fig16::compute(SCALE, 5) {
        for d in [&row.sequential, &row.stats] {
            assert_eq!(d.len(), 5);
            assert!(d.worst() <= d.median() && d.median() <= d.best());
            assert!(d.best() <= 1.0 && d.worst() >= 0.0);
        }
    }
}

#[test]
fn exporters_handle_real_traces() {
    use stats_workbench::bench::pipeline::{run_benchmark, tuned_config, Machines, FIGURE_SEED};
    use stats_workbench::trace::analysis::busy_fraction;
    use stats_workbench::trace::chrome::to_chrome_trace;
    use stats_workbench::trace::timeline::{render_timeline, TimelineOptions};
    use stats_workbench::workloads::swaptions::Swaptions;

    let w = Swaptions::paper();
    let machines = Machines::paper();
    let cfg = tuned_config(&w, 28, SCALE);
    let report = run_benchmark(&w, &machines.cores28, cfg, SCALE, FIGURE_SEED);
    let trace = &report.execution.trace;

    let json = to_chrome_trace(trace);
    assert!(json.matches("\"ph\":\"X\"").count() >= trace.spans().len());

    let gantt = render_timeline(trace, &TimelineOptions::default());
    assert!(gantt.lines().count() > 5);

    // During the parallel phase many threads are busy simultaneously.
    assert!(busy_fraction(trace, 8) > 0.2, "{}", busy_fraction(trace, 8));
}
