//! The threaded runtime and the simulated runtime must agree on decisions
//! and outputs for every real benchmark — all nondeterminism is derived
//! from (seed, role), never from scheduling.

use stats_workbench::bench::pipeline::{tuned_config, Scale, FIGURE_SEED};
use stats_workbench::core::runtime::simulated::SimulatedRuntime;
use stats_workbench::core::runtime::threaded::run_threaded;
use stats_workbench::workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

const SCALE: Scale = Scale(0.08);

struct Consistency;

impl WorkloadVisitor for Consistency {
    type Output = ();
    fn visit<W: Workload>(self, w: &W) {
        let n = SCALE.inputs_for(w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let cfg = tuned_config(w, 28, SCALE);

        let rt = SimulatedRuntime::paper_machine();
        let simulated = rt
            .run(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                FIGURE_SEED,
            )
            .expect("simulated run");
        let threaded = run_threaded(w, &inputs, cfg, FIGURE_SEED);

        assert_eq!(
            threaded.decisions,
            simulated.decisions,
            "{}: decision mismatch",
            w.name()
        );
        assert_eq!(
            threaded.outputs.len(),
            simulated.outputs.len(),
            "{}: output count mismatch",
            w.name()
        );
    }
}

#[test]
fn threaded_and_simulated_runtimes_agree_on_every_benchmark() {
    for name in BENCHMARK_NAMES {
        dispatch(name, Consistency);
    }
}

#[test]
fn threaded_runtime_is_reproducible_under_load() {
    // Run the same threaded execution repeatedly; host scheduling noise
    // must never leak into results.
    struct Repeat;
    impl WorkloadVisitor for Repeat {
        type Output = ();
        fn visit<W: Workload>(self, w: &W) {
            let n = Scale(0.05).inputs_for(w);
            let inputs = w.generate_inputs(n, 7);
            let cfg = tuned_config(w, 28, Scale(0.05));
            let first = run_threaded(w, &inputs, cfg, 7);
            for _ in 0..3 {
                let again = run_threaded(w, &inputs, cfg, 7);
                assert_eq!(again.decisions, first.decisions, "{}", w.name());
            }
        }
    }
    // The two cheapest benchmarks keep this test quick while still
    // exercising real thread interleavings.
    for name in ["facetrack", "facedet-and-track"] {
        dispatch(name, Repeat);
    }
}
