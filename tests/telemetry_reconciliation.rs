//! Live telemetry must reconcile exactly with post-mortem traces.
//!
//! The telemetry sink records two independent views of a run: protocol
//! counters (derived from commit/abort outcomes) and per-category span
//! accounting (recorded when the run is lowered to tasks). The trace is a
//! third view, produced by the machine that executed those tasks. For
//! every benchmark all three must agree to the cycle — and the threaded
//! runtime, which records its counters live at the protocol call sites,
//! must report the same protocol totals as the simulated one.

use stats_telemetry::{Counter, TelemetrySink};
use stats_trace::CATEGORIES;
use stats_workbench::bench::pipeline::{tuned_config, Scale, FIGURE_SEED};
use stats_workbench::core::runtime::pool::WorkerPool;
use stats_workbench::core::runtime::simulated::SimulatedRuntime;
use stats_workbench::core::runtime::threaded::{run_threaded_faulted_on, run_threaded_observed};
use stats_workbench::core::{ChunkDecision, FaultPlan};
use stats_workbench::workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

const SCALE: Scale = Scale(0.05);

/// The protocol counters both runtimes record (time counters are in
/// different units — simulated cycles vs. wall nanoseconds — and are
/// checked separately).
const PROTOCOL: [Counter; 12] = [
    Counter::ChunksStarted,
    Counter::ChunksCommitted,
    Counter::ChunksAborted,
    Counter::Reruns,
    Counter::ReplicasValidated,
    Counter::StateCopies,
    Counter::StateComparisons,
    Counter::StateBytesLogical,
    Counter::StateBytesCopied,
    Counter::SpecCandidates,
    Counter::CandidateHits,
    Counter::RerunSegments,
];

/// The fault counters, reconciled exactly under injected faults (and
/// zero without them).
const FAULTS: [Counter; 3] = [
    Counter::FaultsInjected,
    Counter::RetriesScheduled,
    Counter::WorkersLost,
];

struct Reconcile {
    breadth: usize,
    overlap: bool,
}

impl WorkloadVisitor for Reconcile {
    type Output = ();
    fn visit<W: Workload>(self, w: &W) {
        let n = SCALE.inputs_for(w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let cfg = tuned_config(w, 28, SCALE)
            .with_breadth(self.breadth)
            .with_overlap(self.overlap);

        let sim_sink = TelemetrySink::new(cfg.chunks);
        let rt = SimulatedRuntime::paper_machine();
        let report = rt
            .run_observed(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                FIGURE_SEED,
                Some(&sim_sink),
            )
            .expect("simulated run");
        let sim = sim_sink.snapshot();
        assert!(sim.consistent, "{}: torn snapshot at rest", w.name());

        // Span accounting (recorded at lowering time) matches the trace
        // (recorded at execution time) category by category, exactly.
        let trace = &report.execution.trace;
        for cat in CATEGORIES {
            let spans = trace.spans().iter().filter(|s| s.category == cat).count() as u64;
            let cycles: u64 = trace
                .spans()
                .iter()
                .filter(|s| s.category == cat)
                .map(|s| s.duration().get())
                .sum();
            assert_eq!(
                sim.category_spans(cat),
                spans,
                "{}: {} span count",
                w.name(),
                cat.name()
            );
            assert_eq!(
                sim.category_cycles(cat),
                cycles,
                "{}: {} cycles",
                w.name(),
                cat.name()
            );
        }

        // Busy + idle partition the threads' lifetimes with nothing lost.
        let lifetime = trace.makespan().get() * trace.thread_count() as u64;
        assert_eq!(
            sim.get(Counter::BusyTime) + sim.get(Counter::IdleTime),
            lifetime,
            "{}: busy/idle must partition makespan x threads",
            w.name()
        );

        // Protocol counters agree with the run's semantic outcome.
        let aborted = report
            .decisions
            .iter()
            .filter(|d| **d == ChunkDecision::Aborted)
            .count() as u64;
        let committed = report
            .decisions
            .iter()
            .filter(|d| **d == ChunkDecision::Committed)
            .count() as u64;
        assert_eq!(
            sim.get(Counter::ChunksStarted),
            report.decisions.len() as u64,
            "{}",
            w.name()
        );
        assert_eq!(sim.get(Counter::ChunksCommitted), committed, "{}", w.name());
        assert_eq!(sim.get(Counter::ChunksAborted), aborted, "{}", w.name());
        assert_eq!(sim.get(Counter::Reruns), aborted, "{}", w.name());

        // Breadth accounting: every speculative chunk launches exactly
        // `spec_breadth` candidates; hits are a subset of the commits;
        // overlapped recovery splits each rerun into at most two
        // segments (exactly one when overlap is off).
        let speculative = report.decisions.len().saturating_sub(1) as u64;
        assert_eq!(
            sim.get(Counter::SpecCandidates),
            speculative * self.breadth as u64,
            "{}",
            w.name()
        );
        assert!(sim.get(Counter::CandidateHits) <= committed, "{}", w.name());
        let segments = sim.get(Counter::RerunSegments);
        if self.overlap {
            assert!(
                segments >= aborted && segments <= 2 * aborted,
                "{}",
                w.name()
            );
        } else {
            assert_eq!(segments, aborted, "{}", w.name());
        }

        // The threaded runtime records the same protocol counters live,
        // at the worker/coordinator call sites, and lands on identical
        // totals — schedule-independence extends to the telemetry.
        let thr_sink = TelemetrySink::new(cfg.chunks);
        let threaded = run_threaded_observed(w, &inputs, cfg, FIGURE_SEED, Some(&thr_sink));
        assert_eq!(
            threaded.decisions,
            report.decisions,
            "{}: runtimes diverged",
            w.name()
        );
        let thr = thr_sink.snapshot();
        for counter in PROTOCOL {
            assert_eq!(
                thr.get(counter),
                sim.get(counter),
                "{}: {} differs between threaded and simulated telemetry",
                w.name(),
                counter.name()
            );
        }
        // No fault plan, no fault telemetry — on either runtime.
        for counter in FAULTS {
            assert_eq!(
                thr.get(counter),
                0,
                "{}: stray {}",
                w.name(),
                counter.name()
            );
            assert_eq!(
                sim.get(counter),
                0,
                "{}: stray {}",
                w.name(),
                counter.name()
            );
        }
    }
}

/// Under a seeded fault plan, the threaded runtime records fault
/// counters live (at the recovery guards) while the simulated runtime
/// derives them post hoc from (config, chunk plan, decisions) — and
/// they must land on identical totals, alongside the untouched protocol
/// counters.
struct ReconcileFaulted {
    plan_seed: u64,
    injections: usize,
}

impl WorkloadVisitor for ReconcileFaulted {
    type Output = ();
    fn visit<W: Workload>(self, w: &W) {
        let n = SCALE.inputs_for(w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let cfg = tuned_config(w, 28, SCALE);
        let plan = FaultPlan::seeded(self.plan_seed, self.injections, &cfg, inputs.len());
        assert!(plan.is_recoverable());

        let pool = WorkerPool::new(2);
        let thr_sink = TelemetrySink::new(cfg.chunks);
        let threaded =
            run_threaded_faulted_on(&pool, w, &inputs, cfg, FIGURE_SEED, &plan, Some(&thr_sink));

        let sim_sink = TelemetrySink::new(cfg.chunks);
        let rt = SimulatedRuntime::paper_machine();
        let report = rt
            .run_observed_faulted(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                FIGURE_SEED,
                &plan,
                Some(&sim_sink),
            )
            .expect("simulated run");
        assert_eq!(
            threaded.decisions,
            report.decisions,
            "{}: runtimes diverged under faults",
            w.name()
        );

        let thr = thr_sink.snapshot();
        let sim = sim_sink.snapshot();
        for counter in PROTOCOL.iter().chain(&FAULTS) {
            assert_eq!(
                thr.get(*counter),
                sim.get(*counter),
                "{}: {} differs between threaded and simulated telemetry under faults",
                w.name(),
                counter.name()
            );
        }
        assert!(
            thr.get(Counter::FaultsInjected) > 0,
            "{}: the seeded plan injected nothing — the reconciliation is vacuous",
            w.name()
        );
    }
}

#[test]
fn telemetry_reconciles_with_traces_on_every_benchmark() {
    for name in BENCHMARK_NAMES {
        dispatch(
            name,
            Reconcile {
                breadth: 1,
                overlap: false,
            },
        );
    }
}

#[test]
fn fault_counters_reconcile_exactly_between_runtimes() {
    for (i, name) in BENCHMARK_NAMES.iter().enumerate() {
        dispatch(
            name,
            ReconcileFaulted {
                plan_seed: FIGURE_SEED + i as u64,
                injections: 5,
            },
        );
    }
}

#[test]
fn telemetry_reconciles_with_breadth_and_overlapped_recovery() {
    // The same three-way reconciliation must survive the widest knob
    // settings: three candidates per chunk plus segmented reruns.
    for name in BENCHMARK_NAMES {
        dispatch(
            name,
            Reconcile {
                breadth: 3,
                overlap: true,
            },
        );
    }
}
