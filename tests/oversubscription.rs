//! Oversubscription parity: many more chunks than pool workers.
//!
//! The pooled executor's pipelining (replica replay overlapping the next
//! chunk, urgent-lane reruns, state recycling) must never leak into
//! results. These tests drive 64 chunks through a 4-worker pool — 16
//! chunks per worker — and require bit-for-bit agreement with the
//! semantic layer on every commit/abort decision AND every output, for
//! all six paper benchmarks. The thread-per-chunk baseline is held to the
//! same bar, and a shared pool must carry no state between runs.

use stats_workbench::core::runtime::pool::WorkerPool;
use stats_workbench::core::runtime::threaded::{run_threaded_on, run_threaded_per_chunk};
use stats_workbench::core::{run_speculative, ChunkDecision, Config};
use stats_workbench::workloads::Workload;
use stats_workbench::workloads::{
    bodytrack::BodyTrack, facedet_and_track::FaceDetAndTrack, facetrack::FaceTrack,
    streamclassifier::StreamClassifier, streamcluster::StreamCluster, swaptions::Swaptions,
};

const INPUTS: usize = 256;
const SEED: u64 = 0x0517_2026;

/// 64 chunks of 4 inputs on a 4-worker pool: 16 queued tasks per worker,
/// plus the replica and rerun tasks racing through the urgent lane.
fn oversubscribed_config() -> Config {
    Config::stats_only(64, 4, 2)
}

/// Run one workload through the semantic layer, the pooled executor, and
/// the thread-per-chunk baseline; all three must agree exactly.
fn assert_parity<W>(pool: &WorkerPool, w: &W, seed: u64)
where
    W: Workload + Sync,
    W::Output: PartialEq + std::fmt::Debug,
{
    let inputs = w.generate_inputs(INPUTS, seed);
    let cfg = oversubscribed_config();
    cfg.validate(inputs.len()).expect("valid config");
    assert!(
        cfg.chunks >= 4 * pool.workers(),
        "test must oversubscribe: {} chunks on {} workers",
        cfg.chunks,
        pool.workers()
    );

    let semantic = run_speculative(w, &inputs, cfg, seed);
    let reference: Vec<ChunkDecision> = semantic.chunks.iter().map(|c| c.decision).collect();

    let pooled = run_threaded_on(pool, w, &inputs, cfg, seed, None);
    assert_eq!(
        pooled.decisions,
        reference,
        "{}: pooled decisions",
        w.name()
    );
    assert_eq!(
        pooled.outputs,
        semantic.outputs,
        "{}: pooled outputs",
        w.name()
    );
    assert_eq!(pooled.workers, pool.workers());

    let per_chunk = run_threaded_per_chunk(w, &inputs, cfg, seed);
    assert_eq!(
        per_chunk.decisions,
        reference,
        "{}: per-chunk decisions",
        w.name()
    );
    assert_eq!(
        per_chunk.outputs,
        semantic.outputs,
        "{}: per-chunk outputs",
        w.name()
    );
}

#[test]
fn oversubscribed_pool_matches_semantics_on_every_benchmark() {
    // One pool for all six benchmarks: reuse across workloads is part of
    // what's under test.
    let pool = WorkerPool::new(4);
    assert_parity(&pool, &Swaptions::paper(), SEED);
    assert_parity(&pool, &StreamCluster::paper(), SEED);
    assert_parity(&pool, &StreamClassifier::paper(), SEED);
    assert_parity(&pool, &BodyTrack::paper(), SEED);
    assert_parity(&pool, &FaceTrack::paper(), SEED);
    assert_parity(&pool, &FaceDetAndTrack::paper(), SEED);
}

#[test]
fn pool_reuse_carries_no_state_between_seeds() {
    // Interleave seeds on one pool; each run must equal a fresh-pool run
    // of the same seed, including after an intervening different seed.
    let shared = WorkerPool::new(4);
    let w = StreamClassifier::paper();
    let cfg = oversubscribed_config();
    for &seed in &[SEED, 42, SEED, 7, 42] {
        let inputs = w.generate_inputs(INPUTS, seed);
        let on_shared = run_threaded_on(&shared, &w, &inputs, cfg, seed, None);
        let fresh = WorkerPool::new(4);
        let on_fresh = run_threaded_on(&fresh, &w, &inputs, cfg, seed, None);
        assert_eq!(on_shared.decisions, on_fresh.decisions, "seed {seed}");
        assert_eq!(on_shared.outputs, on_fresh.outputs, "seed {seed}");
    }
}

#[test]
fn single_worker_pool_still_drains_oversubscribed_plans() {
    // The degenerate 1-worker pool serializes everything; decisions and
    // outputs still match the semantic layer (no deadlock, no divergence).
    let pool = WorkerPool::new(1);
    assert_parity(&pool, &Swaptions::paper(), 42);
    assert_parity(&pool, &FaceDetAndTrack::paper(), 42);
}

#[test]
fn state_pool_high_water_stays_within_capacity() {
    use stats_workbench::core::runtime::pool::StatePool;
    // Both threaded paths recycle dead snapshots through a StatePool
    // capped at m + 2; the watermark proves recycling actually happens
    // without the free-list growing past its bound.
    let pool: StatePool<Vec<u64>> = StatePool::with_capacity(3);
    assert_eq!(pool.len(), 0);
    assert!(pool.is_empty());
    assert_eq!(pool.high_water(), 0);
    for i in 0..8u64 {
        pool.recycle(vec![i; 16]);
        assert!(pool.len() <= 3, "free-list exceeded its cap");
    }
    assert_eq!(pool.len(), 3, "cap bounds retained spares");
    assert_eq!(pool.high_water(), 3, "watermark saturates at the cap");
    // Draining spares lowers len but never the watermark.
    let copy = pool.copy_of(&vec![9; 16]);
    assert_eq!(copy, vec![9; 16]);
    assert_eq!(pool.len(), 2);
    assert!(!pool.is_empty());
    assert_eq!(pool.high_water(), 3);
}

#[test]
fn worker_killed_mid_run_degrades_pool_without_touching_results() {
    use stats_workbench::core::fault::{FaultKind, FaultSite, Injection};
    use stats_workbench::core::runtime::threaded::run_threaded_faulted_on;
    use stats_workbench::core::FaultPlan;

    // 64 chunks on 4 workers with one worker killed mid-run (a
    // worker-death injection on chunk 7's primary candidate): the pool
    // degrades to 3 live workers, drains all 64 chunks anyway, and the
    // results stay bit-identical to the semantic layer. The pool must
    // remain usable afterwards.
    let w = BodyTrack::paper();
    let inputs = w.generate_inputs(INPUTS, SEED);
    let cfg = oversubscribed_config();
    let plan = FaultPlan::new(
        vec![Injection {
            site: FaultSite::Chunk {
                chunk: 7,
                candidate: 0,
            },
            kind: FaultKind::WorkerDeath,
            fail_attempts: 1,
        }],
        3,
    )
    .expect("valid plan");

    let semantic = run_speculative(&w, &inputs, cfg, SEED);
    let reference: Vec<ChunkDecision> = semantic.chunks.iter().map(|c| c.decision).collect();

    let pool = WorkerPool::new(4);
    let faulted = run_threaded_faulted_on(&pool, &w, &inputs, cfg, SEED, &plan, None);
    assert_eq!(faulted.decisions, reference, "decisions under worker loss");
    assert_eq!(
        faulted.outputs, semantic.outputs,
        "outputs under worker loss"
    );

    // The doomed worker exits after its fatal job; poll briefly for the
    // teardown to land, then confirm graceful degradation (not revival:
    // the pool only revives its *last* worker).
    let mut live = pool.live_workers();
    for _ in 0..2000 {
        if live == 3 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
        live = pool.live_workers();
    }
    assert_eq!(live, 3, "pool should have lost exactly one worker");

    // The degraded pool still serves later fault-free runs correctly.
    assert_parity(&pool, &w, SEED);
}

#[test]
fn seeded_chaos_survives_oversubscription() {
    use stats_workbench::core::runtime::threaded::run_threaded_faulted_on;
    use stats_workbench::core::FaultPlan;

    // A seeded multi-kind plan under 16x oversubscription: recovery
    // retries ride the urgent lane through a saturated queue and must
    // still be observationally invisible.
    let w = StreamClassifier::paper();
    let inputs = w.generate_inputs(INPUTS, SEED);
    let cfg = oversubscribed_config();
    let plan = FaultPlan::seeded(SEED, 6, &cfg, inputs.len());
    assert!(plan.is_recoverable());

    let semantic = run_speculative(&w, &inputs, cfg, SEED);
    let reference: Vec<ChunkDecision> = semantic.chunks.iter().map(|c| c.decision).collect();

    let pool = WorkerPool::new(4);
    let faulted = run_threaded_faulted_on(&pool, &w, &inputs, cfg, SEED, &plan, None);
    assert_eq!(faulted.decisions, reference, "decisions under seeded chaos");
    assert_eq!(
        faulted.outputs, semantic.outputs,
        "outputs under seeded chaos"
    );
}

#[test]
fn cow_snapshots_are_bit_identical_to_deep_on_every_benchmark() {
    // The tentpole's non-negotiable contract: switching the snapshot
    // strategy must not change one decision or one output bit, on any
    // benchmark, at any width. Decisions and outputs come from the
    // semantic layer (strategy-invariant by construction) and the pooled
    // executor at widths 1, 2, 4, and 8.
    fn assert_cow_parity<W>(w: &W)
    where
        W: Workload + Sync,
        W::Output: PartialEq + std::fmt::Debug,
    {
        use stats_workbench::core::SnapshotStrategy;
        let inputs = w.generate_inputs(INPUTS, SEED);
        let mut deep_cfg = Config::stats_only(16, 4, 2);
        deep_cfg.snapshot = SnapshotStrategy::DeepClone;
        let mut cow_cfg = deep_cfg;
        cow_cfg.snapshot = SnapshotStrategy::CopyOnWrite;

        let deep = run_speculative(w, &inputs, deep_cfg, SEED);
        let cow = run_speculative(w, &inputs, cow_cfg, SEED);
        let deep_decisions: Vec<ChunkDecision> = deep.chunks.iter().map(|c| c.decision).collect();
        let cow_decisions: Vec<ChunkDecision> = cow.chunks.iter().map(|c| c.decision).collect();
        assert_eq!(
            deep_decisions,
            cow_decisions,
            "{}: semantic decisions",
            w.name()
        );
        assert_eq!(deep.outputs, cow.outputs, "{}: semantic outputs", w.name());

        for width in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(width);
            let threaded = run_threaded_on(&pool, w, &inputs, cow_cfg, SEED, None);
            assert_eq!(
                threaded.decisions,
                deep_decisions,
                "{}: cow decisions at width {width}",
                w.name()
            );
            assert_eq!(
                threaded.outputs,
                deep.outputs,
                "{}: cow outputs at width {width}",
                w.name()
            );
        }
    }
    assert_cow_parity(&Swaptions::paper());
    assert_cow_parity(&StreamCluster::paper());
    assert_cow_parity(&StreamClassifier::paper());
    assert_cow_parity(&BodyTrack::paper());
    assert_cow_parity(&FaceTrack::paper());
    assert_cow_parity(&FaceDetAndTrack::paper());
}
