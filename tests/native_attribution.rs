//! Keystone: the native causal profiler must tell the same story as the
//! simulator's virtual-time attribution, without changing the story.
//!
//! The two attributions measure the same protocol on different
//! substrates — the simulator on a deterministic cost-model machine, the
//! profiler on whatever host runs the tests — so their numbers are not
//! comparable, but their *shape* must be (the EXPERIMENTS.md
//! methodology). For every benchmark this suite asserts:
//!
//! * **ordering agreement** — the normalized loss shares of the
//!   structurally comparable categories (extra computation,
//!   mispeculation) never materially invert between native and
//!   simulated attribution; sync, sequential, unreachability and
//!   imbalance are excluded by construction (see `native_attribution`'s
//!   module docs: the simulator models lock traffic and outside-region
//!   work the native region-only executor never performs, the residuals
//!   are defined against different ideals, and native barrier waits on
//!   a time-shared host measure OS preemption, not work distribution);
//! * **what-if direction agreement** — removing an overhead or doubling
//!   workers never projects a slowdown on either side;
//! * **observation only** — with the profiler attached, the run's
//!   commit/abort decisions and outputs are bit-identical to an
//!   unprofiled run (nondeterminism comes from seeds, never from
//!   timestamps);
//! * **bounded overhead** — the median min-over-reps capture overhead
//!   across the suite stays under 10%. The median, not the per-benchmark
//!   maximum, is gated: on a time-shared host (CI runs on whatever it
//!   gets, including single-core containers) any individual benchmark's
//!   delta can be swamped by scheduler noise in either direction, while
//!   the median is a robust estimate of the capture cost itself.

use stats_workbench::bench::native_attribution::{
    compare_shapes, profile_workload, profiling_overhead_pct, simulated_reference,
};
use stats_workbench::bench::pipeline::{Scale, FIGURE_SEED};
use stats_workbench::core::runtime::pool::WorkerPool;
use stats_workbench::workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

const SCALE: Scale = Scale(0.08);
const WORKERS: usize = 2;
const SEEDS: usize = 2;
const OVERHEAD_REPS: usize = 3;
const OVERHEAD_LIMIT_PCT: f64 = 10.0;

struct PerBench {
    name: &'static str,
    parity: bool,
    dropped: u64,
    overhead_pct: f64,
    inversions: usize,
    whatif_directions_agree: bool,
    native_shares: Vec<(stats_workbench::telemetry::WallLoss, f64)>,
    simulated_shares: Vec<(stats_workbench::telemetry::WallLoss, f64)>,
}

struct Keystone;

impl WorkloadVisitor for Keystone {
    type Output = PerBench;
    fn visit<W: Workload>(self, w: &W) -> PerBench {
        let pool = WorkerPool::new(WORKERS);
        let seeds: Vec<u64> = (0..SEEDS as u64).map(|i| FIGURE_SEED + i).collect();
        let report = profile_workload(w, &pool, SCALE, &seeds);
        let (sim, sim_whatifs, sim_base) = simulated_reference(w, WORKERS, SCALE, FIGURE_SEED);
        let cmp = compare_shapes(&report, &sim, &sim_whatifs, sim_base);
        let overhead_pct = profiling_overhead_pct(w, &pool, SCALE, FIGURE_SEED, OVERHEAD_REPS);
        PerBench {
            name: w.name(),
            parity: report.parity,
            dropped: report.runs.iter().map(|r| r.dropped).sum(),
            overhead_pct,
            inversions: cmp.inversions.len(),
            whatif_directions_agree: cmp.whatif_directions_agree,
            native_shares: cmp.native,
            simulated_shares: cmp.simulated,
        }
    }
}

#[test]
fn native_attribution_agrees_with_the_simulator_on_every_benchmark() {
    let rows: Vec<PerBench> = BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, Keystone))
        .collect();

    for row in &rows {
        // Shape: loss ordering over the comparable categories.
        assert_eq!(
            row.inversions, 0,
            "{}: native and simulated loss orderings materially invert\n  native    {:?}\n  simulated {:?}",
            row.name, row.native_shares, row.simulated_shares,
        );
        // Shape: what-if projections point the same way.
        assert!(
            row.whatif_directions_agree,
            "{}: a what-if projected a slowdown",
            row.name
        );
        // Profiling is observation-only: decisions and outputs are
        // bit-identical with the profiler attached.
        assert!(
            row.parity,
            "{}: profiled run diverged from unprofiled run",
            row.name
        );
        // Ring buffers were sized for the workload: nothing was dropped,
        // so the attribution saw the complete span graph.
        assert_eq!(row.dropped, 0, "{}: profiler dropped spans", row.name);
    }

    // Bounded overhead, gated on the suite median (host-aware; see the
    // module docs for why the per-benchmark max is not gated).
    let mut overheads: Vec<f64> = rows.iter().map(|r| r.overhead_pct).collect();
    overheads.sort_by(f64::total_cmp);
    let median = overheads[overheads.len() / 2];
    assert!(
        median < OVERHEAD_LIMIT_PCT,
        "median span-capture overhead {median:.2}% exceeds {OVERHEAD_LIMIT_PCT}% \
         (per-benchmark: {:?})",
        rows.iter()
            .map(|r| (r.name, r.overhead_pct))
            .collect::<Vec<_>>(),
    );
}

#[test]
fn attribution_accounts_for_the_full_gap_to_ideal() {
    // No loss may be negative, and projected + losses must cover the
    // ideal: the unreachability residual closes any unexplained gap.
    // Coverage can exceed the ideal — marginals are each measured
    // against the baseline independently, so overlapping causes can
    // over-explain — but it must never fall short.
    struct Accounting;
    impl WorkloadVisitor for Accounting {
        type Output = ();
        fn visit<W: Workload>(self, w: &W) {
            let pool = WorkerPool::new(WORKERS);
            let report = profile_workload(w, &pool, SCALE, &[FIGURE_SEED]);
            let a = &report.runs[0];
            let total: f64 = a.losses.iter().map(|(_, v)| v).sum();
            for (loss, v) in &a.losses {
                assert!(*v >= 0.0, "{}: negative loss for {loss:?}", w.name());
            }
            assert!(
                a.projected + total >= a.ideal - 1e-6,
                "{}: projected {} + losses {} fall short of ideal {}",
                w.name(),
                a.projected,
                total,
                a.ideal
            );
        }
    }
    for name in BENCHMARK_NAMES {
        dispatch(name, Accounting);
    }
}
