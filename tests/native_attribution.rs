//! Keystone: the native causal profiler must tell the same story as the
//! simulator's virtual-time attribution, without changing the story.
//!
//! The two attributions measure the same protocol on different
//! substrates — the simulator on a deterministic cost-model machine, the
//! profiler on whatever host runs the tests — so their numbers are not
//! comparable, but their *shape* must be (the EXPERIMENTS.md
//! methodology). For every benchmark this suite asserts:
//!
//! * **ordering agreement** — the normalized loss shares of the
//!   structurally comparable categories (extra computation,
//!   mispeculation) never materially invert between native and
//!   simulated attribution; sync, sequential, unreachability and
//!   imbalance are excluded by construction (see `native_attribution`'s
//!   module docs: the simulator models lock traffic and outside-region
//!   work the native region-only executor never performs, the residuals
//!   are defined against different ideals, and native barrier waits on
//!   a time-shared host measure OS preemption, not work distribution);
//! * **what-if direction agreement** — removing an overhead or doubling
//!   workers never projects a slowdown on either side;
//! * **observation only** — with the profiler attached, the run's
//!   commit/abort decisions and outputs are bit-identical to an
//!   unprofiled run (nondeterminism comes from seeds, never from
//!   timestamps);
//! * **bounded overhead** — the median min-over-reps capture overhead
//!   across the suite stays under 10%. The median, not the per-benchmark
//!   maximum, is gated: on a time-shared host (CI runs on whatever it
//!   gets, including single-core containers) any individual benchmark's
//!   delta can be swamped by scheduler noise in either direction, while
//!   the median is a robust estimate of the capture cost itself.

use stats_workbench::bench::native_attribution::{
    compare_shapes, profile_workload, profile_workload_configured, profiling_overhead_pct,
    simulated_reference,
};
use stats_workbench::bench::pipeline::{tuned_config, Scale, FIGURE_SEED};
use stats_workbench::core::runtime::pool::WorkerPool;
use stats_workbench::core::SnapshotStrategy;
use stats_workbench::workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

const SCALE: Scale = Scale(0.08);
const WORKERS: usize = 2;
const SEEDS: usize = 2;
const OVERHEAD_REPS: usize = 3;
const OVERHEAD_LIMIT_PCT: f64 = 10.0;

struct PerBench {
    name: &'static str,
    parity: bool,
    dropped: u64,
    overhead_pct: f64,
    inversions: usize,
    whatif_directions_agree: bool,
    native_shares: Vec<(stats_workbench::telemetry::WallLoss, f64)>,
    simulated_shares: Vec<(stats_workbench::telemetry::WallLoss, f64)>,
}

struct Keystone;

impl WorkloadVisitor for Keystone {
    type Output = PerBench;
    fn visit<W: Workload>(self, w: &W) -> PerBench {
        let pool = WorkerPool::new(WORKERS);
        let seeds: Vec<u64> = (0..SEEDS as u64).map(|i| FIGURE_SEED + i).collect();
        let report = profile_workload(w, &pool, SCALE, &seeds);
        let (sim, sim_whatifs, sim_base) = simulated_reference(w, WORKERS, SCALE, FIGURE_SEED);
        let cmp = compare_shapes(&report, &sim, &sim_whatifs, sim_base);
        let overhead_pct = profiling_overhead_pct(w, &pool, SCALE, FIGURE_SEED, OVERHEAD_REPS);
        PerBench {
            name: w.name(),
            parity: report.parity,
            dropped: report.runs.iter().map(|r| r.dropped).sum(),
            overhead_pct,
            inversions: cmp.inversions.len(),
            whatif_directions_agree: cmp.whatif_directions_agree,
            native_shares: cmp.native,
            simulated_shares: cmp.simulated,
        }
    }
}

#[test]
fn native_attribution_agrees_with_the_simulator_on_every_benchmark() {
    let rows: Vec<PerBench> = BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, Keystone))
        .collect();

    for row in &rows {
        // Shape: loss ordering over the comparable categories.
        assert_eq!(
            row.inversions, 0,
            "{}: native and simulated loss orderings materially invert\n  native    {:?}\n  simulated {:?}",
            row.name, row.native_shares, row.simulated_shares,
        );
        // Shape: what-if projections point the same way.
        assert!(
            row.whatif_directions_agree,
            "{}: a what-if projected a slowdown",
            row.name
        );
        // Profiling is observation-only: decisions and outputs are
        // bit-identical with the profiler attached.
        assert!(
            row.parity,
            "{}: profiled run diverged from unprofiled run",
            row.name
        );
        // Ring buffers were sized for the workload: nothing was dropped,
        // so the attribution saw the complete span graph.
        assert_eq!(row.dropped, 0, "{}: profiler dropped spans", row.name);
    }

    // Bounded overhead, gated on the suite median (host-aware; see the
    // module docs for why the per-benchmark max is not gated).
    let mut overheads: Vec<f64> = rows.iter().map(|r| r.overhead_pct).collect();
    overheads.sort_by(f64::total_cmp);
    let median = overheads[overheads.len() / 2];
    assert!(
        median < OVERHEAD_LIMIT_PCT,
        "median span-capture overhead {median:.2}% exceeds {OVERHEAD_LIMIT_PCT}% \
         (per-benchmark: {:?})",
        rows.iter()
            .map(|r| (r.name, r.overhead_pct))
            .collect::<Vec<_>>(),
    );
}

#[test]
fn copies_free_whatif_brackets_the_achieved_cow_speedup() {
    // The tentpole's closed loop: `stats profile` under deep snapshots
    // projects a copies-free speedup; switching `--snapshot cow` is the
    // closest real implementation of that counterfactual on the
    // copy-heavy trackers (their generational particle clouds fault no
    // bytes). The achieved cow speedup must land in the bracket the deep
    // profile predicts — no worse than deep's measured speedup, no
    // better than the copies-free projection — with each edge slackened
    // by the edges' own CIs plus a documented 25% noise allowance
    // (wall-clock speedups on a time-shared CI host jitter; the bench
    // harness `native_copies` gates the same bracket at 10% on more
    // reps).
    const BRACKET_SLACK: f64 = 1.25;
    struct Bracket;
    impl WorkloadVisitor for Bracket {
        type Output = ();
        fn visit<W: Workload>(self, w: &W) {
            let pool = WorkerPool::new(WORKERS);
            let seeds: Vec<u64> = (0..SEEDS as u64).map(|i| FIGURE_SEED + i).collect();
            let deep_cfg = tuned_config(w, 28, SCALE);
            let mut cow_cfg = deep_cfg;
            cow_cfg.snapshot = SnapshotStrategy::CopyOnWrite;
            let deep = profile_workload_configured(w, &pool, SCALE, &seeds, deep_cfg);
            let cow = profile_workload_configured(w, &pool, SCALE, &seeds, cow_cfg);
            assert!(deep.parity && cow.parity, "{}: parity broken", w.name());

            // Both bracket edges compare wall-clock speedups of *different*
            // runs, so they need the host to actually run the workers in
            // parallel: on a time-shared host with fewer threads than the
            // pool, each edge measures OS preemption luck, not snapshot
            // cost, and even the 25% allowance flakes. Gate like the
            // breadth bracket's floor below; `native_copies --gate` in CI
            // enforces the same bracket at 10% on more reps.
            if stats_workbench::core::runtime::pool::default_workers() < WORKERS {
                return;
            }
            let ceiling =
                (deep.whatif_copies_free.mean + deep.whatif_copies_free.half_width) * BRACKET_SLACK;
            let floor = (deep.measured.mean - deep.measured.half_width) / BRACKET_SLACK;
            let achieved = cow.measured.mean;
            assert!(
                achieved - cow.measured.half_width <= ceiling,
                "{}: cow speedup {achieved:.3}x (ci {:.3}) exceeds the copies-free \
                 projection {:.3}x (ci {:.3}, slackened ceiling {ceiling:.3}x) — the \
                 what-if is supposed to be an upper bound on what removing copies buys",
                w.name(),
                cow.measured.half_width,
                deep.whatif_copies_free.mean,
                deep.whatif_copies_free.half_width,
            );
            assert!(
                achieved + cow.measured.half_width >= floor,
                "{}: cow speedup {achieved:.3}x (ci {:.3}) fell below deep's measured \
                 {:.3}x (ci {:.3}, slackened floor {floor:.3}x) — cheaper snapshots \
                 must not cost wall time",
                w.name(),
                cow.measured.half_width,
                deep.measured.mean,
                deep.measured.half_width,
            );
        }
    }
    for name in ["bodytrack", "facetrack", "facedet-and-track"] {
        dispatch(name, Bracket);
    }
}

#[test]
fn mispeculation_free_whatif_brackets_the_achieved_breadth_speedup() {
    // The breadth tentpole's closed loop, mirroring the cow bracket
    // above: `stats profile` at breadth 1 projects a mispeculation-free
    // speedup; racing a second alternative candidate per chunk
    // (`--breadth 2`) is the closest real implementation of that
    // counterfactual on the abort-heavy trackers (their rescued chunks
    // skip the serial rerun entirely). The achieved breadth-2 speedup
    // must stay under the mispeculation-free ceiling the breadth-1
    // profile predicts, and the native attribution must show the
    // mispeculation loss share strictly shrinking. The bracket's floor
    // (breadth must not cost wall time) additionally needs hardware to
    // absorb the candidate work — with fewer host threads than
    // chunks x breadth the extra computation is paid in wall time by
    // construction — so it is gated on host parallelism, like the bench
    // harness `native_breadth` gates its timing rows.
    const BRACKET_SLACK: f64 = 1.25;
    struct BreadthBracket;
    impl WorkloadVisitor for BreadthBracket {
        type Output = ();
        fn visit<W: Workload>(self, w: &W) {
            let narrow_cfg = tuned_config(w, 28, SCALE);
            let wide_cfg = narrow_cfg.with_breadth(2);
            // Wide enough that every candidate of every chunk has a
            // worker: breadth then rides on idle slots instead of
            // stealing them from chunk bodies.
            let width = narrow_cfg.chunks * 2;
            let pool = WorkerPool::new(width);
            let seeds: Vec<u64> = (0..SEEDS as u64).map(|i| FIGURE_SEED + i).collect();
            let narrow = profile_workload_configured(w, &pool, SCALE, &seeds, narrow_cfg);
            let wide = profile_workload_configured(w, &pool, SCALE, &seeds, wide_cfg);
            assert!(narrow.parity && wide.parity, "{}: parity broken", w.name());

            // The whole point: candidates rescue chunks, so the
            // mispeculation loss share strictly shrinks. Like the floor
            // below, the share assertions are gated on host parallelism:
            // with fewer host threads than the pool is wide, the captured
            // span timeline is an artifact of OS time-sharing and the
            // critical-path model can hide the single rerun entirely,
            // attributing exactly zero mispeculation loss to a run that
            // demonstrably aborted.
            let mispec = |r: &stats_workbench::bench::native_attribution::ProfileReport| {
                r.normalized_losses()
                    .iter()
                    .find(|(l, _)| *l == stats_workbench::telemetry::WallLoss::Mispeculation)
                    .map_or(0.0, |(_, s)| *s)
            };
            let (narrow_share, wide_share) = (mispec(&narrow), mispec(&wide));
            if stats_workbench::core::runtime::pool::default_workers() >= width {
                assert!(
                    narrow_share > 0.0,
                    "{}: expected an abort-heavy breadth-1 baseline, got zero \
                     mispeculation share",
                    w.name()
                );
                assert!(
                    wide_share < narrow_share,
                    "{}: mispeculation share did not shrink ({narrow_share:.4} -> \
                     {wide_share:.4})",
                    w.name()
                );
            }

            // Ceiling: rescuing every abort cannot beat the what-if that
            // removed mispeculation for free.
            let ceiling = (narrow.whatif_mispeculation_free.mean
                + narrow.whatif_mispeculation_free.half_width)
                * BRACKET_SLACK;
            assert!(
                wide.measured.mean - wide.measured.half_width <= ceiling,
                "{}: breadth-2 speedup {:.3}x (ci {:.3}) exceeds the \
                 mispeculation-free projection {:.3}x (ci {:.3}, slackened \
                 ceiling {ceiling:.3}x)",
                w.name(),
                wide.measured.mean,
                wide.measured.half_width,
                narrow.whatif_mispeculation_free.mean,
                narrow.whatif_mispeculation_free.half_width,
            );

            // Floor: gated on the host actually having the threads the
            // candidate fan-out needs.
            if stats_workbench::core::runtime::pool::default_workers() >= width {
                let floor = (narrow.measured.mean - narrow.measured.half_width) / BRACKET_SLACK;
                assert!(
                    wide.measured.mean + wide.measured.half_width >= floor,
                    "{}: breadth-2 speedup {:.3}x (ci {:.3}) fell below the \
                     breadth-1 measured floor {floor:.3}x — candidates must ride \
                     idle workers, not the critical path",
                    w.name(),
                    wide.measured.mean,
                    wide.measured.half_width,
                );
            }
        }
    }
    for name in ["bodytrack", "facetrack"] {
        dispatch(name, BreadthBracket);
    }
}

#[test]
fn attribution_accounts_for_the_full_gap_to_ideal() {
    // No loss may be negative, and projected + losses must cover the
    // ideal: the unreachability residual closes any unexplained gap.
    // Coverage can exceed the ideal — marginals are each measured
    // against the baseline independently, so overlapping causes can
    // over-explain — but it must never fall short.
    struct Accounting;
    impl WorkloadVisitor for Accounting {
        type Output = ();
        fn visit<W: Workload>(self, w: &W) {
            let pool = WorkerPool::new(WORKERS);
            let report = profile_workload(w, &pool, SCALE, &[FIGURE_SEED]);
            let a = &report.runs[0];
            let total: f64 = a.losses.iter().map(|(_, v)| v).sum();
            for (loss, v) in &a.losses {
                assert!(*v >= 0.0, "{}: negative loss for {loss:?}", w.name());
            }
            assert!(
                a.projected + total >= a.ideal - 1e-6,
                "{}: projected {} + losses {} fall short of ideal {}",
                w.name(),
                a.projected,
                total,
                a.ideal
            );
        }
    }
    for name in BENCHMARK_NAMES {
        dispatch(name, Accounting);
    }
}
