//! Integration of the autotuner with the simulated runtime: the Fig. 3
//! loop must find configurations that beat naive ones.

use stats_workbench::autotuner::{Strategy, Tuner};
use stats_workbench::bench::pipeline::Scale;
use stats_workbench::core::runtime::simulated::SimulatedRuntime;
use stats_workbench::core::{Config, DesignSpace};
use stats_workbench::workloads::swaptions::Swaptions;
use stats_workbench::workloads::Workload;

fn makespan_objective<'a>(
    rt: &'a SimulatedRuntime,
    w: &'a Swaptions,
    inputs: &'a [<Swaptions as stats_workbench::core::StateDependence>::Input],
) -> impl FnMut(Config) -> f64 + 'a {
    move |cfg| {
        rt.run("tune", w, inputs, cfg, w.inner_parallelism(), 1)
            .expect("valid config")
            .execution
            .makespan
            .get() as f64
    }
}

#[test]
fn autotuner_beats_the_sequential_configuration() {
    let w = Swaptions::paper();
    let n = Scale(0.15).inputs_for(&w);
    let inputs = w.generate_inputs(n, 11);
    let rt = SimulatedRuntime::paper_machine();
    let space = DesignSpace::for_inputs(n, 28, true);
    let tuner = Tuner::new(space, 50, 13);

    let report = tuner.tune(Strategy::Ensemble, makespan_objective(&rt, &w, &inputs));

    let sequential_cost = makespan_objective(&rt, &w, &inputs)(Config::sequential());
    assert!(
        report.best_cost < sequential_cost / 4.0,
        "tuned {} should be far below sequential {}",
        report.best_cost,
        sequential_cost
    );
    // The winning configuration extracts real STATS TLP.
    assert!(report.best.chunks >= 8, "chose {:?}", report.best);
}

#[test]
fn all_strategies_find_speedup() {
    let w = Swaptions::paper();
    let n = Scale(0.1).inputs_for(&w);
    let inputs = w.generate_inputs(n, 3);
    let rt = SimulatedRuntime::paper_machine();
    let seq_cost = makespan_objective(&rt, &w, &inputs)(Config::sequential());

    for strategy in [
        Strategy::Random,
        Strategy::HillClimb,
        Strategy::Evolutionary,
        Strategy::Annealing,
        Strategy::Ensemble,
    ] {
        let space = DesignSpace::for_inputs(n, 28, true);
        let report = Tuner::new(space, 30, 5).tune(strategy, makespan_objective(&rt, &w, &inputs));
        assert!(
            report.best_cost < seq_cost,
            "{strategy:?} failed to beat sequential"
        );
        assert!(report.configurations_explored() <= 30);
    }
}

#[test]
fn pool_sharded_tuning_matches_sequential_on_the_real_objective() {
    // The worker-independence contract holds on the real simulated-
    // makespan objective, not just analytic stand-ins: sharding the
    // batches over pools of any width reproduces the sequential
    // trajectory bit for bit.
    use stats_workbench::core::runtime::pool::WorkerPool;
    let w = Swaptions::paper();
    let n = Scale(0.1).inputs_for(&w);
    let inputs = w.generate_inputs(n, 5);
    let rt = SimulatedRuntime::paper_machine();
    let objective = |cfg: Config| {
        rt.run("tune", &w, &inputs, cfg, w.inner_parallelism(), 1)
            .expect("valid config")
            .execution
            .makespan
            .get() as f64
    };
    let sequential = Tuner::new(DesignSpace::for_inputs(n, 28, true), 40, 19)
        .tune(Strategy::Ensemble, objective);
    for width in [1, 2, 8] {
        let pool = WorkerPool::new(width);
        let parallel = Tuner::new(DesignSpace::for_inputs(n, 28, true), 40, 19).tune_parallel_on(
            &pool,
            Strategy::Ensemble,
            objective,
            None,
        );
        assert_eq!(
            sequential.evaluations, parallel.evaluations,
            "trajectory diverged at pool width {width}"
        );
        assert_eq!(sequential.best, parallel.best);
        assert_eq!(sequential.best_cost.to_bits(), parallel.best_cost.to_bits());
    }
}

#[test]
fn paper_scale_exploration_counts() {
    // §IV-B: "the number of configurations analyzed varied from 89 to
    // 342". Our default budget regime lands in that range when the space
    // allows it.
    let w = Swaptions::paper();
    let n = Scale(0.12).inputs_for(&w);
    let space = DesignSpace::for_inputs(n, 28, true);
    assert!(space.size() >= 89, "space too small: {}", space.size());
    let inputs = w.generate_inputs(n, 9);
    let rt = SimulatedRuntime::paper_machine();
    let report =
        Tuner::new(space, 120, 21).tune(Strategy::Ensemble, makespan_objective(&rt, &w, &inputs));
    assert!(report.configurations_explored() >= 89);
}

#[test]
fn energy_objective_prefers_efficient_configurations() {
    use stats_workbench::platform::{EnergyModel, Topology};
    let w = Swaptions::paper();
    let n = Scale(0.1).inputs_for(&w);
    let inputs = w.generate_inputs(n, 21);
    let rt = SimulatedRuntime::paper_machine();
    let model = EnergyModel::paper_machine();
    let topo = Topology::paper_machine();

    let energy_of = |cfg: Config| {
        let report = rt
            .run("energy", &w, &inputs, cfg, w.inner_parallelism(), 21)
            .expect("valid config");
        model.energy_joules(&report.execution.trace, &topo)
    };

    // A parallel configuration finishes much sooner, so idle+uncore energy
    // drops: STATS should be more energy-efficient than sequential here.
    let seq = energy_of(Config::sequential());
    let stats = energy_of(Config::stats_only(14, 4, 1));
    assert!(
        stats < seq,
        "parallel run should save energy: {stats:.3} J vs {seq:.3} J"
    );

    // The tuner can optimize for energy directly.
    let space = DesignSpace::for_inputs(n, 28, true);
    let report = Tuner::new(space, 30, 33).tune(Strategy::Ensemble, energy_of);
    assert!(
        report.best_cost <= stats * 1.05,
        "tuned energy {:.3}",
        report.best_cost
    );
}

#[test]
fn autotuner_reproduces_the_abort_avoiding_chunk_choice() {
    // §V-B: facetrack's autotuner "only creates 7 parallel chunks to
    // avoid aborting the computation". Our tuner, given the same
    // makespan objective, must likewise refuse to max out the chunk
    // count on this abort-prone benchmark.
    use stats_workbench::workloads::facetrack::FaceTrack;
    let w = FaceTrack::paper();
    let n = Scale(0.5).inputs_for(&w);
    let inputs = w.generate_inputs(n, 0x7AC);
    let rt = SimulatedRuntime::paper_machine();
    let space = DesignSpace::for_inputs(n, 28, true);
    let report = Tuner::new(space, 40, 17).tune(Strategy::Ensemble, |cfg| {
        rt.run(
            "tune-facetrack",
            &w,
            &inputs,
            cfg,
            w.inner_parallelism(),
            0x7AC,
        )
        .expect("valid config")
        .execution
        .makespan
        .get() as f64
    });
    // The winning configuration speculates, but conservatively: fewer
    // chunks than cores (deep chunking mispeculates and loses).
    assert!(
        report.best.chunks > 1 && report.best.chunks < 28,
        "tuner chose {} chunks",
        report.best.chunks
    );
    // And it beats the original-TLP-only configuration.
    let original = rt
        .run(
            "orig",
            &w,
            &inputs,
            Config::original_only(),
            w.inner_parallelism(),
            0x7AC,
        )
        .unwrap()
        .execution
        .makespan
        .get() as f64;
    assert!(
        report.best_cost < original,
        "tuned {} vs original {original}",
        report.best_cost
    );
}
