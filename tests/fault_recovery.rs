//! Differential chaos tests: seeded fault plans must be observationally
//! invisible across benchmarks, pool widths, and injection kinds.
//!
//! Reduced-scale reuse of `stats_bench::chaos` (the `chaos` binary runs
//! the same sweep at full scale and gates CI).

use stats_bench::chaos::{ChaosGate, ChaosRow, ChaosSweep, WIDTHS};
use stats_bench::pipeline::Scale;
use stats_workloads::{dispatch, BENCHMARK_NAMES};

fn sweep(plans: usize, injections: usize) -> Vec<ChaosRow> {
    let sweep = ChaosSweep {
        scale: Scale(0.02),
        plans,
        injections,
    };
    BENCHMARK_NAMES
        .iter()
        .map(|name| dispatch(name, &sweep))
        .collect()
}

/// Every benchmark × width × plan cell: decisions, quality bits, and
/// protocol counters identical to the fault-free run; fault counters
/// reconciled exactly with the simulated runtime; accounting exact.
#[test]
fn seeded_plans_recover_invisibly_across_benchmarks_and_widths() {
    let rows = sweep(2, 4);
    for row in &rows {
        assert_eq!(row.cells.len(), WIDTHS.len() * 2, "{}", row.name);
        for c in &row.cells {
            assert!(
                c.decisions_match,
                "{} w{}: decisions diverged",
                row.name, c.width
            );
            assert!(
                c.quality_match,
                "{} w{}: outputs diverged",
                row.name, c.width
            );
            assert!(
                c.protocol_match,
                "{} w{}: recovery perturbed protocol counters",
                row.name, c.width
            );
            assert!(
                c.sim_reconciled,
                "{} w{}: threaded and simulated fault counters disagree",
                row.name, c.width
            );
            assert!(
                c.totals_exact,
                "{} w{}: observed fault counters differ from the plan's derivation",
                row.name, c.width
            );
            assert!(
                c.retries_bounded,
                "{} w{}: retry bound exceeded",
                row.name, c.width
            );
        }
    }
    let gate = ChaosGate::evaluate(&rows);
    assert!(gate.all_ok);
}

/// The sweep exercises every injection kind at least once — a kind that
/// never executes is a kind the suite never tested.
#[test]
fn sweep_covers_every_injection_kind() {
    let rows = sweep(3, 6);
    let gate = ChaosGate::evaluate(&rows);
    assert!(
        gate.full_coverage,
        "kinds covered: {:?}",
        gate.kinds_covered
    );
}
