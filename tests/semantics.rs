//! Property-based tests of the STATS execution model's semantic
//! guarantees, spanning `stats-core` and `stats-platform`.

use proptest::prelude::*;
use stats_workbench::core::rng::StatsRng;
use stats_workbench::core::runtime::sequential::run_sequential;
use stats_workbench::core::runtime::simulated::{build_task_graph, GraphOptions};
use stats_workbench::core::runtime::threaded::run_threaded;
use stats_workbench::core::speculation::run_speculative;
use stats_workbench::core::{plan_balanced, Config, StateDependence, UpdateCost};
use stats_workbench::platform::Machine;

/// A parameterized test workload: exponential smoothing whose memory
/// length and acceptance tolerance come from the property inputs.
#[derive(Debug, Clone)]
struct Ema {
    decay: f64,
    tolerance: f64,
}

impl StateDependence for Ema {
    type State = f64;
    type Input = f64;
    type Output = f64;
    fn fresh_state(&self) -> f64 {
        0.0
    }
    fn update(&self, s: &mut f64, i: &f64, rng: &mut StatsRng) -> (f64, UpdateCost) {
        *s = self.decay * *s + (1.0 - self.decay) * (*i + rng.noise(0.005));
        (*s, UpdateCost::with_work(1_000 + (i.abs() * 500.0) as u64))
    }
    fn states_match(&self, a: &f64, b: &f64) -> bool {
        (a - b).abs() < self.tolerance
    }
    fn state_bytes(&self) -> usize {
        8
    }
}

fn ema_strategy() -> impl Strategy<Value = Ema> {
    (0.3f64..0.95, 0.005f64..0.2).prop_map(|(decay, tolerance)| Ema { decay, tolerance })
}

fn config_strategy(inputs: usize) -> impl Strategy<Value = Config> {
    (2usize..12, 1usize..8, 0usize..4).prop_filter_map(
        "valid config",
        move |(chunks, lookback, extras)| {
            let cfg = Config::stats_only(chunks, lookback, extras);
            cfg.validate(inputs).ok().map(|()| cfg)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// STATS outputs cover every input exactly once, in order, for every
    /// valid configuration — commit or abort.
    #[test]
    fn outputs_cover_all_inputs(w in ema_strategy(), cfg in config_strategy(96), seed in 0u64..1_000) {
        let inputs: Vec<f64> = (0..96).map(|i| (i as f64 * 0.07).sin()).collect();
        let out = run_speculative(&w, &inputs, cfg, seed);
        prop_assert_eq!(out.outputs.len(), 96);
        prop_assert_eq!(out.chunks.len(), cfg.chunks);
    }

    /// The threaded runtime always agrees with the semantic layer: same
    /// decisions, same outputs, regardless of host scheduling.
    #[test]
    fn threaded_agrees_with_semantics(w in ema_strategy(), cfg in config_strategy(64), seed in 0u64..500) {
        let inputs: Vec<f64> = (0..64).map(|i| (i as f64 * 0.1).cos()).collect();
        let semantic = run_speculative(&w, &inputs, cfg, seed);
        let threaded = run_threaded(&w, &inputs, cfg, seed);
        prop_assert_eq!(&threaded.outputs, &semantic.outputs);
        let decisions: Vec<_> = semantic.chunks.iter().map(|c| c.decision).collect();
        prop_assert_eq!(threaded.decisions, decisions);
    }

    /// Aborted chunks re-execute from the true state: their realized
    /// outputs equal what a sequential continuation would produce, so the
    /// dependence chain is never broken silently.
    #[test]
    fn aborts_restore_the_true_chain(seed in 0u64..300) {
        // Memory too long for the lookback: speculation must abort.
        let w = Ema { decay: 0.999, tolerance: 1e-9 };
        let inputs: Vec<f64> = (0..64).map(|_| 1.0).collect();
        let cfg = Config::stats_only(2, 2, 0);
        let out = run_speculative(&w, &inputs, cfg, seed);
        prop_assert_eq!(out.aborts(), 1);
        // The rerun continues from chunk 0's final state; outputs keep
        // monotonically approaching 1.0 across the boundary.
        for pair in out.outputs.windows(2) {
            prop_assert!(pair[1] >= pair[0] - 0.01, "chain broke: {} -> {}", pair[0], pair[1]);
        }
    }

    /// The schedule is conservative: makespan is bounded below by both the
    /// critical chain and total-work/cores, and the what-if graphs can
    /// only improve it.
    #[test]
    fn whatif_never_slows_down(w in ema_strategy(), cfg in config_strategy(96), seed in 0u64..200) {
        let inputs: Vec<f64> = (0..96).map(|i| (i as f64 * 0.05).sin()).collect();
        let outcome = run_speculative(&w, &inputs, cfg, seed);
        let machine = Machine::paper_machine();
        let opts = GraphOptions::default();
        let g = build_task_graph("prop", &outcome, &machine, &opts);
        let base = machine.execute(&g).unwrap();
        let total_work = g.total_work().get();
        let cores = machine.topology().total_cores() as u64;
        prop_assert!(base.makespan.get() * cores >= total_work);
        for cat in [
            stats_workbench::trace::Category::Sync,
            stats_workbench::trace::Category::AltProducer,
            stats_workbench::trace::Category::StateCopy,
            stats_workbench::trace::Category::Setup,
        ] {
            let faster = machine.execute(&g.without_category(cat)).unwrap();
            prop_assert!(
                faster.makespan <= base.makespan,
                "removing {cat} slowed the schedule"
            );
        }
    }

    /// Balanced plans are exact covers with near-equal sizes for any
    /// shape.
    #[test]
    fn plans_partition_exactly(inputs in 1usize..5_000, chunks in 1usize..64) {
        prop_assume!(chunks <= inputs);
        let plan = plan_balanced(inputs, chunks);
        prop_assert_eq!(plan.inputs(), inputs);
        prop_assert_eq!(plan.len(), chunks);
        let mut covered = 0;
        for r in plan.ranges() {
            prop_assert_eq!(r.start, covered);
            covered = r.end;
        }
        prop_assert_eq!(covered, inputs);
    }

    /// Sequential runs are deterministic per seed and differ across seeds
    /// (the programs really are nondeterministic).
    #[test]
    fn nondeterminism_is_seeded(w in ema_strategy(), seed in 0u64..500) {
        let inputs: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let a = run_sequential(&w, &inputs, seed);
        let b = run_sequential(&w, &inputs, seed);
        prop_assert_eq!(a.outputs.clone(), b.outputs);
        let c = run_sequential(&w, &inputs, seed + 1);
        prop_assert_ne!(a.outputs, c.outputs);
    }
}
