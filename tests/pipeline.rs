//! End-to-end integration: every benchmark through the full pipeline —
//! input synthesis → speculation → task graph → machine → trace →
//! attribution — at reduced scale.

use stats_workbench::bench::attribution::{attribute, LossCategory};
use stats_workbench::bench::pipeline::{tuned_config, Machines, Scale, FIGURE_SEED};
use stats_workbench::core::runtime::sequential::run_sequential;
use stats_workbench::core::runtime::simulated::SimulatedRuntime;
use stats_workbench::trace::TraceSummary;
use stats_workbench::workloads::{dispatch, Workload, WorkloadVisitor, BENCHMARK_NAMES};

const SCALE: Scale = Scale(0.12);

struct FullPipeline;

impl WorkloadVisitor for FullPipeline {
    type Output = ();
    fn visit<W: Workload>(self, w: &W) {
        let machines = Machines::paper();
        let n = SCALE.inputs_for(w);
        let inputs = w.generate_inputs(n, FIGURE_SEED);
        let cfg = tuned_config(w, 28, SCALE);
        let rt = SimulatedRuntime::new(machines.cores28.clone());
        let report = rt
            .run(
                w.name(),
                w,
                &inputs,
                cfg,
                w.inner_parallelism(),
                FIGURE_SEED,
            )
            .expect("pipeline must run");

        // Outputs cover every input, in order.
        assert_eq!(report.outputs.len(), n, "{}: output count", w.name());

        // The run must beat sequential execution.
        assert!(
            report.speedup() > 1.0,
            "{}: no speedup ({:.2}x)",
            w.name(),
            report.speedup()
        );

        // The trace is well-formed by construction and accounts for the
        // full makespan on at least one thread.
        let summary = TraceSummary::from_trace(&report.execution.trace);
        assert!(summary.makespan >= summary.max_thread_busy());
        assert!(!summary.threads.is_empty());

        // The chunk decisions line up with the configuration.
        assert_eq!(report.decisions.len(), cfg.chunks);

        // Attribution runs end to end and accounts losses sanely.
        let breakdown = attribute(w, &machines.cores28, cfg, SCALE, FIGURE_SEED);
        assert!(breakdown.achieved <= breakdown.ideal + 1e-9);
        for (cat, loss) in &breakdown.marginal {
            assert!(
                *loss >= 0.0 && loss.is_finite(),
                "{}: {cat} loss {loss}",
                w.name()
            );
        }
        // Every loss category is present in the report exactly once.
        for cat in LossCategory::ALL {
            let hits = breakdown.marginal.iter().filter(|(c, _)| *c == cat).count();
            assert_eq!(hits, 1, "{}: {cat} appears {hits} times", w.name());
        }
    }
}

#[test]
fn every_benchmark_runs_the_full_pipeline() {
    for name in BENCHMARK_NAMES {
        dispatch(name, FullPipeline);
    }
}

struct QualityPreserved;

impl WorkloadVisitor for QualityPreserved {
    type Output = ();
    fn visit<W: Workload>(self, w: &W) {
        let n = Scale(0.2).inputs_for(w);
        let inputs = w.generate_inputs(n, 0xAB);
        let cfg = tuned_config(w, 28, Scale(0.2));
        // Nondeterministic programs: any single run seed can hit an unlucky
        // trajectory (e.g. a tracker briefly captured by a distractor), in
        // the sequential *or* the speculative execution. The paper's claim
        // is about typical output quality, so compare means over run seeds.
        const RUN_SEEDS: [u64; 3] = [1, 2, 3];
        let mut q_seq = 0.0;
        let mut q_stats = 0.0;
        for seed in RUN_SEEDS {
            let seq = run_sequential(w, &inputs, seed);
            let spec = stats_workbench::core::speculation::run_speculative(w, &inputs, cfg, seed);
            q_seq += w.quality(&inputs, &seq.outputs) / RUN_SEEDS.len() as f64;
            q_stats += w.quality(&inputs, &spec.outputs) / RUN_SEEDS.len() as f64;
        }
        assert!(
            q_stats >= q_seq - 0.15,
            "{}: STATS quality {q_stats:.3} degraded vs sequential {q_seq:.3}",
            w.name()
        );
    }
}

#[test]
fn stats_preserves_output_quality() {
    for name in BENCHMARK_NAMES {
        dispatch(name, QualityPreserved);
    }
}

#[test]
fn speedup_scales_with_input_size() {
    // The paper's core claim (§I): the TLP extracted "increases with the
    // size of the input".
    struct Grow;
    impl WorkloadVisitor for Grow {
        type Output = (f64, f64);
        fn visit<W: Workload>(self, w: &W) -> (f64, f64) {
            let machines = Machines::paper();
            let rt = SimulatedRuntime::new(machines.cores28.clone());
            let mut speeds = Vec::new();
            for scale in [Scale(0.08), Scale(0.5)] {
                let n = scale.inputs_for(w);
                let inputs = w.generate_inputs(n, 3);
                let cfg = tuned_config(w, 28, scale);
                let report = rt
                    .run(w.name(), w, &inputs, cfg, w.inner_parallelism(), 3)
                    .expect("runs");
                speeds.push(report.speedup());
            }
            (speeds[0], speeds[1])
        }
    }
    let mut grew = 0;
    for name in BENCHMARK_NAMES {
        let (small, large) = dispatch(name, Grow);
        if large > small {
            grew += 1;
        }
    }
    assert!(
        grew >= 5,
        "speedup grew with input for only {grew}/6 benchmarks"
    );
}
